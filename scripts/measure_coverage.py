#!/usr/bin/env python
"""Dependency-free line-coverage measurement (baseline seeding).

``coverage.py`` is a CI-only dependency here; this script exists so
the committed gate baseline (``scripts/coverage_baseline.json``) can
be (re)seeded in a bare environment.  It installs a ``sys.settrace``
line tracer restricted to the gated packages, runs the tier-1 pytest
suite in-process, and reports executed-vs-executable line rates per
package.  Executable lines come from the compiled code objects'
line tables — close to, but not bit-identical with, coverage.py's
statement accounting, which is why the committed floors sit a few
points below measured values.

Usage::

    PYTHONPATH=src python scripts/measure_coverage.py [pytest args…]
"""

from __future__ import annotations

import dis
import json
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGES = (
    "repro/datasets",
    "repro/engine",
    "repro/pipeline",
    "repro/service",
)
SRC = REPO_ROOT / "src"

_MARKERS = tuple(f"/{package}/" for package in PACKAGES)

executed: dict = {}


def _trace(frame, event, arg):
    filename = frame.f_code.co_filename
    if not any(marker in filename for marker in _MARKERS):
        return None
    if event == "line":
        executed.setdefault(filename, set()).add(frame.f_lineno)
    return _trace


def executable_lines(path: Path) -> set:
    code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    lines = set()
    stack = [code]
    while stack:
        current = stack.pop()
        lines.update(
            line for _, line in dis.findlinestarts(current)
            if line is not None
        )
        stack.extend(
            const for const in current.co_consts
            if hasattr(const, "co_code")
        )
    return lines


def main(argv) -> int:
    # `python -m pytest` puts the rootdir on sys.path so test modules
    # can import `tests.conftest`; running via pytest.main from this
    # script must do the same by hand.
    sys.path.insert(0, str(REPO_ROOT))
    import pytest

    threading.settrace(_trace)
    sys.settrace(_trace)
    try:
        pytest.main(["-q", *argv[1:]])
    finally:
        sys.settrace(None)
        threading.settrace(None)

    report = {}
    for package in PACKAGES:
        covered = total = 0
        for path in sorted((SRC / package).glob("*.py")):
            lines = executable_lines(path)
            hits = executed.get(str(path.resolve()), set())
            covered += len(lines & hits)
            total += len(lines)
        rate = 100.0 * covered / total if total else 0.0
        report[package] = {
            "covered": covered, "total": total,
            "percent": round(rate, 2),
        }
        print(f"{package:<20} {covered}/{total}  {rate:.2f}%")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
