#!/usr/bin/env python
"""Coverage regression gate for the data-plane packages.

CI runs the tier-1 suite under ``coverage.py`` and then calls this
script with the JSON report::

    coverage run --source=src/repro -m pytest -q
    coverage json -o coverage.json
    python scripts/coverage_gate.py coverage.json

The gate aggregates per-package line rates for the packages named in
``scripts/coverage_baseline.json`` (the chunked loaders and the
engine — the out-of-core plane's trust boundary) and **fails the
build** if any package drops below its committed baseline.  The
baseline records the seed floor, not the current high-water mark:
raising it is a deliberate commit, dropping below it is a regression.

No third-party dependency: the script only reads coverage.py's JSON
schema (``files.<path>.summary.{covered_lines,num_statements}``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "scripts" / "coverage_baseline.json"


def package_rates(report: dict, packages) -> Dict[str, Tuple[int, int]]:
    """``{package: (covered_lines, num_statements)}`` aggregated over
    every measured file under that package directory."""
    totals = {package: [0, 0] for package in packages}
    for path, entry in report.get("files", {}).items():
        normalized = path.replace("\\", "/")
        for package in packages:
            if f"/{package}/" in f"/{normalized}":
                summary = entry.get("summary", {})
                totals[package][0] += int(
                    summary.get("covered_lines", 0)
                )
                totals[package][1] += int(
                    summary.get("num_statements", 0)
                )
                break
    return {
        package: (covered, statements)
        for package, (covered, statements) in totals.items()
    }


def main(argv) -> int:
    if len(argv) != 2:
        print(
            "usage: coverage_gate.py <coverage-json-report>",
            file=sys.stderr,
        )
        return 2
    report_path = Path(argv[1])
    report = json.loads(report_path.read_text(encoding="utf-8"))
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    floors: Dict[str, float] = baseline["floors_percent"]

    rates = package_rates(report, floors)
    failures = []
    print(f"{'package':<28} {'lines':>12} {'rate':>8} {'floor':>8}")
    for package, floor in sorted(floors.items()):
        covered, statements = rates.get(package, (0, 0))
        if statements == 0:
            failures.append(
                f"{package}: no measured statements — was the package "
                f"renamed, or did coverage not run over src/?"
            )
            continue
        rate = 100.0 * covered / statements
        marker = "" if rate >= floor else "  << below floor"
        print(
            f"{package:<28} {covered:>5}/{statements:<6} "
            f"{rate:>7.2f}% {floor:>7.2f}%{marker}"
        )
        if rate < floor:
            failures.append(
                f"{package}: {rate:.2f}% is below the committed "
                f"baseline floor of {floor:.2f}%"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("coverage gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
