#!/usr/bin/env python
"""Clickstream scenario: publish all page-sets visited by ≥ θ of users.

A news site wants to publish every combination of sections that at
least 2% of its visitors read in one session — a θ-threshold query,
not a top-k query.  The threshold frontend privately selects the k
matching θ, runs PrivBasis, and filters the release (paper Section 4's
opening remark, made explicitly private).

This example also shows the privacy/utility trade-off: the same query
at several ε, with precision/recall against the exact θ-frequent sets.

Run:  python examples/clickstream_threshold.py [theta]
"""

import sys

from repro import load_dataset
from repro.core.threshold import privbasis_threshold
from repro.fim.fpgrowth import fpgrowth

THETA = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02


def main() -> None:
    database = load_dataset("kosarak")
    n = database.num_transactions
    print(
        f"kosarak clickstream: {n} sessions, "
        f"{database.num_items} pages"
    )

    # Ground truth (what a non-private miner would publish).
    exact = fpgrowth(database, min_support=int(THETA * n) or 1)
    exact_sets = set(exact)
    print(
        f"exact theta-frequent itemsets at theta = {THETA}: "
        f"{len(exact_sets)}\n"
    )

    print(f"{'epsilon':<8} {'released':>9} {'precision':>10} {'recall':>8}")
    for epsilon in (0.25, 0.5, 1.0, 2.0):
        release = privbasis_threshold(
            database, theta=THETA, epsilon=epsilon, rng=7
        )
        released = {entry.itemset for entry in release.itemsets}
        if released:
            true_positives = len(released & exact_sets)
            precision = true_positives / len(released)
            recall = true_positives / len(exact_sets)
        else:
            precision = recall = 0.0
        print(
            f"{epsilon:<8g} {len(released):>9} {precision:>10.2f} "
            f"{recall:>8.2f}"
        )

    print(
        "\nNote: the private k-selection and the noise both blur the "
        "theta boundary;\nitemsets far above theta are reliably kept, "
        "borderline ones churn."
    )


if __name__ == "__main__":
    main()
