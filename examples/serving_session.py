#!/usr/bin/env python
"""Serving batched multi-tenant releases from one warm session.

Scenario: one database (a retail-like basket log), several tenants
each asking for their own ε-DP top-k release — different k, different
budgets, different noise mechanisms.  A single
:class:`repro.PrivBasisSession` serves them all: exact dataset-derived
state (item supports, bitmap pools, bin histograms, the top-k oracle)
is built once and shared, fresh noise is drawn per release, and the
session ledger enforces a global ε cap across tenants.

Run:  PYTHONPATH=src python examples/serving_session.py [--smoke]
(``--smoke`` shrinks the workload for CI.)
"""

import sys

from repro import PrivBasisSession, load_dataset
from repro.errors import BudgetExceededError


def main() -> None:
    smoke = "--smoke" in sys.argv[1:]

    database = load_dataset("retail" if not smoke else "mushroom")
    print(
        f"dataset: {database.num_transactions} transactions over "
        f"{database.num_items} items"
    )

    # One session; a global cap of ε = 4 across *all* tenants
    # (sequential composition over the session's lifetime).
    session = PrivBasisSession(database, epsilon_limit=4.0, rng=2012)

    tenants = [
        {"k": 20, "epsilon": 0.5},
        {"k": 50, "epsilon": 1.0},
        {"k": 20, "epsilon": 0.5, "noise": "geometric"},
    ]
    if smoke:
        tenants = tenants[:2]

    print(f"\nserving a batch of {len(tenants)} tenant requests ...")
    results = session.release_batch(tenants)
    for request, result in zip(tenants, results):
        top = result.itemsets[0]
        label = "{" + ", ".join(map(str, top.itemset)) + "}"
        print(
            f"  k={request['k']:>3} eps={request['epsilon']:<4} "
            f"noise={request.get('noise', 'laplace'):<9} -> "
            f"{len(result.itemsets)} itemsets, top {label} "
            f"(noisy f = {top.noisy_frequency:.3f})"
        )

    print(f"\nsession after batch: {session!r}")
    print("cache info (hits show what the warm session reused):")
    for kind, counters in session.cache_info().items():
        print(
            f"  {kind:20s} hits={counters['hits']:<4} "
            f"misses={counters['misses']}"
        )

    # A tenant that would blow the global cap is refused up front —
    # no noise drawn, nothing spent.
    try:
        session.release(k=100, epsilon=10.0)
    except BudgetExceededError as error:
        print(f"\nover-budget request refused: {error}")
    print(
        f"epsilon spent {session.epsilon_spent:g} of "
        f"{session.epsilon_limit:g}"
    )


if __name__ == "__main__":
    main()
