#!/usr/bin/env python
"""Quickstart: release the top-k frequent itemsets of a dataset under
ε-differential privacy, and see what the privacy cost was in accuracy.

Run:  python examples/quickstart.py [epsilon] [k]
"""

import sys

from repro import load_dataset, privbasis
from repro.fim.topk import top_k_itemsets
from repro.metrics.utility import evaluate_release


def main() -> None:
    epsilon = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 25

    # The mushroom dataset: 8k transactions over 119 items (each
    # transaction is one mushroom's physical attributes).
    database = load_dataset("mushroom")
    print(
        f"dataset: mushroom — {database.num_transactions} transactions, "
        f"{database.num_items} items"
    )
    print(f"releasing top-{k} itemsets with epsilon = {epsilon}\n")

    # One call; `rng` seeds all randomness for reproducibility.
    result = privbasis(database, k=k, epsilon=epsilon, rng=42)

    # What the private pipeline chose along the way.
    print(f"lambda (items in top-k, privately estimated): {result.lam}")
    print(
        f"basis set: width {result.basis_set.width}, "
        f"length {result.basis_set.length}"
    )
    print(f"budget ledger: {result.budget}\n")

    # Compare with the exact (non-private) answer.
    exact = top_k_itemsets(database, k)
    exact_set = {itemset for itemset, _ in exact}
    n = database.num_transactions

    print(f"{'itemset':<24} {'noisy f':>9} {'true f':>9}  in exact top-k?")
    for entry in result.itemsets[:15]:
        true_frequency = database.support(entry.itemset) / n
        marker = "yes" if entry.itemset in exact_set else "NO"
        label = "{" + ", ".join(map(str, entry.itemset)) + "}"
        print(
            f"{label:<24} {entry.noisy_frequency:>9.4f} "
            f"{true_frequency:>9.4f}  {marker}"
        )
    if len(result.itemsets) > 15:
        print(f"... and {len(result.itemsets) - 15} more\n")

    metrics = evaluate_release(result, database, exact)
    print(f"false negative rate: {metrics['fnr']:.3f}")
    print(f"median relative error: {metrics['relative_error']:.4f}")
    print(
        "\n(Try a smaller epsilon, e.g. "
        "`python examples/quickstart.py 0.1` — more privacy, more noise.)"
    )


if __name__ == "__main__":
    main()
