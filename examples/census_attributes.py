#!/usr/bin/env python
"""Census scenario: dense categorical data and consistency repair.

PUMS census extracts (the paper's pumsb-star dataset) are dense: every
record sets ~50 attribute values and the frequent itemsets are deep
(the top-150 is dominated by size-3+ itemsets).  λ here is around a
dozen — right at the paper's single-basis boundary — so PrivBasis
builds just a handful of short bases (or a single one, at k = 50)
whose powerset bins cover all those deep combinations at once.

Dense data makes structural noise artifacts visible: a noisy count of
a 4-attribute combination can exceed that of its own sub-combination,
which is impossible for true counts.  The example applies the
consistency repair (free post-processing — DP is closed under it) and
measures what it buys at several budgets.

Run:  python examples/census_attributes.py
"""

from repro import load_dataset, privbasis
from repro.core.postprocess import enforce_consistency, is_consistent

K = 150


def main() -> None:
    database = load_dataset("pumsb_star")
    n = database.num_transactions
    print(
        f"census extract: {n} records, {database.num_items} attribute "
        f"values,\navg {database.avg_transaction_length:.0f} values per "
        f"record (dense!)\n"
    )

    print(
        f"{'epsilon':<8} {'basis':<12} {'deep sets':>9} "
        f"{'consistent?':>12} {'raw err':>9} {'fixed err':>10}"
    )
    for epsilon in (0.1, 0.25, 0.5, 1.0):
        release = privbasis(database, k=K, epsilon=epsilon, rng=31)
        basis = (
            f"1 x {release.basis_set.length} items"
            if release.used_single_basis
            else f"w = {release.basis_set.width}"
        )
        deep = sum(
            1 for entry in release.itemsets if len(entry.itemset) >= 3
        )

        family = {
            entry.itemset: (entry.noisy_count, entry.count_variance)
            for entry in release.itemsets
        }
        consistent = is_consistent(family, num_transactions=n)
        repaired = enforce_consistency(family, num_transactions=n)

        raw_error = sum(
            abs(entry.noisy_count - database.support(entry.itemset))
            for entry in release.itemsets
        ) / len(release.itemsets)
        fixed_error = sum(
            abs(repaired[entry.itemset][0]
                - database.support(entry.itemset))
            for entry in release.itemsets
        ) / len(release.itemsets)

        print(
            f"{epsilon:<8g} {basis:<12} {deep:>9} "
            f"{str(consistent):>12} {raw_error:>9.1f} {fixed_error:>10.1f}"
        )

    print(
        "\nReading the table: a few short bases cover all of the deep "
        "itemsets; raw\nreleases at small epsilon violate "
        "anti-monotonicity (consistent? False)\nand the repair "
        "shaves the mean absolute count error for free."
    )


if __name__ == "__main__":
    main()
