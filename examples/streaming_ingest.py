#!/usr/bin/env python
"""Following a live transaction feed with incremental snapshots.

Scenario: a clickstream keeps appending baskets while analysts ask
for ε-DP top-k releases.  A :class:`repro.TransactionLog` is the
append-only source of truth; a :class:`repro.PrivBasisSession`
attached to it advances *incrementally* (packed bitmap rows extended,
caches invalidated per snapshot — never a cold rebuild) and every
release pins the snapshot version it was computed on, so each
published result is attributable to one exact data state.

The same flow over HTTP: start ``python -m repro.service`` and use
``ServiceClient.ingest(...)`` / ``POST /v1/ingest`` — see
docs/streaming.md.

Run:  PYTHONPATH=src python examples/streaming_ingest.py [--smoke]
(``--smoke`` shrinks the workload for CI.)
"""

import sys
import time

import numpy as np

from repro import PrivBasisSession, TransactionLog, load_dataset


def next_batch(rng, template, size):
    """Fake one feed batch by resampling transactions template-like."""
    indices = rng.integers(0, template.num_transactions, size=size)
    return [list(template.transaction(int(index))) for index in indices]


def main() -> None:
    smoke = "--smoke" in sys.argv[1:]
    template = load_dataset("mushroom")
    rng = np.random.default_rng(20120827)

    # Day zero: the log starts with an initial bulk load.
    initial = next_batch(rng, template, 1_000 if smoke else 4_000)
    log = TransactionLog(
        template.num_items, initial, item_labels=template.item_labels
    )
    session = PrivBasisSession(log, rng=7)
    print(
        f"log at v{log.version}: N={log.num_transactions} over "
        f"|I|={log.num_items}"
    )

    # The feed delivers batches; after each, one warm release.
    for _ in range(2 if smoke else 4):
        log.append(next_batch(rng, template, 250 if smoke else 1_000))
        started = time.perf_counter()
        session.sync()  # incremental: O(batch), not O(N)
        sync_ms = (time.perf_counter() - started) * 1e3
        result = session.release(k=10, epsilon=1.0)
        top = result.itemsets[0]
        label = "{" + ", ".join(map(str, top.itemset)) + "}"
        print(
            f"  v{result.snapshot_version}: N={len(session.database)} "
            f"(sync {sync_ms:5.1f} ms)  top {label} "
            f"noisy f = {top.noisy_frequency:.3f}"
        )

    print(f"\nsession after the feed: {session!r}")
    print(
        f"releases pinned snapshots, ledger spans them all: "
        f"epsilon_spent = {session.epsilon_spent:g} across "
        f"{session.num_releases} releases "
        f"(latest snapshot v{session.snapshot_version})"
    )
    # A historical snapshot is still addressable — audits can rerun
    # exact counts against the data state any release saw.
    pinned = log.snapshot(0)
    print(
        f"historical snapshot v0 still has N={pinned.num_transactions}"
    )


if __name__ == "__main__":
    main()
