#!/usr/bin/env python
"""Bring your own data: the FIMI `.dat` workflow end to end.

The FIMI repository format (one transaction per line, space-separated
integer item ids) is how the paper's real datasets are distributed.
This example shows the full round trip a downstream user follows with
their own data:

1. write a transaction dataset to a `.dat` file (here: generated, so
   the example is self-contained — substitute your own file);
2. read it back with `read_fimi`;
3. run PrivBasis on it and export the release as CSV.

Run:  python examples/bring_your_own_data.py [path.dat]
"""

import sys
import tempfile
from pathlib import Path

from repro import privbasis
from repro.datasets.fimi import read_fimi, write_fimi
from repro.datasets.synthetic import QuestConfig, generate_quest
from repro.experiments.export import release_to_csv, write_text


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
        print(f"reading transactions from {path}")
    else:
        # No file supplied: fabricate one so the example runs as-is.
        path = Path(tempfile.mkdtemp()) / "my_transactions.dat"
        config = QuestConfig(
            num_transactions=5000,
            num_items=80,
            avg_transaction_length=9.0,
        )
        write_fimi(generate_quest(config, rng=99), path)
        print(f"(no file given; wrote a demo dataset to {path})")

    database = read_fimi(path)
    print(
        f"loaded {database.num_transactions} transactions over "
        f"{database.num_items} items "
        f"(avg |t| = {database.avg_transaction_length:.1f})\n"
    )

    release = privbasis(database, k=40, epsilon=1.0, rng=0)
    print(f"released {len(release.itemsets)} itemsets at epsilon = 1.0")
    print(f"basis set: {release.basis_set}\n")

    out = path.with_suffix(".release.csv")
    write_text(out, release_to_csv(release))
    print(f"release written to {out}")
    print("first rows:")
    for line in release_to_csv(release).splitlines()[:6]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
