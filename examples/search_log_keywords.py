#!/usr/bin/env python
"""Search-log scenario: publish frequent query keywords and co-occurring
keyword pairs from a search log, per-user private.

Search logs are the canonical cautionary tale for naive release (the
2006 AOL incident).  Here each transaction is the set of keywords one
user searched for; the release protects any single user's entire
keyword set being added or removed.

This dataset sits in the paper's λ ≈ k regime: the frequent itemsets
are overwhelmingly single keywords, so PrivBasis builds many small
bases (size ≤ 3 — the error-variance sweet spot) instead of one wide
one.  The example inspects that structure and compares against both
the TF baseline and the strawman of one basis per keyword.

Run:  python examples/search_log_keywords.py [epsilon]
"""

import sys
from collections import Counter

from repro import load_dataset, privbasis, tf_method
from repro.fim.topk import top_k_itemsets
from repro.metrics.utility import evaluate_release

EPSILON = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
K = 200


def main() -> None:
    database = load_dataset("aol")
    print(
        f"search log: {database.num_transactions} users, "
        f"{database.num_items} distinct keywords"
    )
    print(f"releasing top {K} keyword sets at epsilon = {EPSILON}\n")

    release = privbasis(database, k=K, epsilon=EPSILON, rng=1998)

    # The regime: lambda close to k, nothing deep.
    sizes = Counter(len(entry.itemset) for entry in release.itemsets)
    print(f"lambda selected privately: {release.lam} (k = {K})")
    print(
        "released itemset sizes: "
        + ", ".join(f"{size}: {count}" for size, count in sorted(sizes.items()))
    )

    # Basis geometry: many small bases, none near the 2^l blow-up.
    basis_lengths = Counter(
        len(basis) for basis in release.basis_set.bases
    )
    print(
        f"basis set: width {release.basis_set.width}, lengths "
        + ", ".join(
            f"{length}x{count}"
            for length, count in sorted(basis_lengths.items())
        )
    )
    print(
        "(Section 4.2: grouping singletons into bases of size 3 cuts "
        "error\nvariance to 4/9 of adding independent noise per "
        "keyword.)\n"
    )

    exact = top_k_itemsets(database, K)
    ours = evaluate_release(release, database, exact)

    baseline = tf_method(database, k=K, epsilon=EPSILON, m=1, rng=1998)
    theirs = evaluate_release(baseline, database, exact)

    print(f"{'method':<22} {'FNR':>6} {'median RE':>10}")
    print(
        f"{'PrivBasis':<22} {ours['fnr']:>6.3f} "
        f"{ours['relative_error']:>10.4f}"
    )
    print(
        f"{'TF (m = 1)':<22} {theirs['fnr']:>6.3f} "
        f"{theirs['relative_error']:>10.4f}"
    )
    print(
        "\nThis is TF's best case (the paper's Figure 5): with m = 1 "
        "it reduces to\nfrequent-keyword mining, which nearly matches "
        "PB when the top-k is almost\nall singletons — but it cannot "
        "see pairs at all."
    )

    pairs = [
        entry for entry in release.itemsets if len(entry.itemset) == 2
    ]
    if pairs:
        print(f"\nkeyword pairs PrivBasis still surfaced: {len(pairs)}")
        for entry in pairs[:5]:
            print(
                "  {"
                + ", ".join(map(str, entry.itemset))
                + f"}}  noisy f = {entry.noisy_frequency:.4f}"
            )


if __name__ == "__main__":
    main()
