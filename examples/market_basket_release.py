#!/usr/bin/env python
"""Market-basket scenario: a retailer publishes co-purchase patterns.

A Belgian retail chain wants to share its frequent co-purchase
itemsets with suppliers without exposing any individual receipt.  This
example

1. releases the top-k itemsets of a retail-style dataset under ε-DP
   (PrivBasis, multi-basis regime: the top-k here spans dozens of
   distinct items, so a single basis would blow up as 2^λ);
2. derives association rules from the release — free post-processing,
   no extra privacy budget;
3. contrasts the release quality with the TF baseline at the same ε.

Run:  python examples/market_basket_release.py [epsilon]
"""

import sys

from repro import load_dataset, privbasis, rules_from_release, tf_method
from repro.fim.topk import top_k_itemsets
from repro.metrics.utility import evaluate_release

EPSILON = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
K = 100


def main() -> None:
    database = load_dataset("retail")
    print(
        f"retail dataset: {database.num_transactions} receipts, "
        f"{database.num_items} products, "
        f"avg {database.avg_transaction_length:.1f} items per receipt"
    )
    print(f"privacy budget epsilon = {EPSILON}, releasing top {K}\n")

    # --- 1. The private release -------------------------------------
    release = privbasis(database, k=K, epsilon=EPSILON, rng=2012)
    print(
        f"PrivBasis chose lambda = {release.lam} items, "
        f"{len(release.frequent_pairs)} pairs, and a basis set of "
        f"width {release.basis_set.width} / "
        f"length {release.basis_set.length}"
    )

    exact = top_k_itemsets(database, K)
    metrics = evaluate_release(release, database, exact)
    print(
        f"release quality: FNR {metrics['fnr']:.2f}, "
        f"median relative error {metrics['relative_error']:.3f}\n"
    )

    # --- 2. Association rules from the release (no extra budget) -----
    rules = rules_from_release(
        release, min_confidence=0.3, max_consequent_size=1
    )
    print(f"association rules at confidence >= 0.3: {len(rules)}")
    for rule in rules[:8]:
        print(f"  {rule}")
    if len(rules) > 8:
        print(f"  ... and {len(rules) - 8} more")
    print()

    # --- 3. The baseline at the same budget ---------------------------
    # TF with m = 1 (the paper's best-precision choice on retail:
    # anything larger makes gamma blow up past f_k).
    baseline = tf_method(database, k=K, epsilon=EPSILON, m=1, rng=2012)
    baseline_metrics = evaluate_release(baseline, database, exact)
    print(
        f"TF baseline (m = 1): FNR {baseline_metrics['fnr']:.2f}, "
        f"median relative error {baseline_metrics['relative_error']:.3f}"
    )
    print(
        "PrivBasis finds "
        f"{(1 - metrics['fnr']) * 100:.0f}% of the true top-{K}; "
        f"TF finds {(1 - baseline_metrics['fnr']) * 100:.0f}%."
    )


if __name__ == "__main__":
    main()
