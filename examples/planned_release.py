#!/usr/bin/env python
"""Shop for a release with dry-run pricing, then run it traced.

Scenario: an analyst with a finite ε allowance wants to know what a
release will cost — per stage, under different budget planners —
*before* committing any budget.  ``GET /v1/plan`` prices the staged
pipeline from public parameters only (the server touches no data and
spends nothing), so the analyst can compare the paper split against
the adaptive planner for free, pick one, and then run the real
release with ``"trace": true`` to see exactly where the ε and the
wall time went.

Run:  PYTHONPATH=src python examples/planned_release.py [--smoke]
(``--smoke`` is the same flow; it exists so CI can invoke every
example uniformly.)
"""

import asyncio
import sys

from repro import PrivBasisService, ServiceClient, TenantRegistry


async def main() -> None:
    service = PrivBasisService(TenantRegistry.demo())
    async with service.serving() as (host, port):
        async with ServiceClient(host, port, tenant="alice") as client:
            # -- 1. price the release under two planners (free) ------
            print("dry-run pricing via GET /v1/plan (no data, no spend):")
            for planner in ("paper", "adaptive"):
                plan = await client.plan(k=40, epsilon=0.8,
                                         planner=planner)
                stages = ", ".join(
                    f"{stage['stage']}="
                    + (f"{stage['epsilon']:g}"
                       if stage["epsilon"] is not None else "(from lambda)")
                    for stage in plan["stages"]
                )
                print(f"  {planner:<9} {stages}")
                print(
                    f"            affordable={plan['affordable']} "
                    f"(remaining eps = {plan['remaining']:g})"
                )
            budget = await client.budget()
            assert budget["ledger"]["spent"] == 0.0
            print("  ledger untouched after planning: spent = 0")

            # -- 2. run the release with the chosen planner, traced --
            print("\ntraced release with the adaptive planner:")
            response = await client.release(
                k=40, epsilon=0.8, planner="adaptive", trace=True
            )
            trace = response["trace"]
            print(
                f"  lambda = {trace['lam']}, branch = {trace['branch']}, "
                f"eps spent = {trace['epsilon_spent']:g}"
            )
            print(f"  {'stage':<16} {'epsilon':>8} {'ms':>8}  queries")
            for stage in trace["stages"]:
                queries = ", ".join(
                    f"{kind}={count}"
                    for kind, count in sorted(stage["queries"].items())
                )
                print(
                    f"  {stage['stage']:<16} {stage['epsilon']:>8.4f} "
                    f"{stage['wall_time_ms']:>8.2f}  {queries or '-'}"
                )
            top = response["itemsets"][0]
            label = "{" + ", ".join(map(str, top["items"])) + "}"
            print(
                f"\n  released {len(response['itemsets'])} itemsets; "
                f"top {label} (noisy f = {top['noisy_frequency']:.3f})"
            )

            # -- 3. the ledger reflects exactly the one release ------
            budget = await client.budget()
            print(
                f"  ledger after release: spent = "
                f"{budget['ledger']['spent']:g} of "
                f"{budget['epsilon_limit']:g}"
            )


if __name__ == "__main__":
    # --smoke is accepted for CI uniformity; the flow is already tiny.
    sys.argv = [argument for argument in sys.argv if argument != "--smoke"]
    asyncio.run(main())
