"""DP-soundness property suite for the cross-release reuse plane.

Four families of properties over randomized ``(k, ε, k', ε',
snapshot)`` schedules (generators in ``tests/pipeline/strategies.py``;
example budget widens under ``REPRO_PROPERTY_PROFILE=nightly``):

1. **Purity** — a reuse answer is a pure function of the stored
   payload: repeats are bit-identical, zero backend queries run (the
   query-counting probe and the cache counters both stay flat, and a
   *sealed* backend — one that raises on any data access — still
   answers hits).
2. **Accounting** — the ledger debits exactly 0 on a hit and exactly
   the planned ε on a miss; ε saved is tallied, never spent.
3. **Scoping** — reuse never crosses a snapshot version (at the
   session) or a tenant boundary (at the service/store).
4. **Invalidation** — an interleaved ingest invalidates exactly the
   stale entries: earlier-version entries of that dataset drop, the
   live version and other datasets survive, and the reported drop
   count is exact.

Plus golden rows pinning :func:`top_k_truncate` outputs — including
that a reuse-served ``(k', ε')`` equals the truncation of the stored
release — and cold-start coverage for :class:`AutoPlanner`.
"""

from __future__ import annotations

import asyncio
import math

import numpy as np
import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.engine.bitmap import BitmapBackend
from repro.engine.cache import CachedBackend
from repro.engine.session import PrivBasisSession
from repro.errors import ValidationError
from repro.pipeline import (
    AutoPlanner,
    PaperPlanner,
    QueryCountingBackend,
    ReuseIndex,
    TraceHistory,
    payload_from_result,
    planner_names,
    resolve_planner,
    reuse_covers,
    top_k_truncate,
)
from repro.service.app import PrivBasisService
from repro.service.registry import TenantRegistry
from tests.pipeline.strategies import (
    SealableBackend,
    epsilons,
    ks,
    request_pairs,
    request_schedules,
    small_databases,
    transaction_lists,
)

# ---------------------------------------------------------------------------
# The utility bound: reuse_covers
# ---------------------------------------------------------------------------


class TestReuseCovers:
    @given(request_pairs())
    def test_identical_request_is_never_covered(self, pair):
        k, epsilon = pair
        assert not reuse_covers(k, epsilon, k, epsilon)

    @given(request_pairs(), ks(), epsilons())
    def test_hit_implies_dominated_and_not_identical(
        self, stored, k, epsilon
    ):
        stored_k, stored_eps = stored
        if reuse_covers(stored_k, stored_eps, k, epsilon):
            assert k <= stored_k
            assert epsilon <= stored_eps * (1 + 1e-9)
            assert (k, epsilon) != (stored_k, stored_eps)

    @given(request_pairs(), st.integers(min_value=1, max_value=50))
    def test_wider_k_is_never_covered(self, stored, extra):
        stored_k, stored_eps = stored
        assert not reuse_covers(
            stored_k, stored_eps, stored_k + extra, stored_eps
        )

    @given(request_pairs(), st.floats(min_value=0.01, max_value=2.0))
    def test_larger_epsilon_is_never_covered(self, stored, extra):
        stored_k, stored_eps = stored
        assert not reuse_covers(
            stored_k, stored_eps, stored_k, stored_eps + extra
        )

    @given(request_pairs())
    def test_strict_domination_is_covered(self, stored):
        stored_k, stored_eps = stored
        assume(stored_k > 1)
        assert reuse_covers(
            stored_k, stored_eps, stored_k - 1, stored_eps / 2
        )

    @given(request_pairs())
    def test_degenerate_requests_are_never_covered(self, stored):
        stored_k, stored_eps = stored
        assert not reuse_covers(stored_k, stored_eps, 0, stored_eps)
        assert not reuse_covers(stored_k, stored_eps, stored_k, 0.0)
        assert not reuse_covers(stored_k, stored_eps, stored_k, -1.0)

    def test_last_ulp_epsilon_counts_as_identical(self):
        # Wire round-trips can wobble ε in the last ulp; that must
        # still be the freshness carve-out, not a reuse hit.
        eps = 0.7
        assert not reuse_covers(10, eps, 10, eps * (1 + 1e-12))
        assert not reuse_covers(10, eps, 10, eps * (1 - 1e-12))


# ---------------------------------------------------------------------------
# The post-processor: top_k_truncate
# ---------------------------------------------------------------------------

GOLDEN_PAYLOAD = {
    "method": "privbasis",
    "k": 4,
    "epsilon": 1.0,
    "itemsets": [
        {"items": [2], "noisy_count": 80.0, "noisy_frequency": 0.8},
        {"items": [0, 1], "noisy_count": 95.0, "noisy_frequency": 0.95},
        {"items": [3], "noisy_count": 80.0, "noisy_frequency": 0.8},
        {"items": [5], "noisy_count": 10.0, "noisy_frequency": 0.1},
    ],
    "snapshot_version": 7,
}


class TestTopKTruncate:
    def test_golden_row(self):
        # Pinned output: re-ranked by noisy frequency, frequency ties
        # broken on the item tuple ([2] before [3]), truncated to 2,
        # (k, ε) re-stamped, snapshot preserved, stats verbatim.
        assert top_k_truncate(GOLDEN_PAYLOAD, 2, 0.25) == {
            "method": "privbasis",
            "k": 2,
            "epsilon": 0.25,
            "itemsets": [
                {
                    "items": [0, 1],
                    "noisy_count": 95.0,
                    "noisy_frequency": 0.95,
                },
                {"items": [2], "noisy_count": 80.0, "noisy_frequency": 0.8},
            ],
            "snapshot_version": 7,
        }

    def test_rejects_k_beyond_stored(self):
        with pytest.raises(ValidationError):
            top_k_truncate(GOLDEN_PAYLOAD, 5, 0.5)

    def test_rejects_malformed_request(self):
        with pytest.raises(ValidationError):
            top_k_truncate(GOLDEN_PAYLOAD, 0, 0.5)
        with pytest.raises(ValidationError):
            top_k_truncate(GOLDEN_PAYLOAD, True, 0.5)
        with pytest.raises(ValidationError):
            top_k_truncate(GOLDEN_PAYLOAD, 2, 0.0)

    def test_does_not_mutate_the_stored_payload(self):
        import copy

        snapshot = copy.deepcopy(GOLDEN_PAYLOAD)
        top_k_truncate(GOLDEN_PAYLOAD, 2, 0.25)
        assert GOLDEN_PAYLOAD == snapshot

    @given(st.integers(min_value=1, max_value=4), epsilons())
    def test_bit_identical_across_calls(self, k, epsilon):
        first = top_k_truncate(GOLDEN_PAYLOAD, k, epsilon)
        second = top_k_truncate(GOLDEN_PAYLOAD, k, epsilon)
        assert first == second

    @given(st.integers(min_value=1, max_value=4), epsilons())
    def test_idempotent(self, k, epsilon):
        once = top_k_truncate(GOLDEN_PAYLOAD, k, epsilon)
        twice = top_k_truncate(once, k, epsilon)
        assert once == twice

    @given(st.integers(min_value=1, max_value=4), epsilons())
    def test_output_is_sorted_and_sized(self, k, epsilon):
        out = top_k_truncate(GOLDEN_PAYLOAD, k, epsilon)
        assert len(out["itemsets"]) == k
        frequencies = [
            entry["noisy_frequency"] for entry in out["itemsets"]
        ]
        assert frequencies == sorted(frequencies, reverse=True)
        assert out["k"] == k and out["epsilon"] == float(epsilon)


# ---------------------------------------------------------------------------
# The index: dominance frontier, bounds, exact invalidation
# ---------------------------------------------------------------------------


def _release_payload(k, epsilon):
    return {
        "method": "privbasis",
        "k": k,
        "epsilon": epsilon,
        "itemsets": [
            {
                "items": [i],
                "noisy_count": float(k - i),
                "noisy_frequency": (k - i) / k,
            }
            for i in range(k)
        ],
    }


class TestReuseIndex:
    @given(st.lists(request_pairs(), min_size=1, max_size=12))
    def test_frontier_holds_no_dominated_pairs(self, stored):
        index = ReuseIndex()
        for k, epsilon in stored:
            index.add("d", 0, _release_payload(k, epsilon))
        entries = index._frontier.get(("d", 0), [])
        for a in entries:
            for b in entries:
                if a is b:
                    continue
                assert not (
                    a.k >= b.k and a.epsilon >= b.epsilon * (1 - 1e-9)
                ), "frontier kept a dominated entry"

    @given(
        st.lists(request_pairs(), min_size=1, max_size=12),
        request_pairs(),
    )
    def test_lookup_hit_iff_some_stored_covers(self, stored, request):
        index = ReuseIndex()
        kept = []
        for k, epsilon in stored:
            if index.add("d", 3, _release_payload(k, epsilon)):
                kept.append((k, epsilon))
        rk, reps = request
        decision = index.lookup("d", 3, rk, reps)
        expected = any(
            reuse_covers(k, epsilon, rk, reps) for k, epsilon in stored
        )
        assert decision.hit == expected
        if decision.hit:
            assert reuse_covers(
                decision.source.k, decision.source.epsilon, rk, reps
            )
            assert decision.epsilon_saved == float(reps)

    @given(st.lists(request_pairs(), min_size=1, max_size=8))
    def test_lookup_never_crosses_dataset_or_snapshot(self, stored):
        index = ReuseIndex()
        for k, epsilon in stored:
            index.add("d", 1, _release_payload(k, epsilon))
        assert not index.lookup("other", 1, 1, 1e-6).hit
        assert not index.lookup("d", 0, 1, 1e-6).hit
        assert not index.lookup("d", 2, 1, 1e-6).hit

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["d1", "d2"]),
                st.integers(min_value=0, max_value=3),
                request_pairs(),
            ),
            min_size=1,
            max_size=12,
        ),
        st.integers(min_value=0, max_value=4),
    )
    def test_invalidation_is_exact(self, stored, cutoff):
        index = ReuseIndex()
        for dataset, version, (k, epsilon) in stored:
            index.add(dataset, version, _release_payload(k, epsilon))
        stale = sum(
            len(entries)
            for (dataset, version), entries in index._frontier.items()
            if dataset == "d1" and version < cutoff
        )
        survivors_before = {
            key: len(entries)
            for key, entries in index._frontier.items()
            if not (key[0] == "d1" and key[1] < cutoff)
        }
        dropped = index.invalidate_before("d1", cutoff)
        assert dropped == stale
        assert {
            key: len(entries)
            for key, entries in index._frontier.items()
        } == survivors_before
        assert index.stats()["invalidated"] == stale

    def test_index_is_bounded_per_key(self):
        index = ReuseIndex(max_entries_per_key=4)
        # An anti-chain: k rising while ε falls — nothing dominates.
        for i in range(20):
            index.add(
                "d", 0, _release_payload(i + 1, 10.0 / (i + 1))
            )
        assert len(index) <= 4

    def test_non_release_payloads_are_ignored(self):
        index = ReuseIndex()
        assert not index.add("d", 0, {"note": "not a release"})
        assert not index.add("d", 0, {"k": 0, "epsilon": 1.0})
        assert not index.add(
            "d", 0, {"k": 3, "epsilon": -1.0, "itemsets": []}
        )
        assert not index.add(
            "d", 0, {"k": True, "epsilon": 1.0, "itemsets": []}
        )
        assert len(index) == 0


# ---------------------------------------------------------------------------
# Session-level soundness over randomized schedules
# ---------------------------------------------------------------------------


def _session(db, reuse=True, probe=None, seed=0):
    backend = CachedBackend(
        probe if probe is not None else BitmapBackend(db)
    )
    return PrivBasisSession(db, backend=backend, reuse=reuse, rng=seed)


class TestSessionReuse:
    @given(small_databases(), ks(max_k=8), epsilons())
    def test_hits_are_bit_identical_and_query_free(
        self, db, k, epsilon
    ):
        stored_k, stored_eps = k + 2, epsilon * 2
        probe = QueryCountingBackend(BitmapBackend(db))
        session = _session(db, probe=probe, seed=11)
        cold = session.release(k=stored_k, epsilon=stored_eps)
        assert cold.reuse is None
        queries_before = probe.counts()
        cache_before = session.cache_info()
        first = session.release(k=k, epsilon=epsilon)
        second = session.release(k=k, epsilon=epsilon)
        assert first.reuse is not None and first.reuse["hit"] is True
        assert second.reuse is not None
        # Pure function of the stored payload: bit-identical repeats.
        assert payload_from_result(first) == payload_from_result(second)
        # Golden linkage: the served answer IS the truncation of the
        # stored release — nothing else.
        assert payload_from_result(first) == top_k_truncate(
            payload_from_result(cold), k, epsilon
        )
        # Zero data access: neither the probe nor the cache moved.
        assert probe.counts() == queries_before
        assert session.cache_info() == cache_before

    @given(small_databases(), request_schedules(max_length=5))
    def test_ledger_debits_zero_on_hits_exact_on_misses(
        self, db, schedule
    ):
        session = _session(db, seed=3)
        for step in schedule:
            if step[0] == "ingest":
                session.ingest(step[1])
                continue
            _, k, epsilon = step
            spent_before = session.epsilon_spent
            result = session.release(k=k, epsilon=epsilon)
            delta = session.epsilon_spent - spent_before
            if result.reuse is not None:
                assert result.reuse["hit"] is True
                assert delta == 0.0
                assert result.reuse["epsilon_charged"] == 0.0
            else:
                assert math.isclose(
                    delta, epsilon, rel_tol=1e-12, abs_tol=1e-15
                )

    @given(small_databases(), ks(max_k=8), epsilons())
    def test_reuse_never_crosses_a_snapshot_boundary(
        self, db, k, epsilon
    ):
        session = _session(db, seed=7)
        session.release(k=k + 1, epsilon=epsilon * 2)
        session.ingest([[0, 1], [2]])
        crossed = session.release(k=k, epsilon=epsilon)
        # The stored release is pinned to the old version; the new
        # snapshot must be served by a fresh mechanism run.
        assert crossed.reuse is None
        assert crossed.snapshot_version == session.snapshot_version

    @given(small_databases(), transaction_lists(1, 3))
    def test_ingest_invalidates_exactly_the_stale_entries(
        self, db, delta_rows
    ):
        session = _session(db, seed=13)
        session.release(k=6, epsilon=1.0)
        session.release(k=12, epsilon=0.25)  # anti-chain partner
        stats_before = session.stats()["reuse"]
        stale = stats_before["entries"]
        session.ingest(delta_rows)
        stats_after = session.stats()["reuse"]
        assert stats_after["entries"] == 0
        assert (
            stats_after["invalidated"]
            == stats_before["invalidated"] + stale
        )
        # Releases on the new snapshot become reuse sources again.
        session.release(k=6, epsilon=1.0)
        hit = session.release(k=3, epsilon=0.5)
        assert hit.reuse is not None

    @given(small_databases())
    def test_identical_repeat_runs_fresh_and_is_charged(self, db):
        session = _session(db, seed=29)
        session.release(k=5, epsilon=1.0)
        spent = session.epsilon_spent
        repeat = session.release(k=5, epsilon=1.0)
        assert repeat.reuse is None  # freshness carve-out
        assert session.epsilon_spent > spent
        assert session.reuse_hits == 0

    def test_sealed_backend_still_answers_hits(self):
        rows = [[0, 1, 2], [0, 1], [1, 2], [0], [1], [0, 1, 2]] * 10
        from repro.datasets.transactions import TransactionDatabase

        db = TransactionDatabase(rows, num_items=5)
        sealable = SealableBackend(BitmapBackend(db))
        session = PrivBasisSession(
            db, backend=CachedBackend(sealable), reuse=True, rng=1
        )
        cold = session.release(k=6, epsilon=1.0)
        sealable.seal()
        hit = session.release(k=3, epsilon=0.5)
        assert hit.reuse is not None
        assert payload_from_result(hit) == top_k_truncate(
            payload_from_result(cold), 3, 0.5
        )

    def test_sealed_backend_control_fresh_run_touches_data(self):
        rows = [[0, 1], [1, 2], [0, 2]] * 10
        from repro.datasets.transactions import TransactionDatabase

        db = TransactionDatabase(rows, num_items=4)
        sealable = SealableBackend(BitmapBackend(db))
        session = PrivBasisSession(
            db, backend=CachedBackend(sealable), reuse=True, rng=1
        )
        sealable.seal()  # nothing cached, nothing stored
        with pytest.raises(AssertionError, match="sealed backend"):
            session.release(k=3, epsilon=0.5)

    def test_reuse_is_off_by_default(self):
        rows = [[0, 1], [1, 2], [0, 2]] * 10
        from repro.datasets.transactions import TransactionDatabase

        db = TransactionDatabase(rows, num_items=4)
        session = PrivBasisSession(db, rng=1)
        assert not session.reuse_enabled
        session.release(k=5, epsilon=1.0)
        dominated = session.release(k=2, epsilon=0.5)
        assert dominated.reuse is None
        assert "reuse" not in session.stats()


# ---------------------------------------------------------------------------
# Service-level scoping: tenants, journaled ledgers, the wire
# ---------------------------------------------------------------------------


def _toy_database():
    rng = np.random.default_rng(17)
    rows = [
        sorted(
            set(rng.integers(0, 10, size=rng.integers(1, 5)).tolist())
        )
        for _ in range(150)
    ]
    from repro.datasets.transactions import TransactionDatabase

    return TransactionDatabase(rows, num_items=10)


def _service(tmp_path=None, reuse=True, tenants=None):
    registry = TenantRegistry.from_mapping(
        tenants
        or {
            "alice": {
                "dataset": "toy", "epsilon_limit": 40.0, "ingest": True
            },
            "bob": {"dataset": "toy", "epsilon_limit": 40.0},
        }
    )
    database = _toy_database()
    return PrivBasisService(
        registry,
        dataset_loader=lambda name: database,
        state_dir=str(tmp_path) if tmp_path is not None else None,
        reuse=reuse,
    )


class TestServiceReuse:
    def test_reuse_never_crosses_the_tenant_boundary(self):
        async def scenario():
            service = _service()
            await service.handle_release(
                {"tenant": "alice", "k": 10, "epsilon": 1.0}
            )
            bob = await service.handle_release(
                {"tenant": "bob", "k": 5, "epsilon": 0.5}
            )
            alice = await service.handle_release(
                {"tenant": "alice", "k": 5, "epsilon": 0.5}
            )
            await service.stop()
            return bob, alice

        bob, alice = asyncio.run(scenario())
        # Bob's dominated request must NOT be served from Alice's
        # stored release; Alice's own is.
        assert bob["reuse"]["hit"] is False
        assert alice["reuse"]["hit"] is True
        assert alice["reuse"]["source"] == {
            "k": 10, "epsilon": 1.0, "snapshot_version": 0,
        }

    def test_journaled_ledger_debits_zero_on_hits(self, tmp_path):
        async def scenario():
            service = _service(tmp_path)
            await service.handle_release(
                {"tenant": "alice", "k": 10, "epsilon": 1.0}
            )
            spent_before = service.registry.get("alice").spent
            hit = await service.handle_release(
                {"tenant": "alice", "k": 4, "epsilon": 0.25}
            )
            spent_after = service.registry.get("alice").spent
            metrics = service.handle_metrics()
            await service.stop()
            return hit, spent_before, spent_after, metrics

        hit, before, after, metrics = asyncio.run(scenario())
        assert hit["reuse"]["hit"] is True
        assert hit["reuse"]["epsilon_charged"] == 0.0
        assert hit["reuse"]["epsilon_saved"] == 0.25
        assert after == before  # the journaled ledger never moved
        assert metrics["reuse"]["hits"] == 1
        assert metrics["reuse"]["misses"] == 1
        assert metrics["reuse"]["epsilon_saved"] == 0.25

    def test_hit_payload_is_the_truncated_stored_release(self, tmp_path):
        async def scenario():
            service = _service(tmp_path)
            cold = await service.handle_release(
                {"tenant": "alice", "k": 8, "epsilon": 2.0}
            )
            hit = await service.handle_release(
                {"tenant": "alice", "k": 3, "epsilon": 0.5}
            )
            await service.stop()
            return cold, hit

        cold, hit = asyncio.run(scenario())
        stored = {
            key: value
            for key, value in cold.items()
            if key in ("method", "k", "epsilon", "itemsets",
                       "snapshot_version")
        }
        expected = top_k_truncate(stored, 3, 0.5)
        served = {
            key: value
            for key, value in hit.items()
            if key in ("method", "k", "epsilon", "itemsets",
                       "snapshot_version")
        }
        assert served == expected

    def test_plan_prices_a_hit_at_zero_epsilon(self):
        async def scenario():
            service = _service()
            cold_plan = service.handle_plan(
                {"tenant": "alice", "k": "5", "epsilon": "0.5"}
            )
            await service.handle_release(
                {"tenant": "alice", "k": 10, "epsilon": 1.0}
            )
            warm_plan = service.handle_plan(
                {"tenant": "alice", "k": "5", "epsilon": "0.5"}
            )
            uncovered = service.handle_plan(
                {"tenant": "alice", "k": "50", "epsilon": "0.5"}
            )
            await service.stop()
            return cold_plan, warm_plan, uncovered

        cold_plan, warm_plan, uncovered = asyncio.run(scenario())
        assert cold_plan["reuse"]["available"] is False
        assert warm_plan["reuse"]["available"] is True
        assert warm_plan["reuse"]["epsilon"] == 0.0
        assert uncovered["reuse"]["available"] is False

    def test_ingest_invalidates_service_reuse(self):
        async def scenario():
            service = _service()
            await service.handle_release(
                {"tenant": "alice", "k": 10, "epsilon": 1.0}
            )
            await service.handle_ingest(
                {"tenant": "alice", "transactions": [[0, 1], [2]]}
            )
            stale = await service.handle_release(
                {"tenant": "alice", "k": 5, "epsilon": 0.5}
            )
            await service.stop()
            return stale

        stale = asyncio.run(scenario())
        assert stale["reuse"]["hit"] is False
        assert stale["snapshot_version"] == 1

    def test_reuse_sources_survive_a_restart(self, tmp_path):
        async def scenario():
            service = _service(tmp_path)
            await service.handle_release(
                {"tenant": "alice", "k": 10, "epsilon": 1.0}
            )
            await service.stop()
            reborn = _service(tmp_path)
            hit = await reborn.handle_release(
                {"tenant": "alice", "k": 5, "epsilon": 0.5}
            )
            await reborn.stop()
            return hit

        hit = asyncio.run(scenario())
        assert hit["reuse"]["hit"] is True
        assert hit["reuse"]["source"]["k"] == 10

    def test_no_reuse_opts_out_entirely(self):
        async def scenario():
            service = _service(reuse=False)
            await service.handle_release(
                {"tenant": "alice", "k": 10, "epsilon": 1.0}
            )
            dominated = await service.handle_release(
                {"tenant": "alice", "k": 5, "epsilon": 0.5}
            )
            plan = service.handle_plan(
                {"tenant": "alice", "k": "5", "epsilon": "0.5"}
            )
            metrics = service.handle_metrics()
            await service.stop()
            return dominated, plan, metrics

        dominated, plan, metrics = asyncio.run(scenario())
        assert "reuse" not in dominated
        assert "reuse" not in plan
        assert metrics["reuse"] == {
            "enabled": False,
            "hits": 0,
            "misses": 0,
            "epsilon_saved": 0.0,
        }

    def test_no_reuse_cli_flag_parses(self):
        from repro.service.__main__ import build_parser

        arguments = build_parser().parse_args(["--no-reuse"])
        assert arguments.no_reuse is True
        assert build_parser().parse_args([]).no_reuse is False

    def test_planner_and_noise_overrides_bypass_reuse(self):
        async def scenario():
            service = _service()
            await service.handle_release(
                {"tenant": "alice", "k": 10, "epsilon": 1.0}
            )
            planned = await service.handle_release(
                {
                    "tenant": "alice", "k": 5, "epsilon": 0.5,
                    "planner": "adaptive",
                }
            )
            noised = await service.handle_release(
                {
                    "tenant": "alice", "k": 5, "epsilon": 0.5,
                    "noise": "geometric",
                }
            )
            await service.stop()
            return planned, noised

        planned, noised = asyncio.run(scenario())
        # Overridden requests run fresh: no reuse block at all (the
        # lookup is never consulted for them).
        assert "reuse" not in planned
        assert "reuse" not in noised


# ---------------------------------------------------------------------------
# AutoPlanner cold start
# ---------------------------------------------------------------------------


class _FakeTrace:
    def __init__(self, branch):
        self.branch = branch


class TestAutoPlannerColdStart:
    def test_auto_is_a_registered_planner_name(self):
        assert "auto" in planner_names()
        assert isinstance(resolve_planner("auto"), AutoPlanner)

    def test_cold_history_falls_back_to_paper(self):
        history = TraceHistory()
        assert len(history) == 0
        assert history.suggest() == "paper"
        planner = AutoPlanner().bind(history)
        assert planner.chosen() == "paper"
        assert isinstance(planner._delegate(), PaperPlanner)

    def test_unbound_auto_planner_defaults_to_paper(self):
        planner = AutoPlanner()
        assert planner.history is None
        assert planner.chosen() == "paper"
        paper = PaperPlanner()
        args = dict(
            lam=8, k=10, eta=1.2, alpha2_epsilon=0.4,
            single_basis_lambda=12,
        )
        assert (
            planner.selection_allocation(**args).__dict__
            == paper.selection_allocation(**args).__dict__
        )

    def test_majority_single_basis_switches_to_adaptive(self):
        history = TraceHistory()
        for _ in range(3):
            history.observe(_FakeTrace("single_basis"))
        history.observe(_FakeTrace("multi_basis"))
        planner = AutoPlanner().bind(history)
        assert history.suggest() == "adaptive"
        assert planner.chosen() == "adaptive"

    def test_tie_or_minority_stays_paper(self):
        history = TraceHistory()
        history.observe(_FakeTrace("single_basis"))
        history.observe(_FakeTrace("multi_basis"))
        assert history.suggest() == "paper"

    def test_describe_reports_policy_and_observations(self):
        history = TraceHistory()
        history.observe(_FakeTrace("single_basis"))
        planner = AutoPlanner().bind(history)
        description = planner.describe()
        assert description["policy"] in ("paper", "adaptive")
        assert description["observed"] == {"single_basis": 1}

    def test_auto_rejects_custom_alphas(self):
        with pytest.raises(ValidationError):
            resolve_planner(
                {"name": "auto", "alphas": [0.5, 0.25, 0.25]}
            )

    def test_cold_service_session_serves_auto_via_paper_path(self):
        async def scenario():
            service = _service()
            result = await service.handle_release(
                {
                    "tenant": "alice", "k": 6, "epsilon": 1.0,
                    "planner": "auto", "trace": True,
                }
            )
            await service.stop()
            return result

        result = asyncio.run(scenario())
        assert result["trace"]["planner"] == "auto"
