"""Golden test: PaperPlanner ≡ the pre-refactor monolithic privbasis.

The acceptance bar for the staged-pipeline refactor: under a fixed
seed, a release planned by :class:`PaperPlanner` must reproduce the
pre-refactor ``privbasis()`` *bit for bit* — itemsets, noisy counts
and frequencies, diagnostics (λ, F, P), and the ε ledger entries —
across every counting backend, including a backend advanced through
the streaming ``extend`` path.  ``_legacy_privbasis`` below is a
faithful inline copy of the pre-refactor function body (same
mechanism calls, same float expressions, same rng consumption order);
any divergence in the pipeline shows up as a failed comparison here.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basis import DEFAULT_MAX_BASIS_LENGTH, single_basis
from repro.core.basis_freq import basis_freq
from repro.core.construct_basis import construct_basis_set
from repro.core.freq_elements import get_frequent_items, get_frequent_pairs
from repro.core.lambda_select import get_lambda
from repro.core.privbasis import privbasis
from repro.datasets.stream import TransactionLog
from repro.datasets.transactions import TransactionDatabase
from repro.dp.budget import PrivacyBudget
from repro.dp.rng import ensure_rng
from repro.engine.bitmap import BitmapBackend
from repro.engine.cache import CachedBackend
from repro.engine.naive import NaiveBackend
from repro.engine.session import PrivBasisSession
from repro.engine.sharded import ShardedBackend
from repro.pipeline import DEFAULT_ALPHAS, pair_budget_size, planned_release


def _legacy_privbasis(
    database,
    k,
    epsilon,
    eta=None,
    alphas=DEFAULT_ALPHAS,
    single_basis_lambda=12,
    noise="laplace",
    rng=None,
    backend=None,
):
    """The pre-refactor privbasis() body, verbatim in behavior."""
    from repro.engine.backend import resolve_backend

    if eta is None:
        eta = 1.2 if k <= 100 else 1.1
    backend = resolve_backend(database, backend)
    generator = ensure_rng(rng)
    budget = PrivacyBudget(epsilon)
    alpha1_eps, alpha2_eps, alpha3_eps = budget.split(alphas)

    lam = get_lambda(backend, k, alpha1_eps, eta=eta, rng=generator)
    budget.spend(alpha1_eps, "get_lambda")
    lam = min(lam, backend.num_items)

    if lam <= single_basis_lambda:
        frequent_items = get_frequent_items(
            backend, lam, alpha2_eps, rng=generator
        )
        budget.spend(alpha2_eps, "get_frequent_items")
        basis_set = single_basis(frequent_items)
        frequent_pairs = ()
    else:
        lam2 = pair_budget_size(lam, k, eta)
        available_pairs = lam * (lam - 1) // 2
        lam2 = min(lam2, available_pairs)
        if lam2 >= 1:
            beta1_eps = alpha2_eps * lam / (lam + lam2)
            beta2_eps = alpha2_eps - beta1_eps
        else:
            beta1_eps, beta2_eps = alpha2_eps, 0.0
        frequent_items = get_frequent_items(
            backend, lam, beta1_eps, rng=generator
        )
        budget.spend(beta1_eps, "get_frequent_items")
        if lam2 >= 1:
            pairs = get_frequent_pairs(
                backend, frequent_items, lam2, beta2_eps, rng=generator
            )
            budget.spend(beta2_eps, "get_frequent_pairs")
        else:
            pairs = []
        frequent_pairs = tuple(sorted(pairs))
        basis_set = construct_basis_set(
            frequent_items,
            frequent_pairs,
            DEFAULT_MAX_BASIS_LENGTH,
            greedy_optimize=True,
        )

    release = basis_freq(
        backend, basis_set, k, alpha3_eps, rng=generator, noise=noise
    )
    budget.spend(alpha3_eps, "basis_freq")
    return {
        "itemsets": [
            (
                entry.itemset,
                entry.noisy_count,
                entry.noisy_frequency,
                entry.count_variance,
            )
            for entry in release.itemsets
        ],
        "lam": lam,
        "frequent_items": tuple(sorted(frequent_items)),
        "frequent_pairs": tuple(frequent_pairs),
        "ledger": [
            (entry.label, entry.epsilon) for entry in budget.entries
        ],
    }


def _fingerprint(result):
    return {
        "itemsets": [
            (
                entry.itemset,
                entry.noisy_count,
                entry.noisy_frequency,
                entry.count_variance,
            )
            for entry in result.itemsets
        ],
        "lam": result.lam,
        "frequent_items": result.frequent_items,
        "frequent_pairs": result.frequent_pairs,
        "ledger": [
            (entry.label, entry.epsilon)
            for entry in result.budget.entries
        ],
    }


BACKEND_FACTORIES = {
    "bitmap": BitmapBackend,
    "sharded": lambda db: ShardedBackend(db, shard_size=128),
    "naive": NaiveBackend,
    "cached": lambda db: CachedBackend(BitmapBackend(db)),
}


class TestGoldenEquivalence:
    @pytest.mark.parametrize("name", sorted(BACKEND_FACTORIES))
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 10, "epsilon": 1.0},
            {"k": 25, "epsilon": 0.4, "single_basis_lambda": 4},
            {"k": 15, "epsilon": 2.0, "noise": "geometric"},
        ],
    )
    def test_paper_planner_bit_identical(self, small_db, name, kwargs):
        factory = BACKEND_FACTORIES[name]
        legacy = _legacy_privbasis(
            small_db, rng=11, backend=factory(small_db), **kwargs
        )
        staged = privbasis(
            small_db, rng=11, backend=factory(small_db), **kwargs
        )
        assert _fingerprint(staged) == legacy

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        k=st.integers(min_value=1, max_value=40),
        epsilon=st.floats(min_value=0.05, max_value=5.0),
        threshold=st.sampled_from([2, 6, 12]),
    )
    @settings(max_examples=20, deadline=None)
    def test_equivalence_property(
        self, dense_db, seed, k, epsilon, threshold
    ):
        legacy = _legacy_privbasis(
            dense_db,
            k=k,
            epsilon=epsilon,
            single_basis_lambda=threshold,
            rng=seed,
        )
        staged = privbasis(
            dense_db,
            k=k,
            epsilon=epsilon,
            single_basis_lambda=threshold,
            rng=seed,
        )
        assert _fingerprint(staged) == legacy

    def test_custom_alphas_bit_identical(self, dense_db):
        alphas = (0.2, 0.3, 0.5)
        legacy = _legacy_privbasis(
            dense_db, k=12, epsilon=0.9, alphas=alphas, rng=4
        )
        staged = privbasis(
            dense_db, k=12, epsilon=0.9, alphas=alphas, rng=4
        )
        assert _fingerprint(staged) == legacy

    @pytest.mark.parametrize("name", sorted(BACKEND_FACTORIES))
    def test_streaming_extend_path_bit_identical(self, name):
        """A backend advanced by ``extend`` must release exactly like
        the legacy monolith over the concatenated database."""
        base_rows = [(0, 1, 2), (0, 1), (2, 3), (0, 2, 3), (1,)] * 20
        delta_rows = [(0, 3), (1, 2, 3), (0, 1, 2, 3)] * 15
        base = TransactionDatabase(base_rows, num_items=4)
        delta = TransactionDatabase(delta_rows, num_items=4)
        merged = TransactionDatabase(
            base_rows + delta_rows, num_items=4
        )
        backend = BACKEND_FACTORIES[name](base)
        backend.extend(delta)
        legacy = _legacy_privbasis(merged, k=6, epsilon=1.5, rng=9)
        staged = privbasis(
            backend.database, k=6, epsilon=1.5, rng=9, backend=backend
        )
        assert _fingerprint(staged) == legacy

    def test_auto_planner_cold_start_bit_identical_to_paper(
        self, dense_db
    ):
        """AutoPlanner with no history is the PaperPlanner, bit for
        bit — the cold-start fallback is an identity, not merely an
        approximation."""
        from repro.pipeline import AutoPlanner, TraceHistory

        auto = planned_release(
            dense_db,
            k=12,
            epsilon=0.9,
            planner=AutoPlanner().bind(TraceHistory()),
            rng=4,
        )
        legacy = _legacy_privbasis(dense_db, k=12, epsilon=0.9, rng=4)
        assert _fingerprint(auto) == legacy
        assert auto.trace.planner == "auto"

    def test_auto_planner_adaptive_pick_bit_identical(self, dense_db):
        """Once the history's majority branch is single-basis, the
        AutoPlanner is the AdaptivePlanner, bit for bit."""
        from repro.pipeline import AdaptivePlanner, AutoPlanner, TraceHistory

        class _Trace:
            def __init__(self, branch):
                self.branch = branch

        history = TraceHistory()
        for _ in range(3):
            history.observe(_Trace("single_basis"))
        auto = planned_release(
            dense_db,
            k=12,
            epsilon=0.9,
            planner=AutoPlanner().bind(history),
            rng=4,
        )
        adaptive = planned_release(
            dense_db,
            k=12,
            epsilon=0.9,
            planner=AdaptivePlanner(),
            rng=4,
        )
        assert _fingerprint(auto) == _fingerprint(adaptive)

    def test_streaming_session_snapshot_path(self):
        """The snapshot-aware session over a live log stays equivalent
        to the legacy monolith on the pinned snapshot."""
        log = TransactionLog(
            4, [(0, 1, 2), (0, 1), (2, 3)] * 12
        )
        session = PrivBasisSession(log)
        log.append([(0, 3), (1, 2)] * 10)
        session.sync()
        merged = log.snapshot().database
        staged = session.release(k=5, epsilon=1.2, rng=21)
        legacy = _legacy_privbasis(merged, k=5, epsilon=1.2, rng=21)
        assert _fingerprint(staged) == legacy
        assert staged.snapshot_version == log.version
