"""Shared hypothesis strategies for the reuse property suite.

Centralizes the generators so every property test draws the same
shapes — small transaction databases, (k, ε) request pairs, and
randomized request *schedules* mixing releases and ingests — and owns
the example-budget profiles:

* ``default`` — the tier-1 budget, small enough for every CI run;
* ``nightly`` — widened example counts for the scheduled soak job.

Select with the ``REPRO_PROPERTY_PROFILE`` environment variable
(``default`` when unset).  An explicit env-var switch, rather than
``--hypothesis-profile``, keeps the selection independent of plugin
import order.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.datasets.transactions import TransactionDatabase
from repro.engine.backend import CountingBackend

__all__ = [
    "PROFILE",
    "SealableBackend",
    "epsilons",
    "ks",
    "request_pairs",
    "request_schedules",
    "small_databases",
    "transaction_lists",
]

#: Per-test hypothesis example budgets by profile name.
_PROFILES = {"default": 20, "nightly": 150}

PROFILE = os.environ.get("REPRO_PROPERTY_PROFILE", "default")
if PROFILE not in _PROFILES:
    raise RuntimeError(
        f"REPRO_PROPERTY_PROFILE must be one of "
        f"{sorted(_PROFILES)}, got {PROFILE!r}"
    )

for _name, _examples in _PROFILES.items():
    settings.register_profile(
        _name,
        max_examples=_examples,
        # Pipeline runs inside an example take tens of ms — a wall
        # clock deadline would make the suite flaky on loaded CI.
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
settings.load_profile(PROFILE)

#: Vocabulary size for generated databases — small enough that a
#: release runs in milliseconds, big enough for non-trivial bases.
NUM_ITEMS = 10


def transaction_lists(
    min_rows: int = 20, max_rows: int = 60
) -> st.SearchStrategy:
    """Lists of transactions (each a sorted list of distinct items)."""
    transaction = st.lists(
        st.integers(min_value=0, max_value=NUM_ITEMS - 1),
        min_size=1,
        max_size=5,
        unique=True,
    ).map(sorted)
    return st.lists(transaction, min_size=min_rows, max_size=max_rows)


def small_databases() -> st.SearchStrategy:
    """Small random :class:`TransactionDatabase` instances."""
    return transaction_lists().map(
        lambda rows: TransactionDatabase(rows, num_items=NUM_ITEMS)
    )


def ks(max_k: int = 20) -> st.SearchStrategy:
    return st.integers(min_value=1, max_value=max_k)


def epsilons() -> st.SearchStrategy:
    """Positive, finite, not-degenerate ε values."""
    return st.floats(
        min_value=0.05,
        max_value=4.0,
        allow_nan=False,
        allow_infinity=False,
    )


def request_pairs() -> st.SearchStrategy:
    """One ``(k, epsilon)`` release request."""
    return st.tuples(ks(), epsilons())


def request_schedules(
    max_length: int = 6, ingest_every: bool = True
) -> st.SearchStrategy:
    """Randomized schedules of release and ingest steps.

    Each element is either ``("release", k, epsilon)`` or
    ``("ingest", transactions)`` — the interleavings the invalidation
    properties quantify over.
    """
    release = st.tuples(st.just("release"), ks(), epsilons())
    steps = [release]
    if ingest_every:
        ingest = st.tuples(
            st.just("ingest"), transaction_lists(min_rows=1, max_rows=5)
        )
        steps.append(ingest)
    return st.lists(
        st.one_of(steps), min_size=1, max_size=max_length
    )


class SealableBackend(CountingBackend):
    """A counting backend that can be made to *prove* it is unused.

    Forwards every primitive to ``inner`` until :meth:`seal` is
    called; after that any data access raises.  The strongest form of
    the "reuse hits never touch data" property: a sealed session can
    only answer out of stored payloads.
    """

    def __init__(self, inner: CountingBackend) -> None:
        self._inner = inner
        self._sealed = False

    def seal(self) -> None:
        self._sealed = True

    def _check(self) -> None:
        if self._sealed:
            raise AssertionError(
                "sealed backend was queried: a reuse answer touched data"
            )

    @property
    def database(self):
        return self._inner.database

    def extend(self, delta) -> None:
        self._check()
        self._inner.extend(delta)

    def item_supports(self):
        self._check()
        return self._inner.item_supports()

    def pairwise_supports(self, items):
        self._check()
        return self._inner.pairwise_supports(items)

    def conjunction_support(self, items) -> int:
        self._check()
        return self._inner.conjunction_support(items)

    def bin_counts(self, basis):
        self._check()
        return self._inner.bin_counts(basis)
