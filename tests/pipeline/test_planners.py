"""Planner-layer contracts: validation, resolution, allocations.

The planner layer is now the single home of the α checks that used to
live inside ``privbasis()`` and the one place the α₂ item/pair split
is decided, so its invariants are pinned directly: every allocation
must conserve the α₂ε it was given, and every resolution path must
fail loudly (``unknown_planner``) before any data could be touched.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UnknownPlannerError, ValidationError
from repro.pipeline.planner import (
    DEFAULT_ALPHAS,
    SINGLE_BASIS_LAMBDA,
    AdaptivePlanner,
    CustomPlanner,
    PaperPlanner,
    pair_budget_size,
    planner_for,
    planner_names,
    resolve_planner,
    validate_alphas,
)


class TestAlphaValidation:
    def test_default_alphas_pass(self):
        assert validate_alphas(DEFAULT_ALPHAS) == DEFAULT_ALPHAS

    @pytest.mark.parametrize(
        "alphas",
        [
            (0.5, 0.5),                 # wrong arity
            (0.1, 0.1, 0.1),            # does not sum to 1
            (0.5, 0.5, 0.0),            # zero fraction
            (0.6, 0.6, -0.2),           # negative fraction
            (float("nan"), 0.5, 0.5),   # NaN
        ],
    )
    def test_bad_alphas_rejected(self, alphas):
        with pytest.raises(ValidationError):
            validate_alphas(alphas)

    def test_custom_planner_validates_at_construction(self):
        with pytest.raises(ValidationError):
            CustomPlanner((0.2, 0.2, 0.2))

    def test_paper_planner_uses_paper_alphas(self):
        assert PaperPlanner().alphas == DEFAULT_ALPHAS

    def test_adaptive_planner_accepts_custom_alphas(self):
        planner = AdaptivePlanner((0.1, 0.3, 0.6))
        assert planner.alphas == (0.1, 0.3, 0.6)


class TestResolution:
    def test_none_is_paper(self):
        assert isinstance(resolve_planner(None), PaperPlanner)

    def test_instance_passes_through(self):
        planner = AdaptivePlanner()
        assert resolve_planner(planner) is planner

    def test_names_resolve(self):
        assert resolve_planner("paper").name == "paper"
        assert resolve_planner("adaptive").name == "adaptive"

    def test_unknown_name_is_structured(self):
        with pytest.raises(UnknownPlannerError) as excinfo:
            resolve_planner("bogus")
        assert excinfo.value.planner == "bogus"
        assert excinfo.value.known == planner_names()

    def test_custom_needs_alphas(self):
        with pytest.raises(ValidationError):
            resolve_planner("custom")
        planner = resolve_planner(
            {"name": "custom", "alphas": [0.1, 0.3, 0.6]}
        )
        assert planner.alphas == (0.1, 0.3, 0.6)

    def test_mapping_with_unknown_keys_rejected(self):
        with pytest.raises(ValidationError):
            resolve_planner({"name": "paper", "seed": 3})

    def test_paper_with_foreign_alphas_rejected(self):
        with pytest.raises(ValidationError):
            resolve_planner({"name": "paper", "alphas": [0.2, 0.4, 0.4]})

    def test_planner_for_rejects_both(self):
        with pytest.raises(ValidationError):
            planner_for("adaptive", alphas=(0.1, 0.4, 0.5))

    def test_planner_for_maps_default_alphas_to_paper(self):
        assert isinstance(
            planner_for(None, alphas=DEFAULT_ALPHAS), PaperPlanner
        )
        custom = planner_for(None, alphas=(0.2, 0.4, 0.4))
        assert isinstance(custom, CustomPlanner)
        assert custom.name == "custom"


class TestAllocations:
    """Every planner must conserve the α₂ε it divides."""

    ALPHA2_EPS = 0.4

    @pytest.mark.parametrize("planner", [PaperPlanner(), AdaptivePlanner()])
    @pytest.mark.parametrize("lam", [1, 5, 12, 13, 20, 60])
    def test_allocation_conserves_alpha2(self, planner, lam):
        allocation = planner.selection_allocation(
            lam, 100, 1.2, self.ALPHA2_EPS, SINGLE_BASIS_LAMBDA
        )
        total = (
            allocation.items_epsilon
            + allocation.pairs_epsilon
            + allocation.counting_bonus
        )
        assert total == pytest.approx(self.ALPHA2_EPS, rel=1e-12)
        assert allocation.items_epsilon > 0
        assert allocation.pairs_epsilon >= 0
        assert allocation.counting_bonus >= 0

    def test_paper_matches_worked_example(self):
        # Paper Section 4.4: pumsb-star, k = 100, η = 1.2, λ = 20
        # → λ₂ = 44 and the split is λ:λ₂.
        allocation = PaperPlanner().selection_allocation(
            20, 100, 1.2, self.ALPHA2_EPS, SINGLE_BASIS_LAMBDA
        )
        assert allocation.lam2 == 44
        assert allocation.items_epsilon == pytest.approx(
            self.ALPHA2_EPS * 20 / 64
        )
        assert not allocation.single_basis
        assert allocation.counting_bonus == 0.0

    def test_paper_single_basis_takes_everything(self):
        allocation = PaperPlanner().selection_allocation(
            8, 100, 1.2, self.ALPHA2_EPS, SINGLE_BASIS_LAMBDA
        )
        assert allocation.single_basis
        assert allocation.items_epsilon == self.ALPHA2_EPS
        assert allocation.lam2 == 0

    def test_adaptive_single_basis_funds_counting(self):
        allocation = AdaptivePlanner().selection_allocation(
            8, 100, 1.2, self.ALPHA2_EPS, SINGLE_BASIS_LAMBDA
        )
        assert allocation.single_basis
        assert allocation.counting_bonus > 0
        assert allocation.items_epsilon < self.ALPHA2_EPS

    def test_adaptive_weights_pairs_up(self):
        paper = PaperPlanner().selection_allocation(
            20, 100, 1.2, self.ALPHA2_EPS, SINGLE_BASIS_LAMBDA
        )
        adaptive = AdaptivePlanner().selection_allocation(
            20, 100, 1.2, self.ALPHA2_EPS, SINGLE_BASIS_LAMBDA
        )
        assert adaptive.lam2 == paper.lam2
        assert adaptive.pairs_epsilon > paper.pairs_epsilon

    def test_adaptive_no_pairs_available_degenerates_to_paper(self):
        # λ at η·k: λ₂ = 0 → everything to items in both policies.
        paper = PaperPlanner().selection_allocation(
            130, 100, 1.2, self.ALPHA2_EPS, SINGLE_BASIS_LAMBDA
        )
        adaptive = AdaptivePlanner().selection_allocation(
            130, 100, 1.2, self.ALPHA2_EPS, SINGLE_BASIS_LAMBDA
        )
        assert paper.items_epsilon == self.ALPHA2_EPS
        assert adaptive.items_epsilon == self.ALPHA2_EPS

    @given(
        lam=st.integers(min_value=1, max_value=200),
        k=st.integers(min_value=1, max_value=150),
        eta_tenths=st.integers(min_value=10, max_value=15),
    )
    @settings(max_examples=60, deadline=None)
    def test_allocation_conservation_property(self, lam, k, eta_tenths):
        eta = eta_tenths / 10.0
        for planner in (PaperPlanner(), AdaptivePlanner()):
            allocation = planner.selection_allocation(
                lam, k, eta, 0.7, SINGLE_BASIS_LAMBDA
            )
            total = (
                allocation.items_epsilon
                + allocation.pairs_epsilon
                + allocation.counting_bonus
            )
            assert total == pytest.approx(0.7, rel=1e-9)
            assert 0 <= allocation.lam2 <= lam * (lam - 1) // 2


class TestPairBudgetHeuristic:
    def test_paper_worked_example(self):
        assert pair_budget_size(20, 100, 1.2) == 44

    def test_no_pairs_when_lambda_exceeds_eta_k(self):
        assert pair_budget_size(130, 100, 1.2) == 0

    def test_undamped_when_ratio_small(self):
        assert pair_budget_size(110, 100, 1.2) == 10
