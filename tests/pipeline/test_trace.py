"""Plan pricing and trace contracts of the staged pipeline.

Pins the two observability surfaces the service builds on: a
:class:`ReleasePlan` must price from public parameters only (no data
access anywhere in construction), and every executed release must
carry a complete :class:`ReleaseTrace` whose per-stage ε sums to the
release budget exactly.
"""

from __future__ import annotations

import pytest

from repro.core.privbasis import privbasis
from repro.engine.bitmap import BitmapBackend
from repro.errors import ValidationError
from repro.pipeline import (
    AdaptivePlanner,
    PaperPlanner,
    QueryCountingBackend,
    build_plan,
    execute_plan,
    planned_release,
)


class TestPlanPricing:
    def test_paper_plan_prices_all_stages(self):
        plan = build_plan(100, 0.5)
        described = plan.describe()
        names = [stage["stage"] for stage in described["stages"]]
        assert names == [
            "get_lambda",
            "select_items",
            "select_pairs",
            "construct_basis",
            "basis_freq",
        ]
        by_name = {
            stage["stage"]: stage for stage in described["stages"]
        }
        assert by_name["get_lambda"]["epsilon"] == pytest.approx(0.05)
        assert by_name["basis_freq"]["epsilon"] == pytest.approx(0.25)
        # The α₂ subdivision is data-dependent → quoted unresolved.
        assert by_name["select_items"]["epsilon"] is None
        assert by_name["select_pairs"]["conditional"] is True
        assert by_name["construct_basis"]["epsilon"] == 0.0
        assert by_name["construct_basis"]["touches_data"] is False

    def test_shares_sum_to_one(self):
        plan = build_plan(50, 1.0, planner="adaptive")
        shares = [
            stage["share"]
            for stage in plan.describe()["stages"]
            if stage["share"] is not None
        ]
        assert sum(shares) == pytest.approx(1.0)

    def test_plan_validates_parameters(self):
        with pytest.raises(ValidationError):
            build_plan(0, 1.0)
        with pytest.raises(ValidationError):
            build_plan(10, 0.0)
        with pytest.raises(ValidationError):
            build_plan(10, 1.0, noise="cauchy")
        with pytest.raises(ValidationError):
            build_plan(10, 1.0, eta=0.5)

    def test_plan_is_data_free(self):
        # Pricing must be pure arithmetic: nothing in build_plan takes
        # a database, and the planner payload is JSON-serializable.
        import json

        plan = build_plan(
            25, 0.4, planner={"name": "custom", "alphas": [0.2, 0.3, 0.5]}
        )
        payload = json.dumps(plan.describe())
        assert "custom" in payload


class TestReleaseTrace:
    def test_trace_attached_and_complete(self, dense_db):
        result = privbasis(dense_db, k=10, epsilon=0.8, rng=0)
        trace = result.trace
        assert trace is not None
        assert trace.planner == "paper"
        assert trace.lam == result.lam
        assert trace.epsilon_spent == pytest.approx(0.8)
        assert trace.branch in ("single_basis", "pairs")
        assert trace.used_single_basis == result.used_single_basis

    def test_stage_epsilons_match_ledger(self, dense_db):
        result = privbasis(dense_db, k=10, epsilon=0.6, rng=3)
        spent = [
            stage.epsilon
            for stage in result.trace.stages
            if stage.epsilon > 0
        ]
        assert spent == [entry.epsilon for entry in result.budget.entries]

    def test_data_stages_record_queries(self, dense_db):
        result = privbasis(dense_db, k=10, epsilon=1.0, rng=0)
        get_lambda = result.trace.stage("get_lambda")
        assert get_lambda.queries.get("item_supports", 0) >= 1
        assert get_lambda.queries.get("top_k", 0) >= 1
        basis_freq = result.trace.stage("basis_freq")
        assert basis_freq.queries.get("bin_counts", 0) >= 1
        construct = result.trace.stage("construct_basis")
        assert construct.queries == {}
        assert construct.touches_data is False

    def test_pairs_branch_traces_select_pairs(self, dense_db):
        result = privbasis(
            dense_db, k=10, epsilon=1.0, rng=0, single_basis_lambda=1
        )
        assert result.trace.branch == "pairs"
        pairs = result.trace.stage("select_pairs")
        assert pairs is not None
        assert pairs.queries.get("pairwise_supports", 0) >= 1

    def test_single_basis_branch_skips_select_pairs(self, dense_db):
        result = privbasis(dense_db, k=10, epsilon=1.0, rng=0)
        if result.trace.branch == "single_basis":
            assert result.trace.stage("select_pairs") is None

    def test_adaptive_trace_shows_reallocation(self, dense_db):
        result = planned_release(
            dense_db, k=10, epsilon=1.0, planner="adaptive", rng=0
        )
        assert result.trace.planner == "adaptive"
        assert result.trace.epsilon_spent == pytest.approx(1.0)
        if result.trace.branch == "single_basis":
            basis_freq = result.trace.stage("basis_freq")
            assert basis_freq.epsilon > 0.5  # got the α₂ remainder

    def test_trace_wire_shape(self, dense_db):
        import json

        result = privbasis(dense_db, k=5, epsilon=0.5, rng=1)
        wire = result.trace.to_wire()
        json.dumps(wire)  # JSON-serializable end to end
        assert wire["epsilon_spent"] == pytest.approx(0.5)
        for stage in wire["stages"]:
            assert set(stage) == {
                "stage",
                "epsilon",
                "touches_data",
                "wall_time_ms",
                "queries",
                "note",
            }
            assert stage["wall_time_ms"] >= 0

    def test_execute_plan_reuses_plan_object(self, dense_db):
        plan = build_plan(10, 0.5, planner=AdaptivePlanner())
        first = execute_plan(plan, dense_db, rng=7)
        second = execute_plan(plan, dense_db, rng=7)
        assert first.itemset_set() == second.itemset_set()


class TestQueryCountingBackend:
    def test_counts_and_delegates(self, dense_db):
        probe = QueryCountingBackend(BitmapBackend(dense_db))
        supports = probe.item_supports()
        assert supports.sum() > 0
        probe.conjunction_support((0, 1))
        probe.bin_counts((0, 1, 2))
        probe.top_k(5)
        assert probe.counts() == {
            "item_supports": 1,
            "conjunction_support": 1,
            "bin_counts": 1,
            "top_k": 1,
        }

    def test_paper_planner_results_unchanged_by_probe(self, dense_db):
        backend = BitmapBackend(dense_db)
        direct = privbasis(dense_db, k=8, epsilon=0.7, rng=5)
        probed = privbasis(
            dense_db,
            k=8,
            epsilon=0.7,
            rng=5,
            backend=QueryCountingBackend(backend),
        )
        assert direct.itemset_set() == probed.itemset_set()
