"""Shared fixtures: small deterministic databases and brute-force oracles."""

from __future__ import annotations

from itertools import chain, combinations
from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.datasets.synthetic import QuestConfig, generate_quest
from repro.datasets.transactions import Itemset, TransactionDatabase

#: A hand-written database with easily verifiable supports:
#:   item 0 appears in 6 of 8 transactions, {0,1} in 4, {0,1,2} in 3, …
TINY_TRANSACTIONS: List[Tuple[int, ...]] = [
    (0, 1, 2),
    (0, 1, 2),
    (0, 1, 2, 3),
    (0, 1, 3),
    (0, 2),
    (0,),
    (1, 4),
    (3, 4),
]


@pytest.fixture()
def tiny_db() -> TransactionDatabase:
    """8 transactions over 5 items with hand-checkable supports."""
    return TransactionDatabase(TINY_TRANSACTIONS, num_items=5)


@pytest.fixture(scope="session")
def small_db() -> TransactionDatabase:
    """A ~400-transaction Quest database over 40 items (seeded)."""
    config = QuestConfig(
        num_transactions=400,
        num_items=40,
        avg_transaction_length=8.0,
        avg_pattern_length=3.0,
        num_patterns=25,
    )
    return generate_quest(config, rng=7)


@pytest.fixture(scope="session")
def dense_db() -> TransactionDatabase:
    """A dense correlated database: a planted 6-item block + noise.

    The block {0..5} co-occurs in ~60% of transactions, giving deep
    frequent itemsets — the single-basis regime in miniature.
    """
    rng = np.random.default_rng(11)
    transactions = []
    for _ in range(500):
        row = set()
        if rng.random() < 0.6:
            row.update(i for i in range(6) if rng.random() < 0.95)
        row.update(
            6 + int(item) for item in rng.choice(14, size=3, replace=False)
        )
        transactions.append(sorted(row))
    return TransactionDatabase(transactions, num_items=20)


def brute_force_supports(
    database: TransactionDatabase, max_size: int = 4
) -> Dict[Itemset, int]:
    """All itemset supports up to ``max_size``, by naive counting.

    Exponential in the number of *occurring* items — only for small
    test databases.
    """
    occurring = [
        int(item)
        for item in np.flatnonzero(database.item_supports() > 0)
    ]
    supports: Dict[Itemset, int] = {}
    rows = [set(transaction) for transaction in database]
    for size in range(1, max_size + 1):
        for candidate in combinations(occurring, size):
            candidate_set = set(candidate)
            count = sum(1 for row in rows if candidate_set <= row)
            if count > 0:
                supports[candidate] = count
    return supports


def brute_force_topk(
    database: TransactionDatabase, k: int, max_size: int = 4
) -> List[Tuple[Itemset, int]]:
    """Exact top-k by brute force (library-wide tie-break order)."""
    supports = brute_force_supports(database, max_size)
    ranked = sorted(supports.items(), key=lambda pair: (-pair[1], pair[0]))
    return ranked[:k]
