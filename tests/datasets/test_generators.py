"""Regime tests for the paper-matched dataset generators.

These verify the properties DESIGN.md's substitution table promises:
shape statistics near Table 2(a) and, crucially, the top-k *structure
regime* each experiment scenario depends on.  Generators run at reduced
scale here to keep the suite fast; frequencies are scale-free.
"""

import pytest

from repro.datasets.generators import (
    aol_like,
    kosarak_like,
    mushroom_like,
    pumsb_star_like,
    retail_like,
)
from repro.datasets.stats import dataset_stats, topk_size_profile


@pytest.fixture(scope="module")
def mushroom():
    return mushroom_like(rng=2012)


@pytest.fixture(scope="module")
def pumsb():
    return pumsb_star_like(scale=0.3, rng=2012)


@pytest.fixture(scope="module")
def retail():
    return retail_like(scale=0.3, rng=2012)


@pytest.fixture(scope="module")
def kosarak():
    return kosarak_like(scale=0.05, rng=2012)


@pytest.fixture(scope="module")
def aol():
    return aol_like(scale=0.05, rng=2012)


class TestMushroomLike:
    def test_shape(self, mushroom):
        assert mushroom.num_transactions == 8124
        assert mushroom.num_items == 119
        # One value per attribute: transactions are always 23 items.
        assert mushroom.avg_transaction_length == pytest.approx(23.0)

    def test_small_lambda_regime(self, mushroom):
        stats = dataset_stats(mushroom, 100)
        assert stats.lam <= 12          # single-basis branch (λ ≤ 12)
        assert stats.fk > 0.4           # dense: very frequent top-k

    def test_deep_itemsets_present(self, mushroom):
        profile = topk_size_profile(mushroom, 100)
        assert profile[2] > 10          # many size-3 itemsets in top-100

    def test_deterministic(self):
        assert list(mushroom_like(scale=0.02, rng=5)) == list(
            mushroom_like(scale=0.02, rng=5)
        )

    def test_scale_parameter(self):
        db = mushroom_like(scale=0.1, rng=0)
        assert db.num_transactions == 812


class TestPumsbStarLike:
    def test_shape(self, pumsb):
        assert pumsb.num_items == 2088
        assert pumsb.avg_transaction_length == pytest.approx(50.0)

    def test_block_regime(self, pumsb):
        stats = dataset_stats(pumsb, 200)
        # λ stays small; the top-200 reaches size ≥ 4 (long patterns).
        assert stats.lam <= 25
        profile = topk_size_profile(pumsb, 200)
        assert sum(profile[3:]) > 30    # many itemsets of size ≥ 4
        assert stats.fk > 0.4


class TestRetailLike:
    def test_shape(self, retail):
        assert retail.num_items == 16470
        assert 8.0 < retail.avg_transaction_length < 15.0

    def test_moderate_lambda_regime(self, retail):
        stats = dataset_stats(retail, 100)
        assert 20 <= stats.lam <= 60    # multi-basis branch (λ > 12)
        assert stats.lam2 >= 15         # pairs matter
        assert stats.fk < 0.15          # sparse: low top-k frequencies


class TestKosarakLike:
    def test_shape(self, kosarak):
        assert kosarak.num_items == 41270
        assert 5.0 < kosarak.avg_transaction_length < 12.0

    def test_moderate_lambda_with_triples(self, kosarak):
        stats = dataset_stats(kosarak, 200)
        assert 20 <= stats.lam <= 70
        assert stats.lam3 >= 20         # triples in the top-200


class TestAolLike:
    def test_shape(self, aol):
        assert aol.num_items == 200_000
        assert 25.0 < aol.avg_transaction_length < 45.0

    def test_singleton_dominated_regime(self, aol):
        profile = topk_size_profile(aol, 200)
        singletons, pairs, triples = profile[0], profile[1], profile[2]
        assert singletons >= 0.8 * 200  # λ ≈ k
        assert 10 <= pairs <= 60        # the planted bigrams
        assert triples == 0             # paper: λ₃ = 0

    def test_vocabulary_override(self):
        db = aol_like(scale=0.01, vocabulary=50_000, rng=0)
        assert db.num_items == 50_000
