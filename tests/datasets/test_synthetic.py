"""Tests for the Quest synthetic generator."""

import numpy as np
import pytest

from repro.datasets.synthetic import QuestConfig, generate_quest
from repro.errors import ValidationError


def small_config(**overrides) -> QuestConfig:
    defaults = dict(
        num_transactions=200,
        num_items=50,
        avg_transaction_length=6.0,
        avg_pattern_length=3.0,
        num_patterns=20,
    )
    defaults.update(overrides)
    return QuestConfig(**defaults)


class TestValidation:
    def test_negative_transactions(self):
        with pytest.raises(ValidationError):
            generate_quest(small_config(num_transactions=-1))

    def test_zero_items(self):
        with pytest.raises(ValidationError):
            generate_quest(small_config(num_items=0))

    def test_bad_correlation(self):
        with pytest.raises(ValidationError):
            generate_quest(small_config(correlation=1.5))

    def test_bad_corruption(self):
        with pytest.raises(ValidationError):
            generate_quest(small_config(corruption_mean=1.0))


class TestGeneration:
    def test_shape(self):
        db = generate_quest(small_config(), rng=0)
        assert db.num_transactions == 200
        assert db.num_items == 50

    def test_deterministic_under_seed(self):
        first = generate_quest(small_config(), rng=42)
        second = generate_quest(small_config(), rng=42)
        assert list(first) == list(second)

    def test_different_seeds_differ(self):
        first = generate_quest(small_config(), rng=1)
        second = generate_quest(small_config(), rng=2)
        assert list(first) != list(second)

    def test_no_empty_transactions(self):
        db = generate_quest(small_config(), rng=3)
        assert all(len(t) >= 1 for t in db)

    def test_avg_length_in_ballpark(self):
        db = generate_quest(
            small_config(num_transactions=2000), rng=4
        )
        # Corruption and dedup pull the mean around; just require the
        # right order of magnitude.
        assert 3.0 <= db.avg_transaction_length <= 10.0

    def test_items_within_vocabulary(self):
        db = generate_quest(small_config(), rng=5)
        for transaction in db:
            assert all(0 <= item < 50 for item in transaction)

    def test_planted_patterns_create_frequent_pairs(self):
        # With few patterns and low corruption, some pair must be far
        # more frequent than the independence baseline.
        config = small_config(
            num_transactions=1000,
            num_patterns=5,
            corruption_mean=0.1,
        )
        db = generate_quest(config, rng=6)
        from repro.fim.topk import top_k_itemsets

        top = top_k_itemsets(db, 30)
        assert any(len(itemset) >= 2 for itemset, _ in top)

    def test_zero_transactions(self):
        db = generate_quest(small_config(num_transactions=0), rng=0)
        assert db.num_transactions == 0
