"""Tests for the dataset registry and its caches."""

import pytest

from repro.datasets import registry
from repro.errors import ValidationError


@pytest.fixture(autouse=True)
def clean_caches():
    registry.clear_caches()
    yield
    registry.clear_caches()


class TestLoadDataset:
    def test_unknown_name(self):
        with pytest.raises(ValidationError, match="unknown dataset"):
            registry.load_dataset("nope")

    def test_name_normalization(self):
        db1 = registry.load_dataset("pumsb-star", scale=0.02)
        db2 = registry.load_dataset("PUMSB_STAR", scale=0.02)
        assert db1 is db2  # same cache entry

    def test_cache_hit_same_object(self):
        first = registry.load_dataset("mushroom", scale=0.05)
        second = registry.load_dataset("mushroom", scale=0.05)
        assert first is second

    def test_different_scale_different_entry(self):
        first = registry.load_dataset("mushroom", scale=0.05)
        second = registry.load_dataset("mushroom", scale=0.06)
        assert first is not second

    def test_different_seed_different_data(self):
        first = registry.load_dataset("mushroom", scale=0.05, seed=1)
        second = registry.load_dataset("mushroom", scale=0.05, seed=2)
        assert list(first) != list(second)

    def test_full_scale_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert registry.full_scale_enabled()
        monkeypatch.setenv("REPRO_FULL_SCALE", "")
        assert not registry.full_scale_enabled()

    def test_dataset_names_order(self):
        assert registry.dataset_names() == [
            "retail", "mushroom", "pumsb_star", "kosarak", "aol",
        ]


class TestTopKCache:
    def test_cached_result_identical(self):
        db = registry.load_dataset("mushroom", scale=0.05)
        first = registry.cached_top_k(db, 10)
        second = registry.cached_top_k(db, 10)
        assert first is second

    def test_max_length_keyed_separately(self):
        db = registry.load_dataset("mushroom", scale=0.05)
        unrestricted = registry.cached_top_k(db, 10)
        restricted = registry.cached_top_k(db, 10, max_length=1)
        assert all(len(i) == 1 for i, _ in restricted)
        assert unrestricted != restricted

    def test_clear_caches(self):
        db = registry.load_dataset("mushroom", scale=0.05)
        first = registry.cached_top_k(db, 5)
        registry.clear_caches()
        db2 = registry.load_dataset("mushroom", scale=0.05)
        second = registry.cached_top_k(db2, 5)
        assert first == second  # same values, rebuilt
