"""TransactionLog versioning, snapshot immutability, and COW reuse."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.stream import LogSnapshot, TransactionLog
from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError


def random_rows(seed: int, count: int, num_items: int = 12):
    rng = np.random.default_rng(seed)
    member = rng.random((count, num_items)) < 0.35
    return [np.flatnonzero(row).tolist() for row in member]


class TestVersioning:
    def test_initial_contents_are_version_zero(self):
        log = TransactionLog(12, random_rows(0, 9))
        assert log.version == 0
        assert log.num_transactions == 9
        assert log.num_transactions_at(0) == 9

    def test_each_append_advances_the_version(self):
        log = TransactionLog(12, random_rows(0, 5))
        assert log.append(random_rows(1, 3)) == 1
        assert log.append(random_rows(2, 4)) == 2
        assert log.version == 2
        assert len(log) == 12
        assert [log.num_transactions_at(v) for v in (0, 1, 2)] == [
            5, 8, 12,
        ]

    def test_versions_are_strict_prefixes(self):
        rows = random_rows(3, 6)
        log = TransactionLog(12, rows[:2])
        log.append(rows[2:4])
        log.append(rows[4:])
        for version, count in ((0, 2), (1, 4), (2, 6)):
            snapshot = log.snapshot(version)
            assert isinstance(snapshot, LogSnapshot)
            assert snapshot.version == version
            assert list(snapshot.database) == [
                tuple(sorted(set(row))) for row in rows[:count]
            ]

    def test_append_accepts_a_ready_database(self):
        log = TransactionLog(12, random_rows(4, 3))
        delta = TransactionDatabase(random_rows(5, 2), num_items=12)
        assert log.append(delta) == 1
        assert len(log) == 5

    def test_from_database_shares_the_seed_snapshot(self):
        database = TransactionDatabase(random_rows(6, 7), num_items=12)
        log = TransactionLog.from_database(database)
        assert log.snapshot(0).database is database
        assert log.num_items == 12


class TestSnapshotSemantics:
    def test_old_snapshots_survive_later_appends(self):
        log = TransactionLog(12, random_rows(7, 8))
        before = log.snapshot()
        supports_before = before.database.item_supports()
        log.append(random_rows(8, 5))
        # The pinned snapshot is bit-identical after the append.
        np.testing.assert_array_equal(
            before.database.item_supports(), supports_before
        )
        assert before.num_transactions == 8
        assert log.snapshot().num_transactions == 13

    def test_latest_snapshot_reuses_warm_state_and_matches_cold(self):
        rows = random_rows(9, 30)
        log = TransactionLog(12, rows[:20])
        warm_before = log.snapshot().database
        warm_before.item_supports()
        warm_before.tidlist(3)  # force the inverted index
        log.append(rows[20:])
        warm = log.snapshot().database
        cold = TransactionDatabase(rows, num_items=12)
        np.testing.assert_array_equal(
            warm.item_supports(), cold.item_supports()
        )
        for item in range(12):
            np.testing.assert_array_equal(
                warm.tidlist(item), cold.tidlist(item)
            )
        assert warm.support([0, 3]) == cold.support([0, 3])

    def test_evicted_historical_snapshot_is_rebuilt_on_demand(self):
        log = TransactionLog(12, random_rows(10, 3))
        for seed in range(20):  # push version 0 out of the cache
            log.append(random_rows(100 + seed, 2))
        assert log.snapshot(0).num_transactions == 3

    def test_delta_returns_exactly_the_appended_window(self):
        log = TransactionLog(12, random_rows(11, 4))
        first = random_rows(12, 3)
        second = random_rows(13, 2)
        log.append(first)
        log.append(second)
        window = log.delta(0, 1)
        assert list(window) == [
            tuple(sorted(set(row))) for row in first
        ]
        assert log.delta(0).num_transactions == 5
        assert log.delta(2).num_transactions == 0


class TestValidation:
    def test_empty_append_is_rejected(self):
        log = TransactionLog(12, random_rows(14, 2))
        with pytest.raises(ValidationError):
            log.append([])
        assert log.version == 0

    def test_out_of_vocabulary_item_is_rejected_atomically(self):
        log = TransactionLog(6, [[0, 1], [2]])
        with pytest.raises(ValidationError):
            log.append([[3], [99]])
        # Nothing was half-appended.
        assert log.version == 0
        assert len(log) == 2

    def test_mismatched_delta_database_is_rejected(self):
        log = TransactionLog(6, [[0, 1]])
        delta = TransactionDatabase([[0]], num_items=9)
        with pytest.raises(ValidationError):
            log.append(delta)

    def test_bad_versions_are_rejected(self):
        log = TransactionLog(6, [[0]])
        with pytest.raises(ValidationError):
            log.snapshot(1)
        with pytest.raises(ValidationError):
            log.delta(-1)
        log.append([[1]])
        with pytest.raises(ValidationError):
            log.delta(1, 0)

    def test_negative_num_items_is_rejected(self):
        with pytest.raises(ValidationError):
            TransactionLog(-1)


class TestExtendedDatabase:
    def test_extended_preserves_labels_and_rejects_mismatch(self):
        labels = [f"item{i}" for i in range(5)]
        base = TransactionDatabase(
            [[0, 1], [2]], num_items=5, item_labels=labels
        )
        grown = base.extended(
            TransactionDatabase([[3, 4]], num_items=5)
        )
        assert grown.item_labels == tuple(labels)
        assert grown.num_transactions == 3
        with pytest.raises(ValidationError):
            base.extended(TransactionDatabase([[0]], num_items=4))

    def test_extended_with_empty_sides(self):
        base = TransactionDatabase([[0, 1]], num_items=3)
        empty = TransactionDatabase([], num_items=3)
        base.item_supports()
        base.tidlist(0)
        grown = base.extended(empty)
        assert grown.num_transactions == 1
        grown_other = empty.extended(base)
        assert grown_other.num_transactions == 1
        np.testing.assert_array_equal(
            grown_other.item_supports(), base.item_supports()
        )
