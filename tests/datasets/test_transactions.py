"""Tests for the TransactionDatabase data structure."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.transactions import (
    TransactionDatabase,
    canonical_itemset,
)
from repro.errors import ValidationError

transactions_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=15), max_size=8),
    min_size=0,
    max_size=25,
)


class TestConstruction:
    def test_shape(self, tiny_db):
        assert tiny_db.num_transactions == 8
        assert tiny_db.num_items == 5
        assert len(tiny_db) == 8

    def test_duplicates_collapse(self):
        db = TransactionDatabase([[1, 1, 2, 2, 2]])
        assert db.transaction(0) == (1, 2)

    def test_transactions_sorted(self):
        db = TransactionDatabase([[3, 1, 2]])
        assert db.transaction(0) == (1, 2, 3)

    def test_negative_item_rejected(self):
        with pytest.raises(ValidationError):
            TransactionDatabase([[-1]])

    def test_num_items_must_cover_max(self):
        with pytest.raises(ValidationError):
            TransactionDatabase([[5]], num_items=5)

    def test_vocabulary_may_exceed_observed(self):
        db = TransactionDatabase([[0]], num_items=100)
        assert db.num_items == 100
        assert db.support([99]) == 0

    def test_labels_length_checked(self):
        with pytest.raises(ValidationError):
            TransactionDatabase([[0, 1]], item_labels=["only-one"])

    def test_empty_database(self):
        db = TransactionDatabase([], num_items=3)
        assert db.num_transactions == 0
        assert db.avg_transaction_length == 0.0
        assert db.frequency([0]) == 0.0

    def test_empty_transaction_allowed(self):
        db = TransactionDatabase([[], [0]], num_items=1)
        assert db.transaction(0) == ()
        assert db.support([0]) == 1


class TestFromSortedRows:
    def test_equivalent_to_regular_construction(self):
        rows = [np.array([0, 2]), np.array([1]), np.array([0, 1, 2])]
        fast = TransactionDatabase.from_sorted_rows(rows, num_items=3)
        slow = TransactionDatabase([[0, 2], [1], [0, 1, 2]], num_items=3)
        assert list(fast) == list(slow)
        assert fast.support([0, 2]) == slow.support([0, 2])

    def test_rejects_unsorted_spot_check(self):
        with pytest.raises(ValidationError):
            TransactionDatabase.from_sorted_rows(
                [np.array([2, 1])], num_items=3
            )

    def test_rejects_out_of_range_spot_check(self):
        with pytest.raises(ValidationError):
            TransactionDatabase.from_sorted_rows(
                [np.array([0, 7])], num_items=3
            )


class TestSupports:
    def test_tiny_supports(self, tiny_db):
        assert tiny_db.support([0]) == 6
        assert tiny_db.support([0, 1]) == 4
        assert tiny_db.support([0, 1, 2]) == 3
        assert tiny_db.support([4]) == 2
        assert tiny_db.support([0, 4]) == 0

    def test_empty_itemset_support_is_n(self, tiny_db):
        assert tiny_db.support([]) == 8

    def test_frequency(self, tiny_db):
        assert tiny_db.frequency([0]) == pytest.approx(6 / 8)

    def test_item_supports_vector(self, tiny_db):
        supports = tiny_db.item_supports()
        assert supports.tolist() == [6, 5, 4, 3, 2]

    def test_item_supports_copy_is_safe(self, tiny_db):
        tiny_db.item_supports()[0] = -99
        assert tiny_db.item_supports()[0] == 6

    def test_item_frequencies(self, tiny_db):
        assert tiny_db.item_frequencies()[2] == pytest.approx(0.5)

    def test_supports_bulk(self, tiny_db):
        assert tiny_db.supports([(0,), (0, 1)]) == [6, 4]

    def test_out_of_range_item(self, tiny_db):
        with pytest.raises(ValidationError):
            tiny_db.support([9])


class TestTidlists:
    def test_tidlist_content(self, tiny_db):
        assert tiny_db.tidlist(3).tolist() == [2, 3, 7]

    def test_tidlists_sorted_unique(self, tiny_db):
        for item in range(5):
            tids = tiny_db.tidlist(item)
            assert np.all(np.diff(tids) > 0)

    def test_covering_tids(self, tiny_db):
        assert tiny_db.covering_tids([0, 1]).tolist() == [0, 1, 2, 3]

    def test_covering_tids_empty_itemset(self, tiny_db):
        assert tiny_db.covering_tids([]).tolist() == list(range(8))


class TestProject:
    def test_projection_removes_other_items(self, tiny_db):
        projected = tiny_db.project([0, 1])
        assert projected.transaction(0) == (0, 1)
        assert projected.num_transactions == 8
        assert projected.num_items == 5  # vocabulary preserved

    def test_projection_preserves_projected_supports(self, tiny_db):
        projected = tiny_db.project([0, 1])
        assert projected.support([0, 1]) == tiny_db.support([0, 1])
        assert projected.support([2]) == 0

    def test_projection_validates_items(self, tiny_db):
        with pytest.raises(ValidationError):
            tiny_db.project([77])


class TestLabels:
    def test_from_labeled_transactions(self):
        db = TransactionDatabase.from_labeled_transactions(
            [["milk", "bread"], ["milk"]]
        )
        assert db.num_items == 2
        assert db.item_labels == ("milk", "bread")
        assert db.support([0]) == 2

    def test_relabel(self, tiny_db):
        labeled = tiny_db.relabel(["a", "b", "c", "d", "e"])
        assert labeled.item_labels == ("a", "b", "c", "d", "e")
        assert labeled.support([0]) == tiny_db.support([0])


class TestCanonicalItemset:
    def test_sorts_and_dedupes(self):
        assert canonical_itemset([3, 1, 3, 2]) == (1, 2, 3)

    def test_empty(self):
        assert canonical_itemset([]) == ()


class TestHypothesisInvariants:
    @given(transactions=transactions_strategy)
    @settings(max_examples=60)
    def test_support_equals_naive_count(self, transactions):
        db = TransactionDatabase(transactions, num_items=16)
        rows = [set(t) for t in transactions]
        for itemset in [(0,), (1, 2), (0, 3, 5)]:
            naive = sum(1 for row in rows if set(itemset) <= row)
            assert db.support(itemset) == naive

    @given(transactions=transactions_strategy)
    @settings(max_examples=60)
    def test_item_supports_match_tidlists(self, transactions):
        db = TransactionDatabase(transactions, num_items=16)
        supports = db.item_supports()
        for item in range(16):
            assert supports[item] == db.tidlist(item).size

    @given(transactions=transactions_strategy)
    @settings(max_examples=40)
    def test_support_antimonotone(self, transactions):
        db = TransactionDatabase(transactions, num_items=16)
        assert db.support([1, 2]) <= db.support([1])
        assert db.support([1, 2, 3]) <= db.support([1, 2])

    @given(transactions=transactions_strategy)
    @settings(max_examples=40)
    def test_total_size_is_sum_of_lengths(self, transactions):
        db = TransactionDatabase(transactions, num_items=16)
        assert db.total_size == sum(
            len(set(t)) for t in transactions
        )
