"""Tests for dataset statistics (Table 2(a) computation)."""

import pytest

from repro.datasets.stats import dataset_stats, topk_size_profile
from repro.datasets.transactions import TransactionDatabase


class TestDatasetStats:
    def test_tiny(self, tiny_db):
        stats = dataset_stats(tiny_db, k=3, name="tiny")
        # Top-3: {0}:6, {1}:5, then {0,1}:4 (beats {2}:4 on the lex
        # tie-break).
        assert stats.name == "tiny"
        assert stats.k == 3
        assert stats.lam == 2
        assert stats.lam2 == 1
        assert stats.fk_count == 4
        assert stats.fk == pytest.approx(0.5)

    def test_lambda_counts_items_in_deeper_itemsets(self):
        # Pair {0,1} frequent enough to enter top-2 along with {0}.
        db = TransactionDatabase([[0, 1]] * 5 + [[0]] + [[2]], num_items=3)
        stats = dataset_stats(db, k=3)
        # Top-3: {0}:6, {1}:5, {0,1}:5 → λ=2, λ2=1.
        assert stats.lam == 2
        assert stats.lam2 == 1

    def test_fewer_itemsets_than_k(self):
        db = TransactionDatabase([[0]], num_items=1)
        stats = dataset_stats(db, k=10)
        assert stats.fk_count == 1  # last available itemset

    def test_as_row_shape(self, tiny_db):
        row = dataset_stats(tiny_db, 3, "t").as_row()
        assert len(row) == 9
        assert row[0] == "t"


class TestSizeProfile:
    def test_profile_sums_to_topk_size(self, tiny_db):
        profile = topk_size_profile(tiny_db, 5)
        assert sum(profile) == 5

    def test_profile_orders_by_size(self):
        db = TransactionDatabase([[0, 1, 2]] * 4 + [[3]], num_items=4)
        profile = topk_size_profile(db, 7)
        # All 7 subsets of {0,1,2} share support 4 and fill the top-7:
        # 3 singletons, 3 pairs, 1 triple ({3}:1 is excluded).
        assert profile[:3] == [3, 3, 1]
        assert sum(profile) == 7
