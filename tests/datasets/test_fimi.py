"""Tests for the FIMI format reader/writer."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.fimi import (
    fimi_dumps,
    fimi_loads,
    read_fimi,
    write_fimi,
)
from repro.datasets.transactions import TransactionDatabase
from repro.errors import DatasetFormatError


class TestParsing:
    def test_basic(self):
        db = fimi_loads("1 2 3\n2 3\n")
        assert db.num_transactions == 2
        assert db.transaction(0) == (1, 2, 3)

    def test_blank_lines_skipped(self):
        db = fimi_loads("1 2\n\n\n3\n")
        assert db.num_transactions == 2

    def test_arbitrary_whitespace(self):
        db = fimi_loads("  1\t2   3  \n")
        assert db.transaction(0) == (1, 2, 3)

    def test_non_integer_token(self):
        with pytest.raises(DatasetFormatError, match="line 2"):
            fimi_loads("1 2\n3 x\n")

    def test_negative_item(self):
        with pytest.raises(DatasetFormatError, match="negative"):
            fimi_loads("1 -2\n")

    def test_num_items_override(self):
        db = fimi_loads("0 1\n", num_items=10)
        assert db.num_items == 10

    def test_empty_input(self):
        db = fimi_loads("", num_items=1)
        assert db.num_transactions == 0


class TestRoundTrip:
    def test_file_roundtrip(self, tmp_path, tiny_db):
        path = tmp_path / "tiny.dat"
        write_fimi(tiny_db, path)
        loaded = read_fimi(path, num_items=tiny_db.num_items)
        assert list(loaded) == list(tiny_db)

    def test_stream_roundtrip(self, tiny_db):
        buffer = io.StringIO()
        write_fimi(tiny_db, buffer)
        buffer.seek(0)
        loaded = read_fimi(buffer, num_items=tiny_db.num_items)
        assert list(loaded) == list(tiny_db)

    def test_dumps_loads(self, tiny_db):
        text = fimi_dumps(tiny_db)
        loaded = fimi_loads(text, num_items=tiny_db.num_items)
        assert list(loaded) == list(tiny_db)

    @given(
        transactions=st.lists(
            st.lists(
                st.integers(min_value=0, max_value=50),
                min_size=1,  # FIMI cannot represent empty transactions
                max_size=6,
            ),
            max_size=15,
        )
    )
    @settings(max_examples=50)
    def test_property_roundtrip(self, transactions):
        db = TransactionDatabase(transactions, num_items=51)
        loaded = fimi_loads(fimi_dumps(db), num_items=51)
        assert list(loaded) == list(db)
