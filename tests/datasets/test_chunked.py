"""Chunked-loader fuzz and contract tests.

The chunked loaders feed the trusted zero-validation
``from_sorted_rows`` path and the mmap spill store, so *they* carry
the validation burden: every malformed input must raise a typed
:class:`DatasetFormatError` (with source + line) or
:class:`DatasetTruncatedError` — never silently mis-count.  This
suite fuzzes the failure modes the wire can actually produce
(truncated final record, gzip members cut short, duplicate /
non-monotone / non-integer items, blank lines) across all three
formats, and pins chunk geometry, ``read_fimi`` parity, and the
deterministic tier synthesis the registry serves.
"""

from __future__ import annotations

import gzip
import io
import json

import numpy as np
import pytest

from repro.datasets.chunked import (
    DEFAULT_CHUNK_SIZE,
    TransactionChunk,
    detect_format,
    iter_transaction_chunks,
    load_chunked,
    synthesize_tier_chunks,
    write_tier_file,
)
from repro.datasets.fimi import parse_item_token, read_fimi
from repro.errors import (
    DatasetFormatError,
    DatasetTruncatedError,
    ValidationError,
    error_to_wire,
)


def write_text(path, text: str) -> None:
    path.write_text(text, encoding="utf-8")


def rows_of(chunks):
    return [row.tolist() for chunk in chunks for row in chunk.rows]


# ----------------------------------------------------------------------
# Geometry and format detection
# ----------------------------------------------------------------------
class TestChunkGeometry:
    def test_fixed_size_chunks_with_smaller_tail(self, tmp_path):
        path = tmp_path / "db.dat"
        write_text(path, "".join(f"{i} {i + 1}\n" for i in range(7)))
        chunks = list(iter_transaction_chunks(path, chunk_size=3))
        assert [chunk.num_rows for chunk in chunks] == [3, 3, 1]
        assert [chunk.start for chunk in chunks] == [0, 3, 6]
        assert chunks[-1].max_item == 7
        assert chunks[0].total_size == 6
        assert rows_of(chunks) == [[i, i + 1] for i in range(7)]

    def test_chunk_database_roundtrip(self, tmp_path):
        path = tmp_path / "db.dat"
        write_text(path, "0 2\n1 3\n")
        (chunk,) = iter_transaction_chunks(path, chunk_size=10)
        database = chunk.database(num_items=4)
        assert database.num_transactions == 2
        assert database.num_items == 4

    def test_default_chunk_size_matches_shard_default(self):
        from repro.engine.sharded import DEFAULT_SHARD_SIZE

        assert DEFAULT_CHUNK_SIZE == DEFAULT_SHARD_SIZE

    def test_chunk_size_must_be_positive(self, tmp_path):
        path = tmp_path / "db.dat"
        write_text(path, "1\n")
        with pytest.raises(ValidationError):
            list(iter_transaction_chunks(path, chunk_size=0))

    @pytest.mark.parametrize(
        ("name", "expected"),
        [
            ("data.dat", "fimi"),
            ("data.dat.gz", "fimi"),
            ("data.txt", "fimi"),
            ("data.csv", "csv"),
            ("data.csv.gz", "csv"),
            ("data.ndjson", "ndjson"),
            ("data.jsonl.gz", "ndjson"),
            ("data.unknown", "fimi"),
        ],
    )
    def test_detect_format(self, name, expected):
        assert detect_format(name) == expected

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "db.dat"
        write_text(path, "1\n")
        with pytest.raises(ValidationError):
            list(iter_transaction_chunks(path, format="parquet"))

    def test_missing_file_is_format_error(self, tmp_path):
        with pytest.raises(DatasetFormatError):
            list(iter_transaction_chunks(tmp_path / "absent.dat"))


# ----------------------------------------------------------------------
# Truncation: the stream ends mid-record
# ----------------------------------------------------------------------
class TestTruncation:
    def test_missing_final_newline_raises(self, tmp_path):
        path = tmp_path / "db.dat"
        write_text(path, "0 1\n2 3\n4 5")  # cut mid-transfer
        with pytest.raises(DatasetTruncatedError) as excinfo:
            list(iter_transaction_chunks(path))
        assert excinfo.value.line == 3
        assert str(path) in str(excinfo.value.source)

    def test_truncated_row_never_reaches_a_chunk(self, tmp_path):
        """The cut line must not ride out inside an already-full
        chunk: nothing from the poisoned tail is yielded."""
        path = tmp_path / "db.dat"
        write_text(path, "0\n1\n2\n3 4")
        received = []
        with pytest.raises(DatasetTruncatedError):
            for chunk in iter_transaction_chunks(path, chunk_size=2):
                received.extend(rows_of([chunk]))
        assert received == [[0], [1]]  # the complete first chunk only

    def test_gzip_member_cut_short(self, tmp_path):
        path = tmp_path / "db.dat.gz"
        payload = "".join(f"{i}\n" for i in range(2_000))
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(payload)
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) // 2])  # cut mid-member
        with pytest.raises(DatasetTruncatedError) as excinfo:
            list(iter_transaction_chunks(path))
        assert excinfo.value.wire_code == "dataset_truncated"

    def test_corrupt_gzip_is_format_error(self, tmp_path):
        path = tmp_path / "db.dat.gz"
        path.write_bytes(b"this is not gzip at all")
        with pytest.raises(DatasetFormatError):
            list(iter_transaction_chunks(path))

    def test_truncated_error_wire_shape(self):
        error = DatasetTruncatedError(
            "line 3: stream ends mid-record", source="db.dat", line=3
        )
        wire = error_to_wire(error)
        assert wire["error"] == "dataset_truncated"
        assert wire["source"] == "db.dat"
        assert wire["line"] == 3


# ----------------------------------------------------------------------
# Strict row validation (all formats feed from_sorted_rows)
# ----------------------------------------------------------------------
class TestStrictValidation:
    @pytest.mark.parametrize(
        ("payload", "fragment"),
        [
            ("0 3 3 5\n", "duplicate"),
            ("5 2\n", "non-monotone"),
            ("1 -4\n", "negative"),
            ("1 x\n", "non-integer"),
            ("1_0\n", "non-integer"),  # int("1_0") would accept this
            ("+5\n", "non-integer"),  # int("+5") would accept this
            ("١٢\n", "non-integer"),  # Arabic-Indic digits
            ("0 9999999999\n", "out of range"),
        ],
    )
    def test_fimi_rejections(self, tmp_path, payload, fragment):
        path = tmp_path / "db.dat"
        write_text(path, "0 1\n" + payload)
        with pytest.raises(DatasetFormatError) as excinfo:
            list(iter_transaction_chunks(path, num_items=100))
        assert fragment in str(excinfo.value)
        assert excinfo.value.line == 2

    def test_fimi_blank_lines_skipped_like_read_fimi(self, tmp_path):
        path = tmp_path / "db.dat"
        write_text(path, "0 1\n\n  \n2 3\n")
        chunks = list(iter_transaction_chunks(path))
        assert rows_of(chunks) == [[0, 1], [2, 3]]

    def test_csv_blank_line_rejected(self, tmp_path):
        path = tmp_path / "db.csv"
        write_text(path, "0,1\n\n2,3\n")
        with pytest.raises(DatasetFormatError) as excinfo:
            list(iter_transaction_chunks(path))
        assert "blank" in str(excinfo.value)
        assert excinfo.value.line == 2

    def test_csv_parses_with_spaces(self, tmp_path):
        path = tmp_path / "db.csv"
        write_text(path, "0, 1, 5\n2,3\n")
        chunks = list(iter_transaction_chunks(path))
        assert rows_of(chunks) == [[0, 1, 5], [2, 3]]

    def test_ndjson_array_and_object_records(self, tmp_path):
        path = tmp_path / "db.ndjson"
        write_text(path, '[0, 2]\n{"items": [1, 3, 4]}\n')
        chunks = list(iter_transaction_chunks(path))
        assert rows_of(chunks) == [[0, 2], [1, 3, 4]]

    @pytest.mark.parametrize(
        "payload",
        [
            "not json\n",
            '"scalar"\n',
            '{"rows": [1]}\n',
            "[true]\n",
            "[1.5]\n",
            "[-3]\n",
            "[]\n",
            "\n",
        ],
    )
    def test_ndjson_rejections(self, tmp_path, payload):
        path = tmp_path / "db.ndjson"
        write_text(path, "[0]\n" + payload)
        with pytest.raises(DatasetFormatError) as excinfo:
            list(iter_transaction_chunks(path))
        assert excinfo.value.line == 2

    def test_empty_fimi_transaction_line_rejected(self, tmp_path):
        # A line of only separators parses to zero items in csv.
        path = tmp_path / "db.csv"
        write_text(path, "0,1\n,\n")
        with pytest.raises(DatasetFormatError):
            list(iter_transaction_chunks(path))

    def test_parse_item_token_is_strict(self):
        assert parse_item_token("42", 1) == 42
        for bad in ("1_0", "+5", " 7", "0x1f", "", "١"):
            with pytest.raises(DatasetFormatError):
                parse_item_token(bad, 1)
        with pytest.raises(DatasetFormatError, match="negative"):
            parse_item_token("-5", 1)


# ----------------------------------------------------------------------
# Parity with the forgiving materializing loader
# ----------------------------------------------------------------------
class TestReadFimiParity:
    @pytest.mark.parametrize("seed", range(4))
    def test_load_chunked_matches_read_fimi(self, tmp_path, seed):
        rng = np.random.default_rng(seed)
        lines = []
        for _ in range(50):
            size = int(rng.integers(1, 8))
            row = np.unique(rng.integers(0, 30, size=size))
            lines.append(" ".join(str(int(i)) for i in row))
        path = tmp_path / "db.dat"
        write_text(path, "\n".join(lines) + "\n")

        chunked = load_chunked(path, chunk_size=int(rng.integers(1, 9)))
        reference = read_fimi(path)
        assert chunked.num_transactions == reference.num_transactions
        assert chunked.num_items == reference.num_items
        for mine, theirs in zip(chunked.rows, reference.rows):
            np.testing.assert_array_equal(mine, theirs)
        np.testing.assert_array_equal(
            chunked.item_supports(), reference.item_supports()
        )

    def test_gzip_and_plain_agree(self, tmp_path):
        text = "0 1 2\n3 4\n0 4\n"
        plain = tmp_path / "db.dat"
        write_text(plain, text)
        zipped = tmp_path / "db.dat.gz"
        with gzip.open(zipped, "wt", encoding="utf-8") as handle:
            handle.write(text)
        assert rows_of(iter_transaction_chunks(plain)) == (
            rows_of(iter_transaction_chunks(zipped))
        )

    def test_stream_source_supported(self):
        stream = io.StringIO("0 1\n2\n")
        chunks = list(iter_transaction_chunks(stream, chunk_size=1))
        assert rows_of(chunks) == [[0, 1], [2]]


# ----------------------------------------------------------------------
# Tier synthesis + registry wiring
# ----------------------------------------------------------------------
class TestTiers:
    def test_synthesis_is_deterministic(self):
        first = rows_of(
            synthesize_tier_chunks(200, 50, 5.0, seed=9, chunk_size=64)
        )
        second = rows_of(
            synthesize_tier_chunks(200, 50, 5.0, seed=9, chunk_size=64)
        )
        assert first == second
        assert len(first) == 200
        assert all(rows for rows in first)  # never an empty row

    def test_synthesis_chunk_size_does_not_change_rows(self):
        coarse = rows_of(synthesize_tier_chunks(100, 40, 6.0, seed=3,
                                                chunk_size=100))
        fine = rows_of(synthesize_tier_chunks(100, 40, 6.0, seed=3,
                                              chunk_size=7))
        # Different chunking draws RNG in different batch shapes, so
        # only the geometry contract holds: same row count, valid rows.
        assert len(coarse) == len(fine) == 100

    def test_write_tier_file_roundtrip(self, tmp_path):
        chunks = list(
            synthesize_tier_chunks(120, 30, 4.0, seed=5, chunk_size=32)
        )
        path = tmp_path / "tier.dat.gz"
        written = write_tier_file(path, iter(chunks))
        assert written == 120
        loaded = rows_of(iter_transaction_chunks(path, chunk_size=50))
        assert loaded == rows_of(chunks)

    def test_registry_serves_tiers(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TIER_DIR", str(tmp_path))
        from repro.datasets.registry import (
            TIERS,
            dataset_chunks,
            ensure_tier_file,
            load_dataset,
            registered_names,
            tier_names,
        )

        assert set(tier_names()) <= set(registered_names())
        spec = TIERS["tier-tiny"]
        path = ensure_tier_file("tier-tiny")
        assert path.exists()
        num_items, chunks = dataset_chunks("tier-tiny", chunk_size=512)
        assert num_items == spec.num_items
        total = sum(chunk.num_rows for chunk in chunks)
        assert total == spec.num_transactions
        database = load_dataset("tier-tiny")
        assert database.num_transactions == spec.num_transactions
        assert database.num_items == spec.num_items

    def test_classic_datasets_chunk_identically(self):
        from repro.datasets.registry import dataset_chunks, load_dataset

        database = load_dataset("mushroom")
        num_items, chunks = dataset_chunks("mushroom", chunk_size=1000)
        assert num_items == database.num_items
        rebuilt = rows_of(chunks)
        assert len(rebuilt) == database.num_transactions
        for mine, theirs in zip(rebuilt, database.rows):
            np.testing.assert_array_equal(mine, theirs)
