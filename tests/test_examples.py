"""Smoke tests: the example scripts must run and produce their
headline output.  Guards against API drift rotting the examples.

Only the fast examples run here (the clickstream example mines
kosarak exactly and belongs to a manual pass); each is executed in a
subprocess exactly as a user would run it.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "1.0", "20")
        assert "false negative rate" in out
        assert "median relative error" in out
        assert "lambda" in out

    def test_bring_your_own_data(self):
        out = run_example("bring_your_own_data.py")
        assert "released" in out
        assert "rank,itemset,size" in out

    def test_market_basket(self):
        out = run_example("market_basket_release.py", "1.0")
        assert "association rules" in out
        assert "PrivBasis finds" in out

    def test_census_attributes(self):
        out = run_example("census_attributes.py")
        assert "consistent?" in out
        assert "epsilon" in out

    def test_serving_session(self):
        out = run_example("serving_session.py", "--smoke")
        assert "serving a batch" in out
        assert "over-budget request refused" in out
        assert "cache info" in out

    def test_streaming_ingest(self):
        out = run_example("streaming_ingest.py", "--smoke")
        assert "log at v0" in out
        assert "v2:" in out  # releases advanced with the feed
        assert "historical snapshot v0" in out

    def test_planned_release(self):
        out = run_example("planned_release.py", "--smoke")
        assert "dry-run pricing" in out
        assert "ledger untouched after planning" in out
        assert "traced release" in out
        assert "ledger after release" in out
