"""End-to-end integration tests across the whole library.

These exercise the exact pipelines the benchmarks run, at reduced
scale, and check the paper's qualitative claims hold: PB beats TF,
accuracy improves with ε, DP accounting is airtight.
"""

import pytest

from repro.baselines.tf import tf_method
from repro.core.privbasis import privbasis
from repro.datasets.generators import mushroom_like, retail_like
from repro.datasets.registry import cached_top_k, clear_caches
from repro.datasets.transactions import TransactionDatabase
from repro.dp.rng import spawn_rngs
from repro.fim.topk import top_k_itemsets
from repro.metrics.utility import evaluate_release


@pytest.fixture(scope="module")
def mushroom():
    return mushroom_like(rng=2012)


@pytest.fixture(scope="module")
def retail():
    return retail_like(scale=0.25, rng=2012)


@pytest.fixture(autouse=True, scope="module")
def clean():
    clear_caches()
    yield
    clear_caches()


def average_fnr(database, method, trials=3, seed=0, **kwargs):
    truth = cached_top_k(database, kwargs["k"])
    total = 0.0
    for generator in spawn_rngs(seed, trials):
        release = method(database, rng=generator, **kwargs)
        total += evaluate_release(release, database, truth)["fnr"]
    return total / trials


class TestPaperClaims:
    def test_pb_beats_tf_on_mushroom_k100(self, mushroom):
        """Paper Fig. 1: PB ≪ TF on mushroom at k = 100."""
        pb = average_fnr(mushroom, privbasis, k=100, epsilon=0.5)
        tf = average_fnr(mushroom, tf_method, k=100, epsilon=0.5, m=2)
        assert pb < 0.2
        assert tf > 0.5
        assert pb < tf

    def test_pb_beats_tf_on_retail(self, retail):
        """Paper Fig. 3 regime: multi-basis PB still beats TF."""
        pb = average_fnr(retail, privbasis, k=50, epsilon=1.0)
        tf = average_fnr(retail, tf_method, k=50, epsilon=1.0, m=1)
        assert pb < tf

    def test_pb_fnr_improves_with_epsilon(self, mushroom):
        low = average_fnr(mushroom, privbasis, k=100, epsilon=0.1,
                          seed=3)
        high = average_fnr(mushroom, privbasis, k=100, epsilon=1.0,
                           seed=3)
        assert high <= low

    def test_pb_single_basis_on_mushroom(self, mushroom):
        result = privbasis(mushroom, k=50, epsilon=1.0, rng=5)
        assert result.lam <= 12
        assert result.used_single_basis

    def test_pb_multi_basis_on_retail(self, retail):
        result = privbasis(retail, k=100, epsilon=1.0, rng=5)
        assert result.lam > 12
        assert result.basis_set.width > 1
        assert result.basis_set.length <= 12


class TestPrivacyAccounting:
    def test_pb_spends_exactly_epsilon(self, mushroom):
        for epsilon in (0.1, 0.5, 1.0):
            result = privbasis(mushroom, k=50, epsilon=epsilon, rng=1)
            assert result.budget.spent == pytest.approx(
                epsilon, rel=1e-9
            )
            result.budget.assert_within_budget()

    def test_pb_budget_three_or_four_entries(self, mushroom, retail):
        single = privbasis(mushroom, k=50, epsilon=1.0, rng=1)
        assert len(single.budget.entries) == 3  # λ, items, bins
        multi = privbasis(retail, k=100, epsilon=1.0, rng=1)
        assert len(multi.budget.entries) == 4  # λ, items, pairs, bins


class TestConvergenceToExact:
    def test_both_methods_converge(self, mushroom):
        truth = {
            itemset for itemset, _ in top_k_itemsets(mushroom, 30)
        }
        pb = privbasis(mushroom, k=30, epsilon=1e8, rng=2)
        assert pb.itemset_set() == truth

    def test_noisy_frequencies_concentrate(self, mushroom):
        result = privbasis(mushroom, k=30, epsilon=1e8, rng=2)
        n = mushroom.num_transactions
        for entry in result.itemsets:
            exact = mushroom.support(entry.itemset) / n
            assert entry.noisy_frequency == pytest.approx(
                exact, abs=1e-4
            )


class TestRobustness:
    def test_pb_on_tiny_vocabulary(self):
        db = TransactionDatabase(
            [[0, 1], [0, 1], [1, 2], [0]], num_items=3
        )
        result = privbasis(db, k=3, epsilon=1.0, rng=0)
        assert len(result.itemsets) == 3

    def test_pb_k_exceeding_candidates(self):
        db = TransactionDatabase([[0], [1]] * 5, num_items=2)
        result = privbasis(db, k=40, epsilon=1.0, rng=0)
        # Only 3 non-empty subsets of {0,1} exist.
        assert 1 <= len(result.itemsets) <= 3

    def test_tf_on_tiny_vocabulary(self):
        db = TransactionDatabase(
            [[0, 1], [0, 1], [1, 2], [0]], num_items=3
        )
        result = tf_method(db, k=3, epsilon=1.0, m=2, rng=0)
        assert len(result.itemsets) == 3

    def test_pb_handles_uniform_data(self):
        # No structure at all: every transaction identical.
        db = TransactionDatabase([[0, 1, 2]] * 50, num_items=3)
        result = privbasis(db, k=5, epsilon=1.0, rng=0)
        assert len(result.itemsets) == 5
