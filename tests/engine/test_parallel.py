"""Multi-core counting-plane tests: shm, worker pool, lifecycle.

Covers what the backend-equivalence suite (which already runs a
``processes``-mode :class:`ShardedBackend` against the oracle) cannot:
the shared-memory publish/attach roundtrip, the spawn-vs-fork start
method matrix, the worker-crash → clean-:class:`WorkerPoolError`
contract with pool rebuild, the thread-mode fallback when shared
memory is unavailable, and the close/context-manager lifecycle down
through :class:`PrivBasisSession`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.transactions import TransactionDatabase
from repro.engine import (
    BitmapBackend,
    CachedBackend,
    NaiveBackend,
    PrivBasisSession,
    ShardedBackend,
)
from repro.engine import parallel, shm
from repro.errors import ValidationError, WorkerPoolError


def random_database(
    seed: int, num_transactions: int = 60, num_items: int = 16
) -> TransactionDatabase:
    rng = np.random.default_rng(seed)
    member = rng.random((num_transactions, num_items)) < 0.3
    return TransactionDatabase(
        [np.flatnonzero(row) for row in member], num_items=num_items
    )


requires_shm = pytest.mark.skipif(
    not shm.shared_memory_available(),
    reason="platform offers no shared memory",
)


# ----------------------------------------------------------------------
# Shared-memory segments
# ----------------------------------------------------------------------
@requires_shm
class TestSegments:
    def test_publish_attach_roundtrip(self):
        database = random_database(0)
        segment = shm.publish_shard(database)
        try:
            block, attached = shm.attach_segment(segment.spec)
            try:
                assert attached.num_transactions == (
                    database.num_transactions
                )
                assert attached.num_items == database.num_items
                for original, copy in zip(
                    database.rows, attached.rows
                ):
                    np.testing.assert_array_equal(copy, original)
                np.testing.assert_array_equal(
                    attached.item_supports(), database.item_supports()
                )
            finally:
                block.close()
        finally:
            segment.unlink()

    def test_empty_shard_roundtrip(self):
        database = TransactionDatabase([], num_items=5)
        segment = shm.publish_shard(database)
        try:
            block, attached = shm.attach_segment(segment.spec)
            try:
                assert attached.num_transactions == 0
                assert attached.num_items == 5
            finally:
                block.close()
        finally:
            segment.unlink()

    def test_unlink_is_idempotent(self):
        segment = shm.publish_shard(random_database(1))
        segment.unlink()
        segment.unlink()  # second call must not raise

    def test_attach_rejects_inconsistent_spec(self):
        segment = shm.publish_shard(random_database(2))
        try:
            bad_spec = shm.ShardSegmentSpec(
                name=segment.spec.name,
                num_rows=segment.spec.num_rows,
                total_size=segment.spec.total_size + 1,
                num_items=segment.spec.num_items,
            )
            with pytest.raises(ValidationError):
                shm.attach_segment(bad_spec)
        finally:
            segment.unlink()


# ----------------------------------------------------------------------
# Start methods
# ----------------------------------------------------------------------
@requires_shm
@pytest.mark.parametrize("method", ["spawn", "fork", "forkserver"])
def test_start_method_matrix(method):
    """Every OS-offered start method answers bit-identically."""
    if method not in parallel.start_methods_available():
        pytest.skip(f"start method {method!r} not available here")
    database = random_database(3)
    reference = BitmapBackend(database)
    with ShardedBackend(
        database,
        shard_size=17,
        max_workers=2,
        mode="processes",
        start_method=method,
    ) as backend:
        assert backend.effective_mode == "processes"
        np.testing.assert_array_equal(
            backend.item_supports(), reference.item_supports()
        )
        np.testing.assert_array_equal(
            backend.bin_counts([1, 4, 9]),
            reference.bin_counts([1, 4, 9]),
        )
        assert backend.pairwise_supports(range(5)) == (
            reference.pairwise_supports(range(5))
        )


def test_unavailable_start_method_is_rejected():
    with pytest.raises(ValidationError):
        parallel.WorkerPool(1, start_method="not-a-method")


def test_worker_pool_rejects_bad_width():
    with pytest.raises(ValidationError):
        parallel.WorkerPool(0)


# ----------------------------------------------------------------------
# Worker crash → clean error, then recovery
# ----------------------------------------------------------------------
@requires_shm
def test_worker_crash_raises_clean_error_and_pool_rebuilds():
    database = random_database(4)
    reference = BitmapBackend(database)
    backend = ShardedBackend(
        database, shard_size=13, max_workers=1, mode="processes"
    )
    try:
        expected = reference.bin_counts([0, 2, 5])
        np.testing.assert_array_equal(
            backend.bin_counts([0, 2, 5]), expected
        )
        crashed_pool = backend._pool
        with pytest.raises(WorkerPoolError):
            crashed_pool.map_tasks([("crash_for_testing", None, 1)])
        assert crashed_pool.broken
        # The broken pool refuses further work with the same clean
        # error instead of hanging on dead workers.
        with pytest.raises(WorkerPoolError):
            crashed_pool.map_tasks([("ping", None, None)])
        # The backend transparently rebuilds a fresh pool and keeps
        # answering bit-identically.
        np.testing.assert_array_equal(
            backend.bin_counts([0, 2, 5]), expected
        )
        assert backend._pool is not crashed_pool
        assert not backend._pool.broken
    finally:
        backend.close()


@requires_shm
def test_crash_during_backend_query_discards_pool():
    database = random_database(5)
    backend = ShardedBackend(
        database, shard_size=11, max_workers=1, mode="processes"
    )
    try:
        backend.bin_counts([1])  # start the pool
        pool = backend._pool
        with pytest.raises(WorkerPoolError):
            backend._dispatch("crash_for_testing", 1)
        assert backend._pool is None  # discarded, not reused
        assert pool.broken
        backend.bin_counts([1])  # next query rebuilds
        assert backend._pool is not None
    finally:
        backend.close()


# ----------------------------------------------------------------------
# Fallbacks and lifecycle
# ----------------------------------------------------------------------
def test_thread_fallback_when_shared_memory_unavailable(monkeypatch):
    monkeypatch.setattr(
        shm, "shared_memory_available", lambda: False
    )
    database = random_database(6)
    backend = ShardedBackend(
        database, shard_size=13, mode="processes"
    )
    reference = BitmapBackend(database)
    np.testing.assert_array_equal(
        backend.item_supports(), reference.item_supports()
    )
    assert backend.effective_mode == "threads"
    assert backend._pool is None  # no workers were ever started


def test_fallback_when_the_os_denies_shared_memory(monkeypatch):
    """Simulate a /dev/shm-less container at the OS boundary.

    Unlike the test above (which stubs the probe function), this
    patches ``SharedMemory`` itself to fail the way a container
    without a shm mount does — ``OSError(ENOSYS)`` — so the *real*
    ``shared_memory_available()`` probe runs, reports honestly, and
    the processes-mode backend still answers correctly via the thread
    fallback.  This is the regression contract that keeps the whole
    suite green on hosts without shared memory.
    """
    import errno
    from multiprocessing import shared_memory

    def denied(*args, **kwargs):
        raise OSError(errno.ENOSYS, "shared memory unavailable")

    monkeypatch.setattr(shared_memory, "SharedMemory", denied)
    assert shm.shared_memory_available() is False
    database = random_database(9)
    backend = ShardedBackend(
        database, shard_size=13, mode="processes"
    )
    reference = BitmapBackend(database)
    np.testing.assert_array_equal(
        backend.item_supports(), reference.item_supports()
    )
    np.testing.assert_array_equal(
        backend.bin_counts([1, 4]), reference.bin_counts([1, 4])
    )
    assert backend.effective_mode == "threads"
    assert backend._pool is None  # no workers were ever started


@requires_shm
def test_close_tears_down_and_falls_back_to_threads():
    database = random_database(7)
    reference = BitmapBackend(database)
    backend = ShardedBackend(
        database, shard_size=13, max_workers=1, mode="processes"
    )
    np.testing.assert_array_equal(
        backend.bin_counts([2, 3]), reference.bin_counts([2, 3])
    )
    segments = list(backend._segments)
    backend.close()
    backend.close()  # idempotent
    assert backend._pool is None
    assert backend._segments is None
    # The published blocks are gone from the OS.
    from multiprocessing import shared_memory

    for segment in segments:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=segment.spec.name)
    # Closed backends stay queryable — in thread mode.
    np.testing.assert_array_equal(
        backend.bin_counts([2, 3]), reference.bin_counts([2, 3])
    )


@requires_shm
def test_session_close_forwards_to_process_backend():
    database = random_database(8)
    inner = ShardedBackend(
        database, shard_size=13, max_workers=1, mode="processes"
    )
    with PrivBasisSession(
        database, backend=CachedBackend(inner)
    ) as session:
        result = session.release(k=5, epsilon=1.0, rng=0)
        assert len(result.itemsets) == 5
    assert inner._pool is None
    assert inner._segments is None


@requires_shm
def test_extend_republishes_only_the_tail():
    base = random_database(9, num_transactions=40)
    backend = ShardedBackend(
        base, shard_size=16, max_workers=1, mode="processes"
    )
    try:
        backend.bin_counts([1, 2])  # publish 3 segments (16/16/8)
        before = [segment.spec.name for segment in backend._segments]
        delta = random_database(10, num_transactions=10)
        backend.extend(delta)  # tail grows 8 → 16, new shard of 2
        after = [segment.spec.name for segment in backend._segments]
        assert after[:2] == before[:2]  # full shards untouched
        assert after[2] != before[2]  # rebuilt tail republished
        assert len(after) == 4
        oracle = NaiveBackend(backend.database)
        np.testing.assert_array_equal(
            backend.bin_counts([1, 2]), oracle.bin_counts([1, 2])
        )
    finally:
        backend.close()


# ----------------------------------------------------------------------
# Batched primitives
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(3))
def test_batched_primitives_match_scalar_loops(seed):
    database = random_database(seed + 20)
    rng = np.random.default_rng(seed)
    itemsets = [
        tuple(
            sorted(
                int(item)
                for item in rng.choice(16, size=size, replace=False)
            )
        )
        for size in (1, 2, 3, 2, 1)
    ] + [()]
    bases = [
        [int(item) for item in rng.choice(16, size=size, replace=False)]
        for size in (1, 3, 5)
    ]
    base = [int(item) for item in rng.choice(16, size=2, replace=False)]
    candidates = [
        int(item) for item in range(16) if item not in base
    ]
    oracle = NaiveBackend(database)
    expected_conjunctions = [
        oracle.conjunction_support(itemset) for itemset in itemsets
    ]
    expected_bins = [oracle.bin_counts(basis) for basis in bases]
    expected_extensions = np.array(
        [
            oracle.conjunction_support(tuple(base) + (candidate,))
            for candidate in candidates
        ],
        dtype=np.int64,
    )
    backends = [
        oracle,
        BitmapBackend(database),
        ShardedBackend(database, shard_size=13, max_workers=2),
        ShardedBackend(
            database, shard_size=13, max_workers=2, mode="processes"
        ),
        CachedBackend(BitmapBackend(database)),
    ]
    for backend in backends:
        assert backend.conjunction_supports(itemsets) == (
            expected_conjunctions
        ), repr(backend)
        for got, want in zip(
            backend.bin_counts_batch(bases), expected_bins
        ):
            np.testing.assert_array_equal(
                got, want, err_msg=repr(backend)
            )
        np.testing.assert_array_equal(
            backend.extension_supports(base, candidates),
            expected_extensions,
            err_msg=repr(backend),
        )
        np.testing.assert_array_equal(
            backend.extension_supports(base, []),
            np.zeros(0, dtype=np.int64),
            err_msg=repr(backend),
        )
        backend.close()


def test_cached_batches_only_misses():
    database = random_database(30)
    inner = BitmapBackend(database)
    backend = CachedBackend(inner)
    bases = [[1, 2], [3, 4]]
    first = backend.bin_counts_batch(bases)
    info = backend.cache_info()["bin_counts"]
    assert info == {"hits": 0, "misses": 2}
    second = backend.bin_counts_batch(bases + [[1, 2]])
    info = backend.cache_info()["bin_counts"]
    assert info == {"hits": 3, "misses": 2}
    for got, want in zip(second[:2], first):
        np.testing.assert_array_equal(got, want)
    np.testing.assert_array_equal(second[2], first[0])
    # Conjunctions: repeats inside one batch count as hits, and the
    # inner backend only ever sees each distinct key once.
    supports = backend.conjunction_supports([(1,), (1,), (2, 3)])
    assert supports[0] == supports[1]
    info = backend.cache_info()["conjunction_support"]
    assert info == {"hits": 1, "misses": 2}
