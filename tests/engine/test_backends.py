"""Backend-equivalence property tests.

Every :class:`~repro.engine.backend.CountingBackend` must return
*identical exact counts* — the DP mechanisms downstream are then
backend-independent by construction.  These tests pin
:class:`BitmapBackend` and :class:`ShardedBackend` (several shard
sizes and worker counts, in both ``threads`` and ``processes``
execution modes) against the pure-Python :class:`NaiveBackend` oracle
on random small databases, plus the edge cases (empty transactions,
empty pools, the empty itemset).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.transactions import TransactionDatabase
from repro.engine import (
    BitmapBackend,
    CachedBackend,
    NaiveBackend,
    ShardedBackend,
    as_backend,
    resolve_backend,
)
from repro.errors import ValidationError
from repro.fim.counting import (
    DEFAULT_MAX_BASIS_LENGTH,
    MAX_BIN_BASIS_LENGTH,
    bin_counts_for_items,
    database_of,
)


def random_database(
    seed: int, num_transactions: int = 80, num_items: int = 14
) -> TransactionDatabase:
    """A random sparse database (some transactions may be empty)."""
    rng = np.random.default_rng(seed)
    member = rng.random((num_transactions, num_items)) < rng.uniform(
        0.05, 0.4
    )
    rows = [np.flatnonzero(row) for row in member]
    return TransactionDatabase(rows, num_items=num_items)


def backends_under_test(database: TransactionDatabase):
    """The oracle plus every production backend configuration.

    The ``processes`` entry exercises the multi-core plane end to end
    (shared-memory publication, descriptor dispatch, merge); on
    platforms without shared memory it transparently answers in
    thread mode, which keeps the equivalence property meaningful
    everywhere.
    """
    return [
        NaiveBackend(database),
        BitmapBackend(database),
        ShardedBackend(database, shard_size=7, max_workers=1),
        ShardedBackend(database, shard_size=13, max_workers=3),
        ShardedBackend(database, shard_size=10_000),  # single shard
        ShardedBackend(
            database, shard_size=13, max_workers=2, mode="processes"
        ),
        CachedBackend(BitmapBackend(database)),
    ]


@pytest.mark.parametrize("seed", range(6))
class TestBackendEquivalence:
    def test_item_supports_match(self, seed):
        database = random_database(seed)
        oracle, *others = backends_under_test(database)
        expected = oracle.item_supports()
        for backend in others:
            np.testing.assert_array_equal(
                backend.item_supports(), expected, err_msg=repr(backend)
            )

    def test_pairwise_supports_match(self, seed):
        database = random_database(seed)
        rng = np.random.default_rng(seed + 100)
        pool = sorted(
            rng.choice(database.num_items, size=6, replace=False)
        )
        oracle, *others = backends_under_test(database)
        expected = oracle.pairwise_supports(pool)
        assert len(expected) == 15  # all (6 choose 2) pairs present
        for backend in others:
            assert backend.pairwise_supports(pool) == expected, repr(
                backend
            )

    def test_conjunction_supports_match(self, seed):
        database = random_database(seed)
        rng = np.random.default_rng(seed + 200)
        oracle, *others = backends_under_test(database)
        itemsets = [
            sorted(rng.choice(database.num_items, size=size,
                              replace=False))
            for size in (1, 2, 3, 5)
        ] + [()]  # the empty itemset has support N
        for itemset in itemsets:
            expected = oracle.conjunction_support(itemset)
            for backend in others:
                assert (
                    backend.conjunction_support(itemset) == expected
                ), (repr(backend), itemset)

    def test_bin_counts_match(self, seed):
        database = random_database(seed)
        rng = np.random.default_rng(seed + 300)
        oracle, *others = backends_under_test(database)
        for length in (1, 3, 6):
            basis = [
                int(item)
                for item in rng.choice(
                    database.num_items, size=length, replace=False
                )
            ]
            expected = oracle.bin_counts(basis)
            assert expected.sum() == database.num_transactions
            for backend in others:
                np.testing.assert_array_equal(
                    backend.bin_counts(basis),
                    expected,
                    err_msg=f"{backend!r} basis={basis}",
                )

    def test_top_k_matches_oracle_supports(self, seed):
        database = random_database(seed)
        oracle, *others = backends_under_test(database)
        for backend in others:
            top = backend.top_k(10)
            assert len(top) == 10
            for itemset, support in top:
                assert (
                    oracle.conjunction_support(itemset) == support
                ), repr(backend)


class TestEdgeCases:
    def test_empty_database(self):
        database = TransactionDatabase([], num_items=4)
        for backend in backends_under_test(database):
            assert backend.item_supports().tolist() == [0, 0, 0, 0]
            assert backend.conjunction_support((0, 1)) == 0
            assert backend.conjunction_support(()) == 0
            np.testing.assert_array_equal(
                backend.bin_counts((0, 2)), np.zeros(4, dtype=np.int64)
            )

    def test_all_empty_transactions(self):
        database = TransactionDatabase([(), (), ()], num_items=3)
        for backend in backends_under_test(database):
            assert backend.conjunction_support(()) == 3
            bins = backend.bin_counts((0, 1))
            assert bins[0] == 3 and bins.sum() == 3

    def test_pairwise_on_minimal_pool(self):
        database = random_database(1)
        for backend in backends_under_test(database):
            assert backend.pairwise_supports((3,)) == {}

    def test_sharded_shard_partitioning(self):
        database = random_database(2, num_transactions=25)
        backend = ShardedBackend(database, shard_size=10)
        assert backend.num_shards == 3
        assert backend.num_transactions == 25

    def test_sharded_rejects_bad_params(self):
        database = random_database(3)
        with pytest.raises(ValidationError):
            ShardedBackend(database, shard_size=0)
        with pytest.raises(ValidationError):
            ShardedBackend(database, max_workers=0)


class TestResolution:
    def test_as_backend_wraps_database(self):
        database = random_database(4)
        backend = as_backend(database)
        assert isinstance(backend, BitmapBackend)
        assert backend.database is database

    def test_as_backend_passes_backend_through(self):
        backend = NaiveBackend(random_database(4))
        assert as_backend(backend) is backend

    def test_resolve_rejects_mismatched_database(self):
        first = random_database(5)
        second = random_database(6)
        with pytest.raises(ValidationError):
            resolve_backend(first, BitmapBackend(second))

    def test_resolve_accepts_matching_pair(self):
        database = random_database(5)
        backend = BitmapBackend(database)
        assert resolve_backend(database, backend) is backend

    def test_as_backend_rejects_garbage(self):
        with pytest.raises(ValidationError):
            as_backend([[0, 1], [2]])

    def test_database_of_unwraps_backends(self):
        database = random_database(7)
        assert database_of(database) is database
        assert database_of(BitmapBackend(database)) is database
        with pytest.raises(ValidationError):
            database_of(42)


class TestBinKernelGuard:
    def test_guard_and_message_are_aligned(self):
        database = random_database(8, num_items=30)
        basis = list(range(MAX_BIN_BASIS_LENGTH + 1))
        with pytest.raises(ValidationError) as excinfo:
            bin_counts_for_items(database, basis)
        message = str(excinfo.value)
        assert str(MAX_BIN_BASIS_LENGTH) in message
        assert str(DEFAULT_MAX_BASIS_LENGTH) in message

    def test_constant_is_shared_with_core(self):
        from repro.core.basis import (
            DEFAULT_MAX_BASIS_LENGTH as core_constant,
        )

        assert core_constant == DEFAULT_MAX_BASIS_LENGTH == 12
        assert MAX_BIN_BASIS_LENGTH >= DEFAULT_MAX_BASIS_LENGTH
