"""Fault-injection tests for the mmap spill path.

The out-of-core plane's crash story: segment files are published
atomically (tmp → fsync → rename) and the manifest is written last,
so a crash can strand orphans but never publish a torn live segment;
damage that happens *after* publish (truncation by a dying disk, torn
bytes) is caught at reopen — cheap size verification by default,
full-payload CRC on demand — and repaired **per segment** with
:meth:`MmapShardStore.rebuild_segment`, leaving healthy shards'
files byte-identical.  ``ENOSPC`` during a spill surfaces as a typed
:class:`~repro.errors.StateStoreError` with the store still
consistent and the append retryable.
"""

from __future__ import annotations

import errno
import os

import numpy as np
import pytest

from repro.engine import BitmapBackend, ShardedBackend
from repro.engine import mmap as mmap_plane
from repro.engine.mmap import MmapShardStore
from repro.errors import (
    StateStoreError,
    TornSegmentError,
    error_to_wire,
)


def random_rows(seed: int, count: int = 40, num_items: int = 12):
    rng = np.random.default_rng(seed)
    return [
        np.unique(rng.integers(0, num_items, size=rng.integers(1, 6)))
        for _ in range(count)
    ]


def build_store(directory, seed=0, rows_per_segment=10,
                num_items=12):
    rows = random_rows(seed, num_items=num_items)
    store = MmapShardStore.create(
        directory, num_items=num_items,
        rows_per_segment=rows_per_segment,
    )
    store.append_rows(rows)
    store.flush()
    return store, rows


def segment_files(directory):
    return sorted(directory.glob("seg-*.seg"))


# ----------------------------------------------------------------------
# ENOSPC during spill
# ----------------------------------------------------------------------
class TestNoSpace:
    def test_enospc_is_typed_and_store_stays_consistent(
        self, tmp_path, monkeypatch
    ):
        directory = tmp_path / "shards"
        store, rows = build_store(directory, rows_per_segment=10)
        segments_before = store.num_segments
        reference = [row.tolist() for row in rows]

        real_fsync = os.fsync

        def full_disk(fd):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(mmap_plane.os, "fsync", full_disk)
        extra = random_rows(99, count=25)
        with pytest.raises(StateStoreError) as excinfo:
            store.append_rows(extra)
        assert "ENOSPC" in str(excinfo.value)

        # The failed publish left no torn segment and no orphan temp
        # file, and the already-published shards still answer.
        monkeypatch.setattr(mmap_plane.os, "fsync", real_fsync)
        assert not list(directory.glob("*.tmp"))
        assert store.num_segments == segments_before
        served = [
            row.tolist()
            for index in range(store.num_segments)
            for row in store.shard_database(index).rows
        ]
        assert served == reference[: len(served)]

        # Space freed: the failed rows are still pending (never lost,
        # never double-appended) — flush() drains them.
        store.flush()
        assert store.num_rows == len(rows) + len(extra)
        reopened = MmapShardStore.open(directory, verify="crc")
        assert reopened.num_rows == len(rows) + len(extra)
        reopened.close()
        store.close()


# ----------------------------------------------------------------------
# Torn segments: detect (size vs crc), repair one shard only
# ----------------------------------------------------------------------
class TestTornSegments:
    def test_truncation_detected_at_open(self, tmp_path):
        directory = tmp_path / "shards"
        store, _ = build_store(directory)
        store.close()
        victim = segment_files(directory)[1]
        data = victim.read_bytes()
        victim.write_bytes(data[: len(data) - 16])  # torn tail

        with pytest.raises(TornSegmentError) as excinfo:
            MmapShardStore.open(directory)
        assert excinfo.value.segments == (1,)
        assert str(directory) in excinfo.value.directory
        wire = error_to_wire(excinfo.value)
        assert wire["error"] == "torn_segment"
        assert wire["segments"] == [1]

    def test_bitflip_needs_crc_verification(self, tmp_path):
        directory = tmp_path / "shards"
        store, _ = build_store(directory)
        store.close()
        victim = segment_files(directory)[0]
        data = bytearray(victim.read_bytes())
        data[-5] ^= 0xFF  # same size, corrupt payload
        victim.write_bytes(bytes(data))

        # Size check cannot see it; CRC must.
        MmapShardStore.open(directory, verify="size").close()
        with pytest.raises(TornSegmentError) as excinfo:
            MmapShardStore.open(directory, verify="crc")
        assert excinfo.value.segments == (0,)

    def test_open_reports_every_torn_segment_at_once(self, tmp_path):
        directory = tmp_path / "shards"
        store, _ = build_store(directory, rows_per_segment=8)
        store.close()
        victims = segment_files(directory)[1:3]
        for victim in victims:
            victim.write_bytes(victim.read_bytes()[:-8])
        with pytest.raises(TornSegmentError) as excinfo:
            MmapShardStore.open(directory)
        assert excinfo.value.segments == (1, 2)

    def test_rebuild_repairs_only_the_torn_shard(self, tmp_path):
        directory = tmp_path / "shards"
        store, rows = build_store(directory, rows_per_segment=10)
        store.close()

        files = segment_files(directory)
        healthy_bytes = {
            path.name: path.read_bytes()
            for path in files
            if path is not files[1]
        }
        files[1].write_bytes(files[1].read_bytes()[:-8])

        # Reopen without verification to reach the repair API, then
        # rebuild shard 1 from its source rows.
        store = MmapShardStore.open(directory, verify="none")
        store.rebuild_segment(1, rows[10:20])
        store.close()

        # Fully healthy again — CRC-clean, bit-identical counts…
        repaired = MmapShardStore.open(directory, verify="crc")
        with ShardedBackend.from_store(repaired) as backend:
            from repro.datasets.transactions import TransactionDatabase

            reference = BitmapBackend(
                TransactionDatabase(rows, num_items=12)
            )
            np.testing.assert_array_equal(
                backend.item_supports(), reference.item_supports()
            )
        # …and the healthy shards' files were never rewritten.
        for path in segment_files(directory):
            if path.name in healthy_bytes:
                assert path.read_bytes() == healthy_bytes[path.name]

    def test_rebuild_rejects_wrong_row_count(self, tmp_path):
        from repro.errors import ValidationError

        directory = tmp_path / "shards"
        store, rows = build_store(directory, rows_per_segment=10)
        with pytest.raises(ValidationError):
            store.rebuild_segment(0, rows[:3])
        store.close()

    def test_orphan_tmp_from_a_crash_is_harmless(self, tmp_path):
        """A kill mid-``write_segment`` strands ``*.tmp`` — the
        manifest never saw it, so reopen ignores it."""
        directory = tmp_path / "shards"
        store, rows = build_store(directory)
        store.close()
        (directory / "seg-000099-g0000.seg.tmp").write_bytes(
            b"half-written garbage"
        )
        reopened = MmapShardStore.open(directory, verify="crc")
        assert reopened.num_rows == len(rows)
        reopened.close()

    def test_missing_manifest_is_state_store_error(self, tmp_path):
        directory = tmp_path / "shards"
        store, _ = build_store(directory)
        store.close()
        (directory / "manifest.json").unlink()
        with pytest.raises(StateStoreError):
            MmapShardStore.open(directory)
