"""Session/cache-layer tests.

Pin the two properties that make :class:`PrivBasisSession` a serving
layer: (1) results are *identical* to a direct ``privbasis()`` call
with the same seed — caching never changes outputs; (2) warm releases
actually reuse state — second identical release rebuilds no bitmap
pools and hits the bin-histogram/top-k caches, while a different basis
misses the bin cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.privbasis import privbasis
from repro.datasets.transactions import TransactionDatabase
from repro.engine import (
    BitmapBackend,
    CachedBackend,
    PrivBasisSession,
    ShardedBackend,
)
from repro.errors import BudgetExceededError, ValidationError


@pytest.fixture()
def database() -> TransactionDatabase:
    """A correlated database with a planted frequent block."""
    rng = np.random.default_rng(5)
    rows = []
    for _ in range(300):
        row = set()
        if rng.random() < 0.6:
            row.update(i for i in range(5) if rng.random() < 0.9)
        row.update(
            int(item)
            for item in rng.choice(20, size=3)
        )
        rows.append(sorted(row))
    return TransactionDatabase(rows, num_items=20)


class TestReleaseSemantics:
    def test_release_matches_direct_privbasis(self, database):
        session = PrivBasisSession(database)
        via_session = session.release(k=10, epsilon=1.0, rng=42)
        direct = privbasis(database, k=10, epsilon=1.0, rng=42)
        assert [entry.itemset for entry in via_session.itemsets] == [
            entry.itemset for entry in direct.itemsets
        ]
        assert via_session.basis_set.bases == direct.basis_set.bases

    def test_warm_release_matches_direct_privbasis(self, database):
        # Even after the caches are hot, outputs equal a cold call.
        session = PrivBasisSession(database)
        session.release(k=10, epsilon=1.0, rng=42)
        warm = session.release(k=10, epsilon=1.0, rng=43)
        direct = privbasis(database, k=10, epsilon=1.0, rng=43)
        assert [entry.itemset for entry in warm.itemsets] == [
            entry.itemset for entry in direct.itemsets
        ]

    def test_sharded_backend_session(self, database):
        backend = ShardedBackend(database, shard_size=64, max_workers=2)
        session = PrivBasisSession(database, backend=backend)
        result = session.release(k=8, epsilon=1.0, rng=7)
        direct = privbasis(database, k=8, epsilon=1.0, rng=7)
        assert [entry.itemset for entry in result.itemsets] == [
            entry.itemset for entry in direct.itemsets
        ]

    def test_fresh_noise_without_explicit_seed(self, database):
        session = PrivBasisSession(database, rng=11)
        first = session.release(k=10, epsilon=0.5)
        second = session.release(k=10, epsilon=0.5)
        # Same workload, fresh draws: the noisy frequencies differ.
        assert [e.noisy_frequency for e in first.itemsets] != [
            e.noisy_frequency for e in second.itemsets
        ]


class TestCacheBehavior:
    def test_second_release_rebuilds_no_bitmaps(self, database):
        inner = BitmapBackend(database)
        session = PrivBasisSession(database, backend=inner)
        session.release(k=10, epsilon=1.0, rng=3)
        pools_after_first = inner.pools_built
        misses_after_first = {
            kind: counters["misses"]
            for kind, counters in session.cache_info().items()
        }
        session.release(k=10, epsilon=1.0, rng=3)
        # Identical seed => identical bases => every exact query hits.
        assert inner.pools_built == pools_after_first
        for kind, counters in session.cache_info().items():
            assert counters["misses"] == misses_after_first[kind], kind
        assert session.cache_info()["bin_counts"]["hits"] >= 1
        assert session.cache_info()["top_k"]["hits"] >= 1
        assert session.cache_info()["item_supports"]["hits"] >= 1

    def test_bin_cache_hits_and_misses_by_basis(self, database):
        backend = CachedBackend(BitmapBackend(database))
        first = backend.bin_counts((0, 1, 2))
        again = backend.bin_counts((0, 1, 2))
        np.testing.assert_array_equal(first, again)
        backend.bin_counts((0, 1, 3))  # different basis: miss
        info = backend.cache_info()["bin_counts"]
        assert info == {"hits": 1, "misses": 2}

    def test_cached_arrays_are_isolated_copies(self, database):
        backend = CachedBackend(BitmapBackend(database))
        bins = backend.bin_counts((0, 1))
        bins[0] = -999
        assert backend.bin_counts((0, 1))[0] != -999
        supports = backend.item_supports()
        supports[0] = -999
        assert backend.item_supports()[0] != -999

    def test_clear_drops_memoized_state(self, database):
        backend = CachedBackend(BitmapBackend(database))
        backend.bin_counts((0, 1))
        backend.clear()
        backend.bin_counts((0, 1))
        assert backend.cache_info()["bin_counts"]["misses"] == 2

    def test_caches_are_bounded(self, database):
        backend = CachedBackend(
            BitmapBackend(database), cache_limits={"bin_counts": 2}
        )
        for item in range(4):
            backend.bin_counts((item,))
        assert len(backend._bin_cache) <= 2
        # The newest entry survived and still hits.
        backend.bin_counts((3,))
        assert backend.cache_info()["bin_counts"]["hits"] == 1

    def test_cached_top_k_is_isolated_copy(self, database):
        backend = CachedBackend(BitmapBackend(database))
        top = backend.top_k(5)
        top.clear()
        assert len(backend.top_k(5)) == 5

    def test_registry_top_k_guard_against_id_reuse(self):
        # Transient databases can land on a recycled id(); the memo
        # must never serve another database's itemsets.
        import gc

        import numpy as np

        from repro.datasets.registry import cached_top_k, clear_caches

        clear_caches()
        try:
            for seed in range(40):
                rng = np.random.default_rng(seed)
                rows = [
                    np.flatnonzero(rng.random(10) < 0.4)
                    for _ in range(50)
                ]
                transient = TransactionDatabase(rows, num_items=10)
                for itemset, support in cached_top_k(transient, 5):
                    assert transient.support(itemset) == support, seed
                del transient
                gc.collect()
        finally:
            clear_caches()


class TestBudgetAccounting:
    def test_epsilon_accumulates(self, database):
        session = PrivBasisSession(database)
        session.release(k=5, epsilon=0.5, rng=1)
        session.release(k=5, epsilon=0.25, rng=2)
        assert session.epsilon_spent == pytest.approx(0.75)
        assert session.num_releases == 2

    def test_epsilon_limit_enforced(self, database):
        session = PrivBasisSession(database, epsilon_limit=1.0)
        session.release(k=5, epsilon=0.8, rng=1)
        with pytest.raises(BudgetExceededError):
            session.release(k=5, epsilon=0.3, rng=2)
        # The failed release spent nothing.
        assert session.epsilon_spent == pytest.approx(0.8)
        session.release(k=5, epsilon=0.2, rng=3)  # exactly fits

    def test_batch_charged_up_front(self, database):
        session = PrivBasisSession(database, epsilon_limit=1.0)
        with pytest.raises(BudgetExceededError):
            session.release_batch([(5, 0.6), (5, 0.6)])
        assert session.epsilon_spent == 0.0
        assert session.num_releases == 0

    def test_batch_validates_before_spending(self, database):
        # A bad epsilon or k anywhere in the batch must fail the whole
        # batch before any release runs (all-or-nothing contract).
        session = PrivBasisSession(database, epsilon_limit=1.2)
        with pytest.raises(ValidationError):
            session.release_batch([(5, 1.0), (5, -0.5)])
        with pytest.raises(ValidationError):
            session.release_batch([(5, 0.5), (0, 0.5)])
        assert session.epsilon_spent == 0.0
        assert session.num_releases == 0

    def test_invalid_epsilon_limit(self, database):
        with pytest.raises(ValidationError):
            PrivBasisSession(database, epsilon_limit=0.0)


class TestBatch:
    def test_batch_mixed_request_shapes(self, database):
        session = PrivBasisSession(database, rng=9)
        results = session.release_batch(
            [
                (5, 0.5),
                {"k": 8, "epsilon": 1.0, "noise": "geometric"},
            ]
        )
        assert [result.k for result in results] == [5, 8]
        assert session.epsilon_spent == pytest.approx(1.5)

    def test_batch_empty(self, database):
        session = PrivBasisSession(database)
        assert session.release_batch([]) == []

    def test_batch_rejects_malformed_mapping(self, database):
        session = PrivBasisSession(database)
        with pytest.raises(ValidationError):
            session.release_batch([{"k": 5}])
