"""Out-of-core plane equivalence suite (tiered, seeded-random DBs).

The pinned property: a database that is **chunk-loaded from disk and
spilled into memory-mapped shard segments** answers every counting
primitive — and produces every full PrivBasis release (itemsets,
noisy frequencies, ε ledger) — **bit-identically** to the RAM-resident
:class:`BitmapBackend` and the pure-Python :class:`NaiveBackend`
oracle.  Counts are exact integers and additive over any partition,
so this holds by construction; the suite pins it against regressions
across the chunk → spill → attach → merge path, in ``threads`` and
``processes`` modes, after O(Δ) ``extend``, and across a full
close/reopen restart of the shard store.

Randomization is seeded (no hypothesis dependency): each seed drives
an independent database shape, chunk size, and segment size.
"""

from __future__ import annotations

import gzip

import numpy as np
import pytest

from repro.core.privbasis import privbasis
from repro.datasets.chunked import (
    iter_transaction_chunks,
    load_chunked,
)
from repro.datasets.transactions import TransactionDatabase
from repro.engine import (
    BitmapBackend,
    NaiveBackend,
    PrivBasisSession,
    ShardedBackend,
)
from repro.engine.mmap import MmapShardStore


def random_rows(seed: int, num_transactions: int = 70,
                num_items: int = 14):
    """Seeded random non-empty sorted transactions."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(num_transactions):
        size = int(rng.integers(1, 7))
        rows.append(
            np.unique(rng.integers(0, num_items, size=size))
        )
    return rows, num_items


def write_fimi_gz(path, rows) -> None:
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        for row in rows:
            handle.write(" ".join(str(int(i)) for i in row) + "\n")


def spilled_backend(tmp_path, seed: int, *, mode: str = "threads",
                    memory_budget_bytes=None):
    """Disk file → chunked load → mmap spill → sharded backend.

    Returns ``(backend, database, directory)`` where ``database`` is
    the same file materialized in RAM (the equivalence reference
    input) and ``directory`` is the spill dir (for reopen tests).
    """
    rng = np.random.default_rng(seed ^ 0x5EED)
    rows, num_items = random_rows(seed)
    source = tmp_path / f"db-{seed}.dat.gz"
    write_fimi_gz(source, rows)
    chunk_size = int(rng.integers(3, 40))
    rows_per_segment = int(rng.integers(5, 30))
    directory = tmp_path / f"shards-{seed}"
    store = MmapShardStore.build(
        directory,
        iter_transaction_chunks(
            source, num_items=num_items, chunk_size=chunk_size
        ),
        num_items=num_items,
        rows_per_segment=rows_per_segment,
        memory_budget_bytes=memory_budget_bytes,
    )
    backend = ShardedBackend.from_store(
        store, max_workers=2, mode=mode
    )
    database = load_chunked(source, num_items=num_items)
    return backend, database, directory


def queries_for(num_items: int, seed: int):
    rng = np.random.default_rng(seed + 99)
    pool = sorted(
        int(i) for i in rng.choice(num_items, size=6, replace=False)
    )
    bases = [pool[:4], pool[2:6], [pool[0]]]
    itemsets = [
        tuple(
            sorted(
                int(i)
                for i in rng.choice(num_items, size=s, replace=False)
            )
        )
        for s in (1, 2, 3, 2)
    ]
    return pool, bases, itemsets


def assert_backends_equivalent(candidate, reference, seed: int):
    """All five primitives, bit for bit."""
    num_items = reference.num_items
    pool, bases, itemsets = queries_for(num_items, seed)
    np.testing.assert_array_equal(
        candidate.item_supports(), reference.item_supports()
    )
    assert candidate.pairwise_supports(pool) == (
        reference.pairwise_supports(pool)
    )
    assert candidate.conjunction_supports(itemsets) == (
        reference.conjunction_supports(itemsets)
    )
    for got, want in zip(
        candidate.bin_counts_batch(bases),
        reference.bin_counts_batch(bases),
    ):
        np.testing.assert_array_equal(got, want)
    np.testing.assert_array_equal(
        candidate.extension_supports(pool[:2], pool),
        reference.extension_supports(pool[:2], pool),
    )
    assert candidate.num_transactions == reference.num_transactions
    assert candidate.num_items == reference.num_items


# ----------------------------------------------------------------------
# Counting equivalence: chunk → spill → attach vs RAM-resident
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(5))
def test_spilled_counts_match_bitmap_and_naive(tmp_path, seed):
    backend, database, _ = spilled_backend(tmp_path, seed)
    with backend:
        assert_backends_equivalent(
            backend, BitmapBackend(database), seed
        )
        assert_backends_equivalent(
            backend, NaiveBackend(database), seed
        )


@pytest.mark.parametrize("seed", range(3))
def test_spilled_counts_match_in_process_mode(tmp_path, seed):
    backend, database, _ = spilled_backend(
        tmp_path, seed, mode="processes"
    )
    with backend:
        assert_backends_equivalent(
            backend, BitmapBackend(database), seed
        )


def test_tiny_memory_budget_still_bit_identical(tmp_path):
    """Constant eviction pressure must never change an answer."""
    backend, database, _ = spilled_backend(
        tmp_path, seed=11, memory_budget_bytes=1
    )
    with backend:
        assert_backends_equivalent(
            backend, BitmapBackend(database), 11
        )
        stats = backend.data_plane_stats()
        assert stats["plane"] == "mmap"
        # The cache may keep at most one shard pinned under a budget
        # this small.
        assert stats["cached_shards"] <= 1


# ----------------------------------------------------------------------
# O(Δ) extend, then restart: close + reopen the same directory
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(3))
def test_extend_then_reopen_matches_reference(tmp_path, seed):
    backend, database, directory = spilled_backend(tmp_path, seed)
    delta_rows, num_items = random_rows(seed + 500,
                                        num_transactions=23)
    delta = TransactionDatabase(delta_rows, num_items=num_items)
    extended = database.extended(delta)
    reference = BitmapBackend(extended)

    backend.extend(delta)
    assert_backends_equivalent(backend, reference, seed)
    backend.close()

    # Restart: reopen the spilled segments read-only (CRC-verified)
    # in a "fresh process" and answer identically again.
    reopened = MmapShardStore.open(directory, verify="crc")
    with ShardedBackend.from_store(reopened) as revived:
        assert_backends_equivalent(revived, reference, seed)


def test_reopened_store_serves_multiple_backends(tmp_path):
    """Segments are read-only after publish: two attachments of the
    same directory answer identically and independently."""
    backend, database, directory = spilled_backend(tmp_path, 7)
    backend.close()
    first = ShardedBackend.from_store(MmapShardStore.open(directory))
    second = ShardedBackend.from_store(MmapShardStore.open(directory))
    with first, second:
        np.testing.assert_array_equal(
            first.item_supports(), second.item_supports()
        )
        np.testing.assert_array_equal(
            first.item_supports(),
            BitmapBackend(database).item_supports(),
        )


# ----------------------------------------------------------------------
# Full pipeline: identical DP releases (itemsets, frequencies, ε)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(3))
def test_privbasis_release_bit_identical(tmp_path, seed):
    backend, database, _ = spilled_backend(tmp_path, seed)
    with backend:
        spilled = privbasis(
            backend, k=6, epsilon=1.0,
            rng=np.random.default_rng(seed),
        )
    resident = privbasis(
        database, k=6, epsilon=1.0,
        rng=np.random.default_rng(seed),
        backend=BitmapBackend(database),
    )
    assert spilled.itemsets == resident.itemsets
    assert spilled.frequencies() == resident.frequencies()
    assert spilled.budget == resident.budget


@pytest.mark.parametrize("seed", range(2))
def test_session_release_and_ledger_bit_identical(tmp_path, seed):
    """Sessions over both planes: same releases, same ε ledger —
    including after a live ingest."""
    backend, database, _ = spilled_backend(tmp_path, seed)
    out_of_core = PrivBasisSession(backend, epsilon_limit=10.0)
    resident = PrivBasisSession(database, epsilon_limit=10.0)

    for round_seed in (1, 2):
        got = out_of_core.release(
            k=5, epsilon=0.8, rng=np.random.default_rng(round_seed)
        )
        want = resident.release(
            k=5, epsilon=0.8, rng=np.random.default_rng(round_seed)
        )
        assert got.frequencies() == want.frequencies()
        assert got.itemsets == want.itemsets

    delta_rows, _ = random_rows(seed + 77, num_transactions=9)
    assert out_of_core.ingest(list(delta_rows)) == (
        resident.ingest(list(delta_rows))
    )
    got = out_of_core.release(
        k=4, epsilon=0.5, rng=np.random.default_rng(3)
    )
    want = resident.release(
        k=4, epsilon=0.5, rng=np.random.default_rng(3)
    )
    assert got.frequencies() == want.frequencies()
    assert got.snapshot_version == want.snapshot_version
    assert out_of_core.epsilon_spent == resident.epsilon_spent
    assert out_of_core.num_releases == resident.num_releases
    out_of_core.close()


# ----------------------------------------------------------------------
# Store-level invariants the planes rely on
# ----------------------------------------------------------------------
def test_store_stats_and_budget_accounting(tmp_path):
    backend, database, _ = spilled_backend(
        tmp_path, 13, memory_budget_bytes=1 << 20
    )
    with backend:
        backend.item_supports()
        stats = backend.data_plane_stats()
        assert stats["rows"] == database.num_transactions
        assert stats["spilled_bytes"] > 0
        assert stats["memory_budget_bytes"] == 1 << 20
        assert stats["segments"] == stats["shards"]


def test_closed_backend_store_rejects_queries(tmp_path):
    from repro.errors import StateStoreError

    backend, _, _ = spilled_backend(tmp_path, 17)
    store = backend.store
    backend.close()
    with pytest.raises(StateStoreError):
        store.shard_database(0)
