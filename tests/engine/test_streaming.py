"""Streaming-append equivalence and snapshot-aware session tests.

The acceptance property for the incremental ingest path: for **every**
backend, appending transactions via ``extend`` and then querying must
yield supports identical to a cold rebuild over the concatenated
database — pinned against the :class:`NaiveBackend` oracle rebuilt
from scratch.  Appends are deliberately sized so the packed-bitmap
path crosses (and lands on) non-byte-aligned boundaries.

The session half: releases pin the snapshot version they were computed
on, are deterministic per (seed, snapshot), and the caching layer
invalidates per snapshot instead of serving stale answers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.stream import TransactionLog
from repro.datasets.transactions import TransactionDatabase
from repro.engine import (
    BitmapBackend,
    CachedBackend,
    NaiveBackend,
    PrivBasisSession,
    ShardedBackend,
)
from repro.errors import ValidationError


def random_database(
    seed: int, num_transactions: int, num_items: int = 14
) -> TransactionDatabase:
    rng = np.random.default_rng(seed)
    member = rng.random((num_transactions, num_items)) < rng.uniform(
        0.1, 0.4
    )
    return TransactionDatabase(
        [np.flatnonzero(row) for row in member], num_items=num_items
    )


#: Base size 37 and deltas 11/5 are chosen so every packed-bitmap
#: extension starts on a *non*-aligned boundary (37 % 8 = 5,
#: 48 % 8 = 0 then 53) — both branches of the byte-fusion path run.
BASE, DELTAS = 37, (11, 5)


def incremental_backends(database: TransactionDatabase):
    """Every production configuration that must track the oracle.

    The ``processes`` entry pins the extend → tail-segment-republish
    path of the multi-core plane (falling back to threads, and still
    equivalent, where shared memory is unavailable).
    """
    return [
        NaiveBackend(database),
        BitmapBackend(database),
        ShardedBackend(database, shard_size=16, max_workers=1),
        ShardedBackend(database, shard_size=7, max_workers=3),
        ShardedBackend(
            database, shard_size=16, max_workers=2, mode="processes"
        ),
        CachedBackend(BitmapBackend(database)),
        CachedBackend(ShardedBackend(database, shard_size=16)),
    ]


def warm_up(backend) -> None:
    """Touch every primitive so extend() exercises warm structures."""
    backend.item_supports()
    backend.pairwise_supports(range(6))
    backend.conjunction_support((0, 3))
    backend.bin_counts([0, 3, 7])
    if isinstance(backend, BitmapBackend):
        backend.bitmaps(range(8))


@pytest.mark.parametrize("seed", range(4))
class TestAppendEquivalence:
    def test_extend_matches_cold_rebuild_oracle(self, seed):
        base = random_database(seed, BASE)
        deltas = [
            random_database(1000 * seed + index, count)
            for index, count in enumerate(DELTAS, start=1)
        ]
        all_rows = list(base)
        for delta in deltas:
            all_rows.extend(delta)
        oracle = NaiveBackend(
            TransactionDatabase(all_rows, num_items=base.num_items)
        )
        rng = np.random.default_rng(seed + 77)
        for backend in incremental_backends(base):
            warm_up(backend)
            for delta in deltas:
                backend.extend(delta)
            assert backend.num_transactions == BASE + sum(DELTAS)
            np.testing.assert_array_equal(
                backend.item_supports(),
                oracle.item_supports(),
                err_msg=repr(backend),
            )
            pool = sorted(rng.choice(14, size=6, replace=False))
            assert backend.pairwise_supports(pool) == (
                oracle.pairwise_supports(pool)
            ), repr(backend)
            for size in (1, 2, 3, 0):
                itemset = sorted(
                    rng.choice(14, size=size, replace=False)
                )
                assert backend.conjunction_support(itemset) == (
                    oracle.conjunction_support(itemset)
                ), (repr(backend), itemset)
            basis = [
                int(item)
                for item in rng.choice(14, size=5, replace=False)
            ]
            np.testing.assert_array_equal(
                backend.bin_counts(basis),
                oracle.bin_counts(basis),
                err_msg=f"{backend!r} basis={basis}",
            )

    def test_extend_from_empty_database(self, seed):
        empty = TransactionDatabase([], num_items=14)
        delta = random_database(seed + 10, 21)
        oracle = NaiveBackend(
            TransactionDatabase(list(delta), num_items=14)
        )
        for backend in incremental_backends(empty):
            warm_up(backend)
            backend.extend(delta)
            np.testing.assert_array_equal(
                backend.item_supports(),
                oracle.item_supports(),
                err_msg=repr(backend),
            )
            np.testing.assert_array_equal(
                backend.bin_counts([1, 4]),
                oracle.bin_counts([1, 4]),
                err_msg=repr(backend),
            )


class TestExtendMechanics:
    def test_sharded_tail_shard_grows_before_new_shards(self):
        base = random_database(1, 20)
        backend = ShardedBackend(base, shard_size=16)
        assert backend.num_shards == 2  # 16 + 4
        backend.extend(random_database(2, 10))
        # 4-row tail absorbed 10 new rows: 16 + 14, still 2 shards.
        assert backend.num_shards == 2
        backend.extend(random_database(3, 40))
        # 14→16 fills the tail, then 38 remaining rows → 3 new shards.
        assert backend.num_shards == 5
        assert backend.num_transactions == 70

    def test_bitmap_pools_are_extended_not_rebuilt(self):
        base = random_database(4, 37)
        backend = BitmapBackend(base)
        backend.bitmaps(range(8))
        built_before = backend.pools_built
        backend.extend(random_database(5, 11))
        backend.pairwise_supports(range(8))
        assert backend.pools_built == built_before

    def test_cached_backend_invalidates_per_snapshot(self):
        base = random_database(6, 30)
        backend = CachedBackend(BitmapBackend(base))
        basis = [0, 2, 5]
        stale = backend.bin_counts(basis)
        assert backend.snapshot_version == 0
        delta = random_database(7, 12)
        backend.extend(delta)
        assert backend.snapshot_version == 1
        fresh = backend.bin_counts(basis)
        assert fresh.sum() == 42
        assert stale.sum() == 30  # the old copy was never mutated
        oracle = NaiveBackend(backend.database)
        np.testing.assert_array_equal(fresh, oracle.bin_counts(basis))

    def test_extend_rejects_mismatched_vocabulary(self):
        backend = BitmapBackend(random_database(8, 10, num_items=14))
        with pytest.raises(ValidationError):
            backend.extend(random_database(9, 5, num_items=9))
        with pytest.raises(ValidationError):
            backend.extend([[0, 1]])  # not a TransactionDatabase


class TestSnapshotAwareSession:
    def test_releases_pin_and_report_the_snapshot_version(self):
        session = PrivBasisSession(random_database(10, 60), rng=3)
        first = session.release(k=8, epsilon=1.0)
        assert first.snapshot_version == 0
        assert session.ingest(list(random_database(11, 9))) == 1
        second = session.release(k=8, epsilon=1.0)
        assert second.snapshot_version == 1
        assert session.snapshot_version == 1
        stats = session.stats()
        assert stats["snapshot_version"] == 1
        assert stats["num_transactions"] == 69

    @pytest.mark.parametrize("seed", (1, 2))
    def test_release_is_deterministic_per_seed_and_snapshot(self, seed):
        def run():
            log = TransactionLog.from_database(
                random_database(12, 50)
            )
            session = PrivBasisSession(log, rng=seed)
            results = [session.release(k=6, epsilon=1.0)]
            session.ingest(list(random_database(13, 8)))
            results.append(session.release(k=6, epsilon=1.0))
            return results

        first, second = run(), run()
        for a, b in zip(first, second):
            assert a.snapshot_version == b.snapshot_version
            assert a.frequencies() == b.frequencies()
        # Different snapshots of one run are genuinely different data.
        assert first[0].snapshot_version != first[1].snapshot_version

    def test_session_follows_an_external_log_via_sync(self):
        log = TransactionLog.from_database(random_database(14, 40))
        session = PrivBasisSession(log, rng=0)
        assert session.log is log
        log.append(list(random_database(15, 6)))
        log.append(list(random_database(16, 4)))
        assert session.snapshot_version == 0  # not yet synced
        assert session.sync() == 2
        assert session.database.num_transactions == 50
        # One extend covered both missed versions; data matches oracle.
        oracle = NaiveBackend(log.snapshot().database)
        np.testing.assert_array_equal(
            session.backend.item_supports(), oracle.item_supports()
        )

    def test_ingest_consumes_no_budget(self):
        session = PrivBasisSession(
            random_database(17, 40), epsilon_limit=1.0, rng=0
        )
        session.release(k=5, epsilon=0.5)
        session.ingest([[0, 1], [2]])
        assert session.epsilon_spent == pytest.approx(0.5)
        session.release(k=5, epsilon=0.5)  # still fits the limit

    def test_empty_ingest_is_rejected(self):
        session = PrivBasisSession(random_database(18, 20), rng=0)
        with pytest.raises(ValidationError):
            session.ingest([])
        assert session.snapshot_version == 0
