"""Unit tests for the HTTP framing and the JSON wire protocol."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.result import NoisyItemset, PrivateFIMResult
from repro.errors import ValidationError
from repro.service import http
from repro.service.protocol import (
    parse_batch_request,
    parse_release_request,
    result_to_wire,
)


def parse_bytes(raw: bytes):
    """Run ``read_request`` over an in-memory byte stream."""

    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await http.read_request(reader)

    return asyncio.run(scenario())


class TestRequestParsing:
    def test_post_with_json_body(self):
        request = parse_bytes(
            b"POST /v1/release HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 26\r\n"
            b"\r\n"
            b'{"k": 5, "epsilon": 0.25}\n'
        )
        assert request.method == "POST"
        assert request.path == "/v1/release"
        assert request.json() == {"k": 5, "epsilon": 0.25}
        assert request.keep_alive

    def test_get_with_query_string(self):
        request = parse_bytes(
            b"GET /v1/budget?tenant=alice&x=1 HTTP/1.1\r\n\r\n"
        )
        assert request.path == "/v1/budget"
        assert request.query == {"tenant": "alice", "x": "1"}

    def test_connection_close_header(self):
        request = parse_bytes(
            b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        assert not request.keep_alive

    def test_connection_close_is_case_insensitive(self):
        # RFC 9110: connection options compare case-insensitively.
        request = parse_bytes(
            b"GET /healthz HTTP/1.1\r\nConnection: Close\r\n\r\n"
        )
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse_bytes(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(http.ProtocolError):
            parse_bytes(b"NONSENSE\r\n\r\n")

    def test_non_http_version(self):
        with pytest.raises(http.ProtocolError):
            parse_bytes(b"GET / SPDY/3\r\n\r\n")

    def test_chunked_bodies_rejected(self):
        with pytest.raises(http.ProtocolError):
            parse_bytes(
                b"POST /v1/release HTTP/1.1\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
            )

    def test_oversized_body_rejected(self):
        huge = http.MAX_BODY_BYTES + 1
        with pytest.raises(http.ProtocolError) as info:
            parse_bytes(
                b"POST /v1/release HTTP/1.1\r\n"
                + f"Content-Length: {huge}\r\n\r\n".encode()
            )
        assert info.value.status == 413

    def test_invalid_json_body(self):
        request = parse_bytes(
            b"POST /v1/release HTTP/1.1\r\n"
            b"Content-Length: 4\r\n\r\nnope"
        )
        with pytest.raises(http.ProtocolError):
            request.json()


class TestResponseRoundtrip:
    def test_write_then_read_response(self):
        async def scenario():
            reader = asyncio.StreamReader()

            class FakeWriter:
                def write(self, data: bytes) -> None:
                    reader.feed_data(data)

            http.write_response(FakeWriter(), 403, {"error": "x"})
            reader.feed_eof()
            return await http.read_response(reader)

        status, payload = asyncio.run(scenario())
        assert status == 403
        assert payload == {"error": "x"}


class TestReleaseRequestValidation:
    def test_minimal_request(self):
        assert parse_release_request({"k": 10, "epsilon": 0.5}) == {
            "k": 10,
            "epsilon": 0.5,
        }

    def test_noise_passthrough(self):
        request = parse_release_request(
            {"k": 2, "epsilon": 1.0, "noise": "geometric"}
        )
        assert request["noise"] == "geometric"

    @pytest.mark.parametrize("key", ["seed", "rng"])
    def test_seeds_are_rejected(self, key):
        with pytest.raises(ValidationError, match="seed-less"):
            parse_release_request({"k": 2, "epsilon": 1.0, key: 7})

    @pytest.mark.parametrize(
        "body",
        [
            {"epsilon": 1.0},
            {"k": 5},
            {"k": 0, "epsilon": 1.0},
            {"k": True, "epsilon": 1.0},
            {"k": 2.7, "epsilon": 1.0},
            {"k": "many", "epsilon": 1.0},
            {"k": 5, "epsilon": True},
            {"k": 5, "epsilon": 0.0},
            {"k": 5, "epsilon": -1.0},
            {"k": 5, "epsilon": float("inf")},
            {"k": 5, "epsilon": "lots"},
            {"k": 5, "epsilon": 1.0, "noise": "gaussian"},
            {"k": 5, "epsilon": 1.0, "surprise": 1},
            [1, 2],
            "k=5",
        ],
    )
    def test_malformed_requests(self, body):
        with pytest.raises(ValidationError):
            parse_release_request(body)


class TestBatchValidation:
    def test_batch_ok(self):
        requests = parse_batch_request(
            {"requests": [{"k": 2, "epsilon": 0.1}, {"k": 3, "epsilon": 0.2}]}
        )
        assert [r["k"] for r in requests] == [2, 3]

    @pytest.mark.parametrize(
        "body",
        [
            {},
            {"requests": []},
            {"requests": "not-a-list"},
            {"requests": [{"k": 2}]},
        ],
    )
    def test_malformed_batches(self, body):
        with pytest.raises(ValidationError):
            parse_batch_request(body)

    def test_all_or_nothing_validation(self):
        # One bad entry rejects the whole batch before anything runs.
        with pytest.raises(ValidationError):
            parse_batch_request(
                {
                    "requests": [
                        {"k": 2, "epsilon": 0.1},
                        {"k": 2, "epsilon": -5},
                    ]
                }
            )


class TestResultSerialization:
    def test_result_to_wire(self):
        result = PrivateFIMResult(
            itemsets=[
                NoisyItemset((1, 3), 140.0, 0.7, 2.0),
                NoisyItemset((2,), 120.0, 0.6, 2.0),
            ],
            k=2,
            epsilon=0.5,
            method="privbasis",
        )
        wire = result_to_wire(result)
        assert wire["method"] == "privbasis"
        assert wire["k"] == 2
        assert wire["epsilon"] == 0.5
        assert wire["itemsets"][0] == {
            "items": [1, 3],
            "noisy_count": 140.0,
            "noisy_frequency": 0.7,
        }
        # Diagnostics (basis set, ledger) must not leak onto the wire.
        assert set(wire) == {"method", "k", "epsilon", "itemsets"}
