"""Single-flight semantics of the cold-start coalescer."""

from __future__ import annotations

import asyncio

import pytest

from repro.service.coalesce import Coalescer


def run(coro):
    return asyncio.run(coro)


class TestSingleFlight:
    def test_concurrent_calls_share_one_factory_run(self):
        async def scenario():
            coalescer = Coalescer()
            calls = 0

            async def factory():
                nonlocal calls
                calls += 1
                await asyncio.sleep(0.01)
                return object()

            results = await asyncio.gather(
                *(coalescer.get("key", factory) for _ in range(5))
            )
            return coalescer, calls, results

        coalescer, calls, results = run(scenario())
        assert calls == 1
        assert coalescer.started == 1
        assert coalescer.coalesced == 4
        # Every caller got the *same* object, not an equal copy.
        assert all(result is results[0] for result in results)

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            coalescer = Coalescer()

            async def factory():
                await asyncio.sleep(0.005)
                return object()

            await asyncio.gather(
                coalescer.get("a", factory), coalescer.get("b", factory)
            )
            return coalescer

        coalescer = run(scenario())
        assert coalescer.started == 2
        assert coalescer.coalesced == 0

    def test_finished_key_is_a_warm_hit(self):
        async def scenario():
            coalescer = Coalescer()

            async def factory():
                return 42

            first = await coalescer.get("key", factory)
            second = await coalescer.get("key", factory)
            return coalescer, first, second

        coalescer, first, second = run(scenario())
        assert (first, second) == (42, 42)
        assert coalescer.started == 1
        assert coalescer.hits == 1
        assert coalescer.coalesced == 0


class TestFailure:
    def test_failure_propagates_to_every_waiter(self):
        async def scenario():
            coalescer = Coalescer()

            async def factory():
                await asyncio.sleep(0.01)
                raise RuntimeError("cold start failed")

            results = await asyncio.gather(
                *(coalescer.get("key", factory) for _ in range(3)),
                return_exceptions=True,
            )
            return coalescer, results

        coalescer, results = run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)
        # The failure is forgotten: the key is free for a retry.
        assert len(coalescer) == 0

    def test_retry_after_failure_runs_the_factory_again(self):
        async def scenario():
            coalescer = Coalescer()
            attempts = 0

            async def factory():
                nonlocal attempts
                attempts += 1
                if attempts == 1:
                    raise RuntimeError("transient")
                return "recovered"

            with pytest.raises(RuntimeError):
                await coalescer.get("key", factory)
            return await coalescer.get("key", factory), attempts

        result, attempts = run(scenario())
        assert result == "recovered"
        assert attempts == 2


class TestDiscard:
    def test_discard_forces_a_rebuild(self):
        async def scenario():
            coalescer = Coalescer()
            builds = 0

            async def factory():
                nonlocal builds
                builds += 1
                return builds

            first = await coalescer.get("key", factory)
            coalescer.discard("key")
            second = await coalescer.get("key", factory)
            return first, second

        assert run(scenario()) == (1, 2)

    def test_stats_shape(self):
        coalescer = Coalescer()
        assert coalescer.stats() == {
            "started": 0,
            "coalesced": 0,
            "hits": 0,
        }
