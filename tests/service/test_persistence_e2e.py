"""End-to-end restart test for the durable service (the acceptance
scenario for persistence):

    serve → spend ε across two tenants → ingest a delta → kill the
    process → restart with the same ``--state-dir`` → ledgers,
    snapshot_version, and stored results match the pre-crash state,
    and an over-limit tenant still gets 403.

"Kill" is modeled by abandoning the first service instance without
any graceful state flush — every durable guarantee must come from the
write-ahead discipline alone, which is exactly what a ``kill -9``
leaves behind (the OS keeps flushed file contents of a dead process).
A second instance then recovers from the same directory.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.datasets.transactions import TransactionDatabase
from repro.errors import BudgetExceededError, ValidationError
from repro.service import PrivBasisService, ServiceClient, TenantRegistry

DATASET = "mushroom"  # registry name; data comes from the fake loader


def small_database(seed: int = 5) -> TransactionDatabase:
    """A 200-transaction database with a planted frequent block."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(200):
        row = set()
        if rng.random() < 0.6:
            row.update(i for i in range(5) if rng.random() < 0.9)
        row.update(int(item) for item in rng.choice(15, size=3))
        rows.append(sorted(row))
    return TransactionDatabase(rows, num_items=15)


def make_service(state_dir) -> PrivBasisService:
    registry = TenantRegistry.from_mapping(
        {
            "alice": {"dataset": DATASET, "epsilon_limit": 3.0},
            "bob": {"dataset": DATASET, "epsilon_limit": 1.0},
        }
    )
    return PrivBasisService(
        registry,
        dataset_loader=lambda name: small_database(),
        state_dir=str(state_dir),
    )


class TestRestartRecovery:
    def test_full_crash_restart_scenario(self, tmp_path):
        state_dir = tmp_path / "state"

        async def before_crash():
            service = make_service(state_dir)
            async with service.serving() as (host, port):
                async with ServiceClient(host, port, tenant="alice") as c:
                    first = await c.release(k=8, epsilon=0.5)
                    await c.ingest([[0, 1, 2], [3, 4]])
                    second = await c.release(k=8, epsilon=0.25)
                    await c.release(k=5, epsilon=0.9, tenant="bob")
                    alice = await c.budget()
                    bob = await c.budget(tenant="bob")
                    results = await c.results()
                    snapshot = await c.snapshot()
            # No graceful flush beyond serving: the context exit
            # closes sockets, and WAL durability already happened
            # per-request.  The instance is now "killed".
            return first, second, alice, bob, results, snapshot

        first, second, alice, bob, results, snapshot = asyncio.run(
            before_crash()
        )
        assert first["snapshot_version"] == 0
        assert second["snapshot_version"] == 1

        async def after_restart():
            service = make_service(state_dir)
            async with service.serving() as (host, port):
                async with ServiceClient(host, port, tenant="alice") as c:
                    health = await c.healthz()
                    snapshot = await c.snapshot()  # builds the session
                    alice = await c.budget()
                    bob = await c.budget(tenant="bob")
                    results = await c.results()
                    health_warm = await c.healthz()
                    metrics = await c.metrics()
                    # bob's (5, 0.5) is dominated by its own stored
                    # (5, 0.9) release: the recovered reuse plane
                    # serves it by post-processing at ε = 0 — no
                    # refusal, no charge, even with only 0.1 left.
                    reused = await c.release(
                        k=5, epsilon=0.5, tenant="bob"
                    )
                    # An *uncovered* over-limit request (k wider than
                    # anything bob stored) must still run fresh and be
                    # refused after recovery.
                    with pytest.raises(BudgetExceededError) as info:
                        await c.release(k=6, epsilon=0.5, tenant="bob")
                    # A release that fits still works, on the
                    # recovered snapshot.
                    third = await c.release(k=8, epsilon=0.25)
            return (
                health, snapshot, alice, bob, results, health_warm,
                metrics, reused, info.value, third,
            )

        (
            health, snapshot2, alice2, bob2, results2, health_warm,
            metrics, reused, refusal, third,
        ) = asyncio.run(after_restart())

        # -- ledgers match pre-crash state exactly ---------------------
        assert alice2["ledger"]["spent"] == pytest.approx(
            alice["ledger"]["spent"]
        ) == pytest.approx(0.75)
        assert bob2["ledger"]["spent"] == pytest.approx(
            bob["ledger"]["spent"]
        ) == pytest.approx(0.9)
        assert [
            entry["epsilon"] for entry in alice2["ledger"]["entries"]
        ] == [
            entry["epsilon"] for entry in alice["ledger"]["entries"]
        ]

        # -- the data came back at the pre-crash version ---------------
        assert snapshot2["snapshot_version"] == (
            snapshot["snapshot_version"]
        ) == 1
        assert snapshot2["num_transactions"] == (
            snapshot["num_transactions"]
        ) == 202

        # -- stored results match pre-crash, bit for bit ---------------
        assert results2["results"] == results["results"]
        assert len(results2["results"]) == 2  # alice's two releases
        assert [
            entry["snapshot_version"] for entry in results2["results"]
        ] == [0, 1]

        # -- recovery is reported on /healthz --------------------------
        persistence = health["persistence"]
        assert persistence["enabled"] is True
        assert persistence["recovery"]["tenants"] == {
            "alice": pytest.approx(0.75),
            "bob": pytest.approx(0.9),
        }
        assert persistence["recovery"]["results"] == 3
        assert persistence["recovery"]["torn_records"] == 0
        # Dataset replay is lazy: visible once the session is warm.
        assert health_warm["persistence"]["recovery"]["datasets"] == {
            DATASET: 1
        }

        # -- serving counters were rehydrated, not recounted ----------
        stats = metrics["datasets"][DATASET]
        assert stats["num_releases"] == 3  # 2 alice + 1 bob, pre-crash
        assert stats["epsilon_spent"] == pytest.approx(1.65)

        # -- reuse sources survived the crash: bob's dominated request
        #    was answered from its stored release, free ---------------
        assert reused["reuse"]["hit"] is True
        assert reused["reuse"]["epsilon_charged"] == 0.0
        assert reused["reuse"]["source"]["k"] == 5
        # -- over-limit tenant still refused, same structured error ----
        assert refusal.remaining == pytest.approx(0.1)
        # -- and the recovered service keeps serving -------------------
        assert third["snapshot_version"] == 1

    def test_recovered_spends_compose_across_restarts(self, tmp_path):
        # alice spends 2.0 before the crash and has 1.0 left; a
        # post-restart attempt to spend 1.5 must fail even though a
        # fresh in-memory ledger would have allowed it.  This is the
        # exact attack a restart-resets-the-ledger bug enables.  The
        # post-restart request widens k so the recovered reuse plane
        # cannot (correctly) serve it free from the stored release.
        state_dir = tmp_path / "state"

        async def run_one(k, epsilon, expect_refusal):
            service = make_service(state_dir)
            async with service.serving() as (host, port):
                async with ServiceClient(host, port, tenant="alice") as c:
                    if expect_refusal:
                        with pytest.raises(BudgetExceededError):
                            await c.release(k=k, epsilon=epsilon)
                    else:
                        await c.release(k=k, epsilon=epsilon)
                    return await c.budget()

        before = asyncio.run(run_one(5, 2.0, expect_refusal=False))
        assert before["ledger"]["spent"] == pytest.approx(2.0)
        after = asyncio.run(run_one(6, 1.5, expect_refusal=True))
        # The refused attempt charged nothing; the journal still holds
        # exactly the pre-restart spend.
        assert after["ledger"]["spent"] == pytest.approx(2.0)

    def test_results_endpoint_requires_persistence(self, tmp_path):
        async def scenario():
            registry = TenantRegistry.from_mapping(
                {"alice": {"dataset": DATASET, "epsilon_limit": 1.0}}
            )
            service = PrivBasisService(
                registry, dataset_loader=lambda name: small_database()
            )
            async with service.serving() as (host, port):
                async with ServiceClient(host, port, tenant="alice") as c:
                    health = await c.healthz()
                    with pytest.raises(ValidationError, match="state-dir"):
                        await c.results()
            return health

        health = asyncio.run(scenario())
        assert health["persistence"] == {"enabled": False}

    def test_rejected_ingest_leaves_store_and_session_aligned(
        self, tmp_path
    ):
        # An out-of-vocabulary batch must answer 400 with *neither*
        # the session nor the dataset log advanced — journal-before-
        # apply with up-front validation — so later good ingests keep
        # working and survive a restart at the right version.
        state_dir = tmp_path / "state"

        async def first_run():
            service = make_service(state_dir)
            async with service.serving() as (host, port):
                async with ServiceClient(host, port, tenant="alice") as c:
                    with pytest.raises(ValidationError):
                        await c.ingest([[999]])  # outside |I| = 15
                    ok = await c.ingest([[0, 1]])
                    return ok

        ok = asyncio.run(first_run())
        assert ok["snapshot_version"] == 1

        async def second_run():
            service = make_service(state_dir)
            async with service.serving() as (host, port):
                async with ServiceClient(host, port, tenant="alice") as c:
                    snapshot = await c.snapshot()
                    again = await c.ingest([[2, 3]])
            return snapshot, again

        snapshot, again = asyncio.run(second_run())
        assert snapshot["snapshot_version"] == 1
        assert snapshot["num_transactions"] == 201
        assert again["snapshot_version"] == 2

    def test_results_stay_ordered_across_midrun_compaction(
        self, tmp_path
    ):
        # Regression: ``ServiceClient.results()`` returned entries out
        # of release order after a WAL compaction mid-run, because
        # ordering leaned on WAL frame numbers and ``rewrite()``
        # renumbers frames from zero.  Each record now embeds its own
        # release sequence and ``results_for`` sorts by it.
        state_dir = tmp_path / "state"

        async def scenario():
            service = make_service(state_dir)
            async with service.serving() as (host, port):
                async with ServiceClient(host, port, tenant="alice") as c:
                    await c.release(k=8, epsilon=0.5)
                    await c.release(k=9, epsilon=0.4)
                    # Mid-run maintenance compaction renumbers frames.
                    service.store.results.compact()
                    await c.release(k=10, epsilon=0.3)
                    live = await c.results()

            reborn = make_service(state_dir)
            async with reborn.serving() as (host, port):
                async with ServiceClient(host, port, tenant="alice") as c:
                    recovered = await c.results()
            return live, recovered

        live, recovered = asyncio.run(scenario())
        assert [e["payload"]["k"] for e in live["results"]] == [8, 9, 10]
        assert recovered["results"] == live["results"]
        assert [e["seq"] for e in recovered["results"]] == sorted(
            e["seq"] for e in recovered["results"]
        )

    def test_results_sorted_by_seq_not_wal_order(self, tmp_path):
        # The store must not trust WAL frame order at all: a WAL whose
        # frames were rewritten out of release order (e.g. a compactor
        # grouping records by dataset) still replays into a
        # seq-ordered history.
        from repro.store.results import ResultStore

        store = ResultStore(tmp_path)
        for k in (8, 9, 10):
            store.record(
                "alice", "d", 0, {"k": k, "epsilon": 0.5, "itemsets": []}
            )
        store.sync()
        records = list(store._wal.replay())
        store._wal.rewrite(list(reversed(records)))
        store.close()

        reloaded = ResultStore(tmp_path)
        assert [
            entry["payload"]["k"]
            for entry in reloaded.results_for("alice")
        ] == [8, 9, 10]
        # New records keep extending the sequence past the maximum.
        reloaded.record(
            "alice", "d", 0, {"k": 11, "epsilon": 0.5, "itemsets": []}
        )
        assert [
            entry["seq"] for entry in reloaded.results_for("alice")
        ] == [0, 1, 2, 3]

    def test_torn_ledger_tail_is_reported_and_dropped(self, tmp_path):
        state_dir = tmp_path / "state"

        async def spend_once():
            service = make_service(state_dir)
            async with service.serving() as (host, port):
                async with ServiceClient(host, port, tenant="alice") as c:
                    await c.release(k=5, epsilon=0.5)

        asyncio.run(spend_once())
        # Crash damage: a partial record at the end of the ledger WAL.
        with open(state_dir / "ledger.wal", "ab") as handle:
            handle.write(b'{"seq":99,"crc":1,"payl')

        async def restart():
            service = make_service(state_dir)
            async with service.serving() as (host, port):
                async with ServiceClient(host, port, tenant="alice") as c:
                    health = await c.healthz()
                    budget = await c.budget()
            return health, budget

        health, budget = asyncio.run(restart())
        assert health["persistence"]["recovery"]["torn_records"] == 1
        # The intact prefix survived untouched.
        assert budget["ledger"]["spent"] == pytest.approx(0.5)
