"""Wire round-trip for plan pricing and release traces.

The acceptance criteria for the staged-pipeline service surface:

* ``GET /v1/plan`` prices a release without building a session,
  touching data, or spending tenant budget — and typo'd planners
  answer the structured ``unknown_planner`` code before any of that
  could happen;
* a release with ``"trace": true`` round-trips the per-stage
  execution record (ε sums to the request budget), while traces stay
  strictly opt-in otherwise;
* ``/metrics`` aggregates per-stage pipeline counters across served
  releases.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.datasets.transactions import TransactionDatabase
from repro.errors import UnknownPlannerError, ValidationError
from repro.service import PrivBasisService, ServiceClient, TenantRegistry

DATASET = "mushroom"  # registry name; data comes from the fake loader


def small_database(seed: int = 5) -> TransactionDatabase:
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(200):
        row = set()
        if rng.random() < 0.6:
            row.update(i for i in range(5) if rng.random() < 0.9)
        row.update(int(item) for item in rng.choice(15, size=3))
        rows.append(sorted(row))
    return TransactionDatabase(rows, num_items=15)


class CountingLoader:
    def __init__(self) -> None:
        self.calls = 0
        self._database = small_database()

    def __call__(self, name: str) -> TransactionDatabase:
        assert name == DATASET
        self.calls += 1
        return self._database


def make_service():
    registry = TenantRegistry.from_mapping(
        {"alice": {"dataset": DATASET, "epsilon_limit": 4.0}}
    )
    loader = CountingLoader()
    return PrivBasisService(registry, dataset_loader=loader), loader


def run(coro):
    return asyncio.run(coro)


class TestPlanEndpoint:
    def test_plan_spends_nothing_and_touches_no_data(self):
        async def scenario():
            service, loader = make_service()
            async with service.serving() as (host, port):
                async with ServiceClient(
                    host, port, tenant="alice"
                ) as client:
                    plan = await client.plan(
                        k=30, epsilon=0.5, planner="adaptive"
                    )
                    # No session was built, the loader never ran, the
                    # ledger is untouched.
                    assert loader.calls == 0
                    assert service.session_for(DATASET) is None
                    budget = await client.budget()
                    assert budget["ledger"]["spent"] == 0.0
                    return plan

        plan = run(scenario())
        assert plan["tenant"] == "alice"
        assert plan["dataset"] == DATASET
        assert plan["planner"]["name"] == "adaptive"
        assert plan["epsilon"] == 0.5
        assert plan["affordable"] is True
        assert plan["remaining"] == 4.0
        names = [stage["stage"] for stage in plan["stages"]]
        assert names == [
            "get_lambda",
            "select_items",
            "select_pairs",
            "construct_basis",
            "basis_freq",
        ]
        priced = {
            stage["stage"]: stage["epsilon"] for stage in plan["stages"]
        }
        assert priced["get_lambda"] == pytest.approx(0.05)
        assert priced["basis_freq"] == pytest.approx(0.25)
        assert priced["select_items"] is None  # resolved from λ

    def test_plan_flags_unaffordable_epsilon(self):
        async def scenario():
            service, _ = make_service()
            async with service.serving() as (host, port):
                async with ServiceClient(
                    host, port, tenant="alice"
                ) as client:
                    return await client.plan(k=10, epsilon=9.0)

        plan = run(scenario())
        assert plan["affordable"] is False

    def test_plan_custom_alphas_roundtrip(self):
        async def scenario():
            service, _ = make_service()
            async with service.serving() as (host, port):
                async with ServiceClient(
                    host, port, tenant="alice"
                ) as client:
                    return await client.plan(
                        k=10,
                        epsilon=1.0,
                        planner="custom",
                        alphas=[0.2, 0.3, 0.5],
                    )

        plan = run(scenario())
        assert plan["planner"] == {
            "name": "custom",
            "alphas": [0.2, 0.3, 0.5],
        }
        priced = {
            stage["stage"]: stage["epsilon"] for stage in plan["stages"]
        }
        assert priced["get_lambda"] == pytest.approx(0.2)
        assert priced["basis_freq"] == pytest.approx(0.5)

    def test_unknown_planner_is_structured_and_free(self):
        async def scenario():
            service, loader = make_service()
            async with service.serving() as (host, port):
                async with ServiceClient(
                    host, port, tenant="alice"
                ) as client:
                    with pytest.raises(UnknownPlannerError) as excinfo:
                        await client.plan(k=10, epsilon=0.5,
                                          planner="bogus")
                    assert excinfo.value.planner == "bogus"
                    assert "paper" in excinfo.value.known
                    with pytest.raises(UnknownPlannerError):
                        await client.release(
                            k=10, epsilon=0.5, planner="bogus"
                        )
                    # Neither failed request built a session or
                    # charged the ledger.
                    assert loader.calls == 0
                    budget = await client.budget()
                    assert budget["ledger"]["spent"] == 0.0

        run(scenario())

    def test_plan_validates_query(self):
        async def scenario():
            service, _ = make_service()
            async with service.serving() as (host, port):
                async with ServiceClient(
                    host, port, tenant="alice"
                ) as client:
                    with pytest.raises(ValidationError):
                        await client._roundtrip(
                            "GET", "/v1/plan?tenant=alice&k=ten&epsilon=1"
                        )
                    with pytest.raises(ValidationError):
                        await client._roundtrip(
                            "GET", "/v1/plan?tenant=alice&k=5"
                        )

        run(scenario())


class TestTraceRoundTrip:
    def test_traced_release_roundtrips_stages(self):
        async def scenario():
            service, _ = make_service()
            async with service.serving() as (host, port):
                async with ServiceClient(
                    host, port, tenant="alice"
                ) as client:
                    traced = await client.release(
                        k=15, epsilon=0.6, planner="adaptive", trace=True
                    )
                    plain = await client.release(k=15, epsilon=0.6)
                    metrics = await client.metrics()
                    return traced, plain, metrics

        traced, plain, metrics = run(scenario())
        assert "trace" not in plain  # strictly opt-in
        trace = traced["trace"]
        assert trace["planner"] == "adaptive"
        assert trace["branch"] in ("single_basis", "pairs")
        assert trace["epsilon_spent"] == pytest.approx(0.6)
        spent = sum(stage["epsilon"] for stage in trace["stages"])
        assert spent == pytest.approx(0.6)
        for stage in trace["stages"]:
            assert stage["wall_time_ms"] >= 0
            if stage["stage"] == "construct_basis":
                assert stage["queries"] == {}

        pipeline = metrics["pipeline"]
        assert pipeline["releases"] == 2
        assert pipeline["planners"] == {"adaptive": 1, "paper": 1}
        assert set(pipeline["stages"]) >= {
            "get_lambda",
            "select_items",
            "construct_basis",
            "basis_freq",
        }
        get_lambda = pipeline["stages"]["get_lambda"]
        assert get_lambda["runs"] == 2
        assert get_lambda["epsilon_total"] == pytest.approx(0.12)
        assert get_lambda["queries"]["top_k"] == 2

    def test_batch_trace_per_entry(self):
        async def scenario():
            service, _ = make_service()
            async with service.serving() as (host, port):
                async with ServiceClient(
                    host, port, tenant="alice"
                ) as client:
                    return await client.release_batch(
                        [
                            {"k": 10, "epsilon": 0.3, "trace": True},
                            {"k": 10, "epsilon": 0.3},
                        ]
                    )

        response = run(scenario())
        first, second = response["results"]
        assert "trace" in first
        assert "trace" not in second
        assert first["trace"]["epsilon_spent"] == pytest.approx(0.3)

    def test_trace_must_be_boolean(self):
        async def scenario():
            service, _ = make_service()
            async with service.serving() as (host, port):
                async with ServiceClient(
                    host, port, tenant="alice"
                ) as client:
                    with pytest.raises(ValidationError):
                        await client._roundtrip(
                            "POST",
                            "/v1/release",
                            {
                                "tenant": "alice",
                                "k": 5,
                                "epsilon": 0.1,
                                "trace": "yes",
                            },
                        )

        run(scenario())
