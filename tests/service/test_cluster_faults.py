"""Fault-injection tests for the multi-process cluster.

Workers are killed with ``SIGKILL`` mid-traffic — no cleanup, the
honest crash — and every scenario checks the three cluster contracts:

* **The ledger invariant.**  Cluster-wide journaled spent ε
  (:func:`repro.store.read_spent_totals`) is always ≥ the ε of the
  releases clients actually received.  A crash may forfeit budget
  (a journaled debit whose answer never left), never mint it.
* **Clean failure, never a hang.**  Every request completes within the
  scenario timeout with either a 2xx or a typed
  :class:`~repro.errors.WorkerUnavailableError` (the router's 503) —
  assertions are timing-tolerant because where the kill lands relative
  to each in-flight request is genuinely racy.
* **Recovery.**  The supervisor restarts dead workers as fresh
  processes that recover from the shared store; post-fault traffic
  serves normally and acked ingest batches survive.

These tests spawn real worker processes, so they are tier-1 but
marked ``slow``; the heavier churn scenario is ``soak`` (nightly,
``pytest -m soak``).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.datasets.synthetic import QUEST_LOADER_SPEC
from repro.errors import WorkerUnavailableError
from repro.service import ClusterConfig, PrivBasisCluster, ServiceClient
from repro.store import read_spent_totals

#: Outer bound on one whole scenario — the "never hangs" assertion.
SCENARIO_TIMEOUT = 120.0

#: How long recovery may take before we call it a failure.
RECOVERY_TIMEOUT = 30.0


def make_config(state_dir, tenants, num_workers=2, max_inflight=8,
                data_plane="memory"):
    """A cluster config over the spawn-importable Quest loader."""
    return ClusterConfig(
        tenants=tenants,
        state_dir=str(state_dir),
        num_workers=num_workers,
        loader_spec=QUEST_LOADER_SPEC,
        max_inflight=max_inflight,
        data_plane=data_plane,
        memory_budget_mb=64 if data_plane == "mmap" else None,
    )


def run_scenario(coroutine):
    """Run one async scenario under the global hang bound."""
    return asyncio.run(asyncio.wait_for(coroutine, SCENARIO_TIMEOUT))


async def wait_for_recovery(cluster, num_workers):
    """Block until every worker slot is back in routing."""
    deadline = asyncio.get_running_loop().time() + RECOVERY_TIMEOUT
    while cluster.router.healthy_count() < num_workers:
        assert asyncio.get_running_loop().time() < deadline, (
            f"cluster did not recover to {num_workers} workers within "
            f"{RECOVERY_TIMEOUT:g}s"
        )
        await asyncio.sleep(0.25)


@pytest.mark.slow
class TestKillMidRelease:
    def test_invariant_holds_and_errors_are_typed(self, tmp_path):
        tenants = {
            "t-rel": {"dataset": "faults/release", "epsilon_limit": 1e6}
        }
        config = make_config(tmp_path / "state", tenants)
        cluster = PrivBasisCluster(config)
        epsilon = 0.25

        async def scenario():
            async with cluster.serving() as (host, port):
                owner = cluster.router.owner_for("faults/release")
                assert owner is not None

                async def one_release(index):
                    async with ServiceClient(
                        host, port, tenant="t-rel"
                    ) as client:
                        try:
                            out = await client.release(
                                k=4, epsilon=epsilon
                            )
                            return ("ok", out)
                        except WorkerUnavailableError:
                            return ("unavailable", None)

                tasks = [
                    asyncio.create_task(one_release(index))
                    for index in range(8)
                ]
                await asyncio.sleep(0.05)
                cluster.kill_worker(owner.index)
                outcomes = await asyncio.gather(*tasks)

                acked = sum(
                    epsilon for tag, _ in outcomes if tag == "ok"
                )
                # Invariant immediately after the fault, read straight
                # from the shared journal files.
                totals = read_spent_totals(config.state_dir)
                assert totals.get("t-rel", 0.0) >= acked - 1e-9

                await wait_for_recovery(cluster, config.num_workers)
                async with ServiceClient(
                    host, port, tenant="t-rel"
                ) as client:
                    out = await client.release(k=4, epsilon=epsilon)
                    acked += epsilon
                    budget = await client.budget()
                    assert (
                        budget["ledger"]["spent"] >= acked - 1e-9
                    )
                return outcomes, acked

        outcomes, acked = run_scenario(scenario())
        # Every request resolved to a success or the typed 503 —
        # nothing hung, nothing surfaced as a raw socket error.
        assert {tag for tag, _ in outcomes} <= {"ok", "unavailable"}
        # Final invariant with the cluster stopped.
        totals = read_spent_totals(str(tmp_path / "state"))
        assert totals.get("t-rel", 0.0) >= acked - 1e-9

    def test_get_fails_over_to_survivor(self, tmp_path):
        tenants = {
            "t-get": {"dataset": "faults/get", "epsilon_limit": 1e6}
        }
        config = make_config(tmp_path / "state", tenants)
        cluster = PrivBasisCluster(config)

        async def scenario():
            async with cluster.serving() as (host, port):
                async with ServiceClient(
                    host, port, tenant="t-get"
                ) as client:
                    await client.release(k=4, epsilon=0.5)
                    owner = cluster.router.owner_for("faults/get")
                    cluster.kill_worker(owner.index)
                    # The budget read must answer from a survivor (the
                    # shared journal makes any worker authoritative)
                    # without waiting for the restart.
                    budget = await client.budget()
                    assert budget["ledger"]["spent"] >= 0.5 - 1e-9
                    health = await client.healthz()
                    assert health["role"] == "router"

        run_scenario(scenario())


@pytest.mark.slow
class TestKillMidIngest:
    def test_acked_batches_survive_the_kill(self, tmp_path):
        tenants = {
            "t-ing": {"dataset": "faults/ingest", "epsilon_limit": 1e6}
        }
        config = make_config(tmp_path / "state", tenants)
        cluster = PrivBasisCluster(config)

        async def scenario():
            async with cluster.serving() as (host, port):
                async with ServiceClient(
                    host, port, tenant="t-ing"
                ) as client:
                    first = await client.ingest([[0, 1], [2, 3]])
                    assert first["snapshot_version"] == 1

                async def one_ingest(index):
                    async with ServiceClient(
                        host, port, tenant="t-ing"
                    ) as client:
                        try:
                            await client.ingest([[index % 8, 8]])
                            return "ok"
                        except WorkerUnavailableError:
                            return "unavailable"

                tasks = [
                    asyncio.create_task(one_ingest(index))
                    for index in range(6)
                ]
                await asyncio.sleep(0.02)
                owner = cluster.router.owner_for("faults/ingest")
                cluster.kill_worker(owner.index)
                outcomes = await asyncio.gather(*tasks)
                assert set(outcomes) <= {"ok", "unavailable"}
                acked = 1 + outcomes.count("ok")
                attempts = 1 + len(outcomes)

                await wait_for_recovery(cluster, config.num_workers)
                async with ServiceClient(
                    host, port, tenant="t-ing"
                ) as client:
                    snapshot = await client.snapshot()
                    # Every acknowledged batch was journal-before-apply
                    # + fsync, so recovery must replay at least those;
                    # a killed-before-ack batch may legitimately also
                    # have landed (journaled, never answered).
                    assert (
                        acked
                        <= snapshot["snapshot_version"]
                        <= attempts
                    )
                    # The recovered log keeps extending linearly.
                    after = await client.ingest([[4, 5]])
                    assert (
                        after["snapshot_version"]
                        == snapshot["snapshot_version"] + 1
                    )

        run_scenario(scenario())


@pytest.mark.slow
class TestClusterColdStart:
    def test_one_build_many_clients_distinct_noise(self, tmp_path):
        clients = 6
        tenants = {
            "t-co": {"dataset": "faults/coalesce", "epsilon_limit": 1e6}
        }
        config = make_config(
            tmp_path / "state", tenants, num_workers=3
        )
        cluster = PrivBasisCluster(config)

        async def scenario():
            async with cluster.serving() as (host, port):

                async def one_release(index):
                    async with ServiceClient(
                        host, port, tenant="t-co"
                    ) as client:
                        return await client.release(k=6, epsilon=0.5)

                outs = await asyncio.gather(
                    *(one_release(index) for index in range(clients))
                )
                async with ServiceClient(host, port) as client:
                    metrics = await client.metrics()
                return outs, metrics

        outs, metrics = run_scenario(scenario())
        # Dataset affinity + the owner's coalescer: the cold dataset
        # was built exactly once across the whole cluster.
        started = sum(
            worker["coalescer"]["started"]
            for worker in metrics["workers"].values()
            if "coalescer" in worker
        )
        assert started == 1
        # Every client paid its own ε and got its own noise: the
        # payloads are pairwise distinct even for identical requests.
        payloads = [
            json.dumps(out["itemsets"], sort_keys=True) for out in outs
        ]
        assert len(set(payloads)) == len(payloads)
        totals = read_spent_totals(str(tmp_path / "state"))
        assert totals.get("t-co", 0.0) >= clients * 0.5 - 1e-9


@pytest.mark.slow
class TestMmapPlaneCluster:
    """Tier-1 leg of the out-of-core cluster story: workers spill
    their datasets to mmap segments under the shared state dir, a
    kill loses nothing, and the restarted worker re-spills and
    serves — same ledger invariant, same recovery contract."""

    def test_kill_and_recover_on_the_mmap_plane(self, tmp_path):
        tenants = {
            "t-mm": {"dataset": "faults/mmap", "epsilon_limit": 1e6}
        }
        config = make_config(
            tmp_path / "state", tenants, data_plane="mmap"
        )
        cluster = PrivBasisCluster(config)
        epsilon = 0.25

        async def scenario():
            acked = 0.0
            async with cluster.serving() as (host, port):
                async with ServiceClient(
                    host, port, tenant="t-mm"
                ) as client:
                    await client.release(k=4, epsilon=epsilon)
                    acked = epsilon
                    await client.ingest([[1, 2], [0, 3]])
                    owner = cluster.router.owner_for("faults/mmap")
                    cluster.kill_worker(owner.index)
                    await wait_for_recovery(
                        cluster, config.num_workers
                    )
                # The revived worker re-spills the dataset and
                # replays the acked ingest through the mmap
                # backend's extend path.  The router never replays a
                # POST, so the first attempt may legitimately eat a
                # stale pooled connection the kill tore — tolerate
                # the typed 503 and retry once.
                out = None
                for _ in range(3):
                    async with ServiceClient(
                        host, port, tenant="t-mm"
                    ) as client:
                        try:
                            out = await client.release(
                                k=4, epsilon=epsilon
                            )
                            acked += epsilon
                            break
                        except WorkerUnavailableError:
                            await asyncio.sleep(0.2)
                assert out is not None, "release never recovered"
                assert out["snapshot_version"] >= 1
                totals = read_spent_totals(config.state_dir)
                assert totals.get("t-mm", 0.0) >= acked - 1e-9
            return acked

        acked = run_scenario(scenario())
        totals = read_spent_totals(str(tmp_path / "state"))
        assert totals.get("t-mm", 0.0) >= acked - 1e-9


@pytest.mark.soak
@pytest.mark.parametrize("data_plane", ["memory", "mmap"])
class TestClusterChurnSoak:
    """Nightly-tier churn: sustained mixed traffic under repeated
    kills, with the ledger invariant checked after every fault — on
    both data planes (the ``mmap`` leg kills workers that spilled
    their datasets to disk, so recovery also re-spills)."""

    def test_sustained_churn_keeps_the_invariant(
        self, tmp_path, data_plane
    ):
        tenant_ids = [f"soak-{index}" for index in range(4)]
        tenants = {
            tenant: {
                "dataset": f"soak/{index % 2}",
                "epsilon_limit": 1e6,
            }
            for index, tenant in enumerate(tenant_ids)
        }
        config = make_config(
            tmp_path / "state", tenants, num_workers=3,
            max_inflight=32, data_plane=data_plane,
        )
        cluster = PrivBasisCluster(config)
        epsilon = 0.05

        async def scenario():
            acked = {tenant: 0.0 for tenant in tenant_ids}
            async with cluster.serving() as (host, port):
                for round_index in range(4):
                    async def one(tenant, index):
                        async with ServiceClient(
                            host, port, tenant=tenant
                        ) as client:
                            try:
                                if index % 5 == 0:
                                    await client.ingest([[index % 9]])
                                    return (tenant, 0.0)
                                await client.release(
                                    k=3, epsilon=epsilon
                                )
                                return (tenant, epsilon)
                            except WorkerUnavailableError:
                                return (tenant, 0.0)

                    tasks = [
                        asyncio.create_task(
                            one(tenant_ids[index % 4], index)
                        )
                        for index in range(24)
                    ]
                    await asyncio.sleep(0.05)
                    cluster.kill_worker(round_index % 3)
                    for tenant, spent in await asyncio.gather(*tasks):
                        acked[tenant] += spent
                    totals = read_spent_totals(config.state_dir)
                    for tenant in tenant_ids:
                        assert (
                            totals.get(tenant, 0.0)
                            >= acked[tenant] - 1e-9
                        ), f"round {round_index}: {tenant} under-counted"
                    await wait_for_recovery(
                        cluster, config.num_workers
                    )
            return acked

        acked = run_scenario(scenario())
        totals = read_spent_totals(str(tmp_path / "state"))
        for tenant, spent in acked.items():
            assert totals.get(tenant, 0.0) >= spent - 1e-9
