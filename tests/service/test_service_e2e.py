"""End-to-end service tests over a real socket.

The acceptance scenario for the service layer: start the server
in-process on an ephemeral port, run two tenants against the same
dataset concurrently, and verify

* cold-start work is coalesced — the dataset is loaded and the
  item-support scan runs exactly once (asserted via backend stats);
* coalesced requests still get **distinct** noisy outputs (noise is
  never shared);
* each tenant's ε ledger is charged independently and exactly;
* a tenant whose ``epsilon_limit`` would be exceeded gets HTTP 403
  with a structured ``budget_exceeded`` payload;
* admission control answers 429 once ``max_inflight`` is reached;
* ``/v1/ingest`` interleaved with ``/v1/release`` coalesces cold
  starts, serializes against releases (each release reports the
  snapshot version it pinned), and respects per-tenant ingest
  permissions.

The registry's ``mushroom`` name is bound to a small synthetic
database through the injectable ``dataset_loader``, keeping the test
hermetic and fast.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.datasets.transactions import TransactionDatabase
from repro.errors import (
    BudgetExceededError,
    IngestNotAllowedError,
    OverloadedError,
    UnknownTenantError,
    ValidationError,
)
from repro.service import PrivBasisService, ServiceClient, TenantRegistry

DATASET = "mushroom"  # registry name; data comes from the fake loader


def small_database(seed: int = 5) -> TransactionDatabase:
    """A 200-transaction database with a planted frequent block."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(200):
        row = set()
        if rng.random() < 0.6:
            row.update(i for i in range(5) if rng.random() < 0.9)
        row.update(int(item) for item in rng.choice(15, size=3))
        rows.append(sorted(row))
    return TransactionDatabase(rows, num_items=15)


class CountingLoader:
    """Dataset loader that records how many times it actually built."""

    def __init__(self) -> None:
        self.calls = 0
        self._database = small_database()

    def __call__(self, name: str) -> TransactionDatabase:
        assert name == DATASET
        self.calls += 1
        return self._database


def make_service(max_inflight: int = 8):
    registry = TenantRegistry.from_mapping(
        {
            "alice": {"dataset": DATASET, "epsilon_limit": 3.0},
            "bob": {"dataset": DATASET, "epsilon_limit": 3.0},
            "carol": {"dataset": DATASET, "epsilon_limit": 1.0},
        }
    )
    loader = CountingLoader()
    service = PrivBasisService(
        registry, dataset_loader=loader, max_inflight=max_inflight
    )
    return service, loader


async def release_once(host, port, tenant, k=8, epsilon=0.5):
    async with ServiceClient(host, port, tenant=tenant) as client:
        return await client.release(k=k, epsilon=epsilon)


class TestTwoTenantScenario:
    def test_concurrent_cold_start_is_coalesced_with_distinct_noise(self):
        async def scenario():
            service, loader = make_service()
            async with service.serving() as (host, port):
                first, second = await asyncio.gather(
                    release_once(host, port, "alice"),
                    release_once(host, port, "bob"),
                )
                async with ServiceClient(host, port) as client:
                    metrics = await client.metrics()
                    alice = await client.budget(tenant="alice")
                    bob = await client.budget(tenant="bob")
            return service, loader, first, second, metrics, alice, bob

        service, loader, first, second, metrics, alice, bob = asyncio.run(
            scenario()
        )

        # Cold-start work happened once: one dataset build, one
        # item-support scan, one coalesced waiter.
        assert loader.calls == 1
        assert metrics["coalescer"]["started"] == 1
        assert metrics["coalescer"]["coalesced"] == 1
        cache = metrics["datasets"][DATASET]["cache"]
        assert cache["item_supports"]["misses"] == 1
        assert cache["item_supports"]["hits"] >= 2

        # Coalescing shared the exact substrate, never the noise:
        # byte-identical requests, distinct outputs.
        noisy_first = [e["noisy_frequency"] for e in first["itemsets"]]
        noisy_second = [e["noisy_frequency"] for e in second["itemsets"]]
        assert noisy_first != noisy_second

        # Per-tenant ledgers: each tenant paid exactly its own 0.5.
        for snapshot in (alice, bob):
            assert snapshot["ledger"]["spent"] == pytest.approx(0.5)
            assert snapshot["ledger"]["remaining"] == pytest.approx(2.5)
            assert [
                entry["epsilon"] for entry in snapshot["ledger"]["entries"]
            ] == [pytest.approx(0.5)]
        # The shared session saw both releases (dataset-level total).
        assert metrics["datasets"][DATASET]["num_releases"] == 2
        assert metrics["datasets"][DATASET]["epsilon_spent"] == (
            pytest.approx(1.0)
        )

    def test_warm_requests_hit_caches_without_rebuilds(self):
        async def scenario():
            service, loader = make_service()
            async with service.serving() as (host, port):
                async with ServiceClient(host, port, tenant="alice") as c:
                    await c.release(k=8, epsilon=0.25)
                    pools_after_first = service.session_for(
                        DATASET
                    ).stats()["pools_built"]
                    await c.release(k=8, epsilon=0.25)
                    stats = service.session_for(DATASET).stats()
            return loader, pools_after_first, stats

        loader, pools_after_first, stats = asyncio.run(scenario())
        assert loader.calls == 1
        # The warm release re-used the bitmap pools built by the first.
        assert stats["pools_built"] == pools_after_first
        hits = sum(entry["hits"] for entry in stats["cache"].values())
        assert hits > 0


class TestBudgetEnforcement:
    def test_403_once_epsilon_limit_is_exhausted(self):
        async def scenario():
            service, _ = make_service()
            async with service.serving() as (host, port):
                async with ServiceClient(host, port, tenant="carol") as c:
                    await c.release(k=5, epsilon=0.8)
                    with pytest.raises(BudgetExceededError) as info:
                        await c.release(k=5, epsilon=0.8)
                    snapshot = await c.budget()
            return info.value, snapshot

        error, snapshot = asyncio.run(scenario())
        # Structured payload: the client knows what it asked for and
        # what is left, without parsing the message.
        assert error.requested == pytest.approx(0.8)
        assert error.remaining == pytest.approx(0.2)
        # The refused release did not touch the ledger.
        assert snapshot["ledger"]["spent"] == pytest.approx(0.8)
        assert len(snapshot["ledger"]["entries"]) == 1

    def test_batch_is_all_or_nothing_against_the_ledger(self):
        async def scenario():
            service, _ = make_service()
            async with service.serving() as (host, port):
                async with ServiceClient(host, port, tenant="carol") as c:
                    with pytest.raises(BudgetExceededError):
                        await c.release_batch(
                            [
                                {"k": 5, "epsilon": 0.6},
                                {"k": 5, "epsilon": 0.6},
                            ]
                        )
                    after_reject = await c.budget()
                    ok = await c.release_batch(
                        [
                            {"k": 5, "epsilon": 0.3},
                            {"k": 5, "epsilon": 0.3},
                        ]
                    )
                    after_ok = await c.budget()
            return after_reject, ok, after_ok

        after_reject, ok, after_ok = asyncio.run(scenario())
        # The oversized batch charged nothing at all.
        assert after_reject["ledger"]["spent"] == 0.0
        assert len(ok["results"]) == 2
        assert after_ok["ledger"]["spent"] == pytest.approx(0.6)

    def test_unknown_tenant_is_typed(self):
        async def scenario():
            service, _ = make_service()
            async with service.serving() as (host, port):
                async with ServiceClient(host, port) as client:
                    with pytest.raises(UnknownTenantError):
                        await client.release(
                            k=5, epsilon=0.1, tenant="mallory"
                        )
                    with pytest.raises(UnknownTenantError):
                        await client.budget(tenant="mallory")

        asyncio.run(scenario())


class TestAdmissionControl:
    def test_429_when_max_inflight_is_reached(self):
        async def scenario():
            service, _ = make_service(max_inflight=1)
            async with service.serving() as (host, port):
                # Pre-build the session, then hold the dataset's
                # release lock so an admitted request stays in flight
                # deterministically.
                await service.get_session(DATASET)
                lock = service._lock_for(DATASET)
                await lock.acquire()
                try:
                    blocked = asyncio.create_task(
                        release_once(host, port, "alice")
                    )
                    while service.in_flight < 1:
                        await asyncio.sleep(0.005)
                    with pytest.raises(OverloadedError) as info:
                        await release_once(host, port, "bob")
                finally:
                    lock.release()
                first = await blocked
            return info.value, first

        error, first = asyncio.run(scenario())
        assert error.limit == 1
        # The admitted request finished normally once the lock freed.
        assert first["itemsets"]

    def test_batch_admission_is_weighted_by_request_count(self):
        # max_inflight bounds *releases*, not HTTP requests: a batch
        # wider than the limit is refused outright.
        async def scenario():
            service, _ = make_service(max_inflight=2)
            async with service.serving() as (host, port):
                async with ServiceClient(host, port, tenant="alice") as c:
                    with pytest.raises(OverloadedError):
                        await c.release_batch(
                            [{"k": 5, "epsilon": 0.1}] * 3
                        )
                    after_reject = await c.budget()
                    ok = await c.release_batch(
                        [{"k": 5, "epsilon": 0.1}] * 2
                    )
            return after_reject, ok

        after_reject, ok = asyncio.run(scenario())
        # The refused batch charged nothing.
        assert after_reject["ledger"]["spent"] == 0.0
        assert len(ok["results"]) == 2

    def test_slot_is_released_after_each_request(self):
        async def scenario():
            service, _ = make_service(max_inflight=1)
            async with service.serving() as (host, port):
                for _ in range(3):  # sequential requests all admitted
                    await release_once(
                        host, port, "alice", epsilon=0.2
                    )
                return service.in_flight

        assert asyncio.run(scenario()) == 0


class TestStreamingIngest:
    def test_ingest_advances_snapshot_and_releases_pin_it(self):
        async def scenario():
            service, loader = make_service()
            async with service.serving() as (host, port):
                async with ServiceClient(host, port, tenant="alice") as c:
                    before = await c.snapshot()
                    first = await c.release(k=8, epsilon=0.25)
                    info = await c.ingest([[0, 1, 2], [3, 4], []])
                    second = await c.release(k=8, epsilon=0.25)
                    after = await c.snapshot()
                    budget = await c.budget()
            return loader, before, first, info, second, after, budget

        loader, before, first, info, second, after, budget = asyncio.run(
            scenario()
        )
        assert loader.calls == 1
        # The data state advanced exactly once, by exactly the batch.
        assert before["snapshot_version"] == 0
        assert info["snapshot_version"] == 1
        assert info["appended"] == 3
        assert info["num_transactions"] == (
            before["num_transactions"] + 3
        )
        assert after["snapshot_version"] == 1
        assert after["num_transactions"] == info["num_transactions"]
        # Each release reports the snapshot it was computed on.
        assert first["snapshot_version"] == 0
        assert second["snapshot_version"] == 1
        # Ingestion consumed no ε — only the two releases did.
        assert budget["ledger"]["spent"] == pytest.approx(0.5)

    def test_cold_ingest_and_release_coalesce_to_one_build(self):
        async def scenario():
            service, loader = make_service()
            async with service.serving() as (host, port):
                async def ingest_once():
                    async with ServiceClient(
                        host, port, tenant="bob"
                    ) as c:
                        return await c.ingest([[1, 2], [3]])

                release_result, ingest_result = await asyncio.gather(
                    release_once(host, port, "alice"), ingest_once()
                )
                async with ServiceClient(host, port) as client:
                    metrics = await client.metrics()
            return loader, release_result, ingest_result, metrics

        loader, release_result, ingest_result, metrics = asyncio.run(
            scenario()
        )
        # One cold build served both the ingest and the release.
        assert loader.calls == 1
        assert metrics["coalescer"]["started"] == 1
        assert metrics["coalescer"]["coalesced"] == 1
        # The per-dataset lock serialized them: the release saw either
        # the pre-ingest or post-ingest snapshot, never a torn state.
        assert release_result["snapshot_version"] in (0, 1)
        assert ingest_result["snapshot_version"] == 1
        stats = metrics["datasets"][DATASET]
        assert stats["snapshot_version"] == 1
        assert stats["num_transactions"] == 202

    def test_read_only_tenant_gets_403_ingest_forbidden(self):
        async def scenario():
            registry = TenantRegistry.from_mapping(
                {
                    "feed": {"dataset": DATASET, "epsilon_limit": 5.0},
                    "analyst": {
                        "dataset": DATASET,
                        "epsilon_limit": 5.0,
                        "ingest": False,
                    },
                }
            )
            service = PrivBasisService(
                registry, dataset_loader=CountingLoader()
            )
            async with service.serving() as (host, port):
                async with ServiceClient(
                    host, port, tenant="analyst"
                ) as c:
                    with pytest.raises(IngestNotAllowedError) as info:
                        await c.ingest([[0, 1]])
                    snapshot = await c.snapshot()
                    budget = await c.budget()
                async with ServiceClient(host, port, tenant="feed") as c:
                    allowed = await c.ingest([[0, 1]])
            return info.value, snapshot, budget, allowed

        error, snapshot, budget, allowed = asyncio.run(scenario())
        assert error.tenant_id == "analyst"
        # The refused ingest changed nothing; reads still work.
        assert snapshot["snapshot_version"] == 0
        assert budget["ingest"] is False
        assert allowed["snapshot_version"] == 1

    def test_malformed_and_out_of_vocabulary_ingests_are_400(self):
        async def scenario():
            service, _ = make_service()
            async with service.serving() as (host, port):
                async with ServiceClient(host, port, tenant="alice") as c:
                    with pytest.raises(ValidationError):
                        await c.ingest([])  # empty batch
                    with pytest.raises(ValidationError):
                        await c.ingest([[999]])  # outside |I| = 15
                    snapshot = await c.snapshot()
            return snapshot

        snapshot = asyncio.run(scenario())
        # Neither bad batch advanced the data.
        assert snapshot["snapshot_version"] == 0
        assert snapshot["num_transactions"] == 200

    def test_snapshot_requires_known_tenant_parameter(self):
        async def scenario():
            service, _ = make_service()
            async with service.serving() as (host, port):
                async with ServiceClient(host, port) as client:
                    with pytest.raises(ValidationError):
                        await client.snapshot(tenant="")
                    with pytest.raises(UnknownTenantError):
                        await client.snapshot(tenant="mallory")

        asyncio.run(scenario())


class TestWireContract:
    def test_seedful_requests_rejected_over_the_wire(self):
        async def scenario():
            service, _ = make_service()
            async with service.serving() as (host, port):
                reader, writer = await asyncio.open_connection(host, port)
                from repro.service import http

                http.write_request(
                    writer,
                    "POST",
                    "/v1/release",
                    {
                        "tenant": "alice",
                        "k": 5,
                        "epsilon": 0.5,
                        "seed": 1234,
                    },
                )
                await writer.drain()
                status, payload = await http.read_response(reader)
                writer.close()
            return status, payload

        status, payload = asyncio.run(scenario())
        assert status == 400
        assert payload["error"] == "validation_error"
        assert "seed-less" in payload["message"]

    def test_unknown_route_and_wrong_method(self):
        async def scenario():
            service, _ = make_service()
            async with service.serving() as (host, port):
                from repro.service import http

                reader, writer = await asyncio.open_connection(host, port)
                http.write_request(writer, "GET", "/v2/nothing")
                await writer.drain()
                missing = await http.read_response(reader)
                http.write_request(writer, "DELETE", "/healthz")
                await writer.drain()
                wrong = await http.read_response(reader)
                writer.close()
            return missing, wrong

        missing, wrong = asyncio.run(scenario())
        assert missing[0] == 404
        assert wrong[0] == 405

    def test_healthz_and_metrics_shapes(self):
        async def scenario():
            service, _ = make_service()
            async with service.serving() as (host, port):
                async with ServiceClient(host, port, tenant="alice") as c:
                    health_cold = await c.healthz()
                    await c.release(k=5, epsilon=0.1)
                    health_warm = await c.healthz()
                    metrics = await c.metrics()
            return health_cold, health_warm, metrics

        health_cold, health_warm, metrics = asyncio.run(scenario())
        assert health_cold["status"] == "ok"
        assert health_cold["warm"] == []
        assert health_warm["warm"] == [DATASET]
        assert metrics["http"]["requests"]["/v1/release"] == 1
        assert metrics["http"]["statuses"]["/v1/release:200"] == 1
        latency = metrics["http"]["latency_ms"]["/v1/release"]
        assert latency["count"] == 1
        assert latency["buckets"][-1]["count"] == 1

    def test_unmatched_paths_share_one_metrics_label(self):
        # A path-spraying client must not grow per-route metrics state.
        async def scenario():
            service, _ = make_service()
            async with service.serving() as (host, port):
                from repro.service import http

                reader, writer = await asyncio.open_connection(host, port)
                for index in range(5):
                    http.write_request(writer, "GET", f"/spray/{index}")
                    await writer.drain()
                    await http.read_response(reader)
                writer.close()
                async with ServiceClient(host, port) as client:
                    return await client.metrics()

        metrics = asyncio.run(scenario())
        assert metrics["http"]["requests"]["unknown"] == 5
        sprayed = [
            route
            for route in metrics["http"]["requests"]
            if route.startswith("/spray")
        ]
        assert sprayed == []

    def test_default_loader_rejects_unknown_datasets_at_startup(self):
        registry = TenantRegistry.from_mapping(
            {"alice": {"dataset": "no_such_set", "epsilon_limit": 1.0}}
        )
        with pytest.raises(ValidationError, match="no_such_set"):
            PrivBasisService(registry)  # default loader → fail fast

    def test_custom_loader_owns_its_dataset_namespace(self):
        # An injected loader serves names the built-in registry has
        # never heard of.
        async def scenario():
            registry = TenantRegistry.from_mapping(
                {"alice": {"dataset": "internal_sales",
                           "epsilon_limit": 2.0}}
            )
            service = PrivBasisService(
                registry, dataset_loader=lambda name: small_database()
            )
            async with service.serving() as (host, port):
                async with ServiceClient(host, port, tenant="alice") as c:
                    return await c.release(k=5, epsilon=0.5)

        assert asyncio.run(scenario())["dataset"] == "internal_sales"

    def test_unexpected_server_error_answers_json_500(self):
        # A crashing loader (a bug, a missing file) must surface as a
        # structured 500, not a dropped connection.
        async def scenario():
            registry = TenantRegistry.from_mapping(
                {"alice": {"dataset": "doomed", "epsilon_limit": 1.0}}
            )

            def exploding_loader(name):
                raise FileNotFoundError(f"no data for {name}")

            service = PrivBasisService(
                registry, dataset_loader=exploding_loader
            )
            async with service.serving() as (host, port):
                from repro.service import http

                reader, writer = await asyncio.open_connection(host, port)
                http.write_request(
                    writer,
                    "POST",
                    "/v1/release",
                    {"tenant": "alice", "k": 5, "epsilon": 0.5},
                )
                await writer.drain()
                status, payload = await http.read_response(reader)
                writer.close()
                snapshot = service.registry.get("alice").snapshot()
            return status, payload, snapshot

        status, payload, snapshot = asyncio.run(scenario())
        assert status == 500
        assert payload["error"] == "internal_error"
        assert "FileNotFoundError" in payload["message"]
        # The failed cold start never reached the ledger.
        assert snapshot["ledger"]["spent"] == 0.0

    def test_budget_for_tenant_id_needing_url_encoding(self):
        async def scenario():
            registry = TenantRegistry.from_mapping(
                {"team a&b": {"dataset": "x", "epsilon_limit": 1.0}}
            )
            service = PrivBasisService(
                registry, dataset_loader=lambda name: small_database()
            )
            async with service.serving() as (host, port):
                async with ServiceClient(
                    host, port, tenant="team a&b"
                ) as client:
                    return await client.budget()

        snapshot = asyncio.run(scenario())
        assert snapshot["tenant"] == "team a&b"

    def test_client_requires_a_tenant(self):
        client = ServiceClient("127.0.0.1", 1)
        with pytest.raises(ValidationError):
            asyncio.run(client.release(k=5, epsilon=0.1))
