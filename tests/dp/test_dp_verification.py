"""Differential-privacy verification on neighbouring databases.

These tests check the ε-DP inequality
``Pr[A(D) ∈ S] ≤ e^ε · Pr[A(D′) ∈ S]`` directly, on tiny databases
where the output distributions are tractable:

* analytically, where the mechanism's output law is closed-form
  (Laplace tails, exponential-mechanism probabilities, geometric
  tails) — these are *sharp*: a miscalibrated sensitivity (e.g.
  forgetting the width factor w) fails immediately;
* by Monte Carlo for the end-to-end pipeline, with slack for sampling
  error — a smoke check that composition wires the budget correctly.

The neighbouring relation matches the paper: D′ = D + one transaction.
"""

import math

import numpy as np
import pytest

from repro.core.basis import BasisSet
from repro.core.privbasis import privbasis
from repro.datasets.transactions import TransactionDatabase
from repro.dp.exponential import em_probabilities
from repro.dp.geometric import geometric_alpha
from repro.dp.laplace import laplace_cdf
from repro.fim.counting import bin_counts_for_items

BASE_TRANSACTIONS = [
    (0, 1),
    (0, 1, 2),
    (0,),
    (1, 2),
    (2,),
    (0, 2),
]


@pytest.fixture()
def neighbours():
    """(D, D′) with D′ = D + {0, 1, 2}."""
    base = TransactionDatabase(BASE_TRANSACTIONS, num_items=3)
    extended = TransactionDatabase(
        BASE_TRANSACTIONS + [(0, 1, 2)], num_items=3
    )
    return base, extended


def laplace_tail(exact: float, threshold: float, scale: float) -> float:
    """Pr[exact + Lap(scale) ≥ threshold]."""
    return 1.0 - float(laplace_cdf(threshold - exact, scale))


class TestLaplaceBinsAnalytic:
    """Publishing all bins of a width-w basis set with Lap(w/ε) noise:
    tail-event probabilities on neighbours must respect e^ε."""

    @pytest.mark.parametrize("epsilon", [0.1, 0.5, 1.0, 2.0])
    def test_single_basis_tails(self, neighbours, epsilon):
        base, extended = neighbours
        basis = (0, 1, 2)
        scale = 1.0 / epsilon  # w = 1
        bins_base = bin_counts_for_items(base, basis)
        bins_ext = bin_counts_for_items(extended, basis)
        bound = math.exp(epsilon)
        # Every bin, a grid of thresholds, both tail directions.
        for j in range(len(bins_base)):
            for threshold in np.linspace(-3, 10, 27):
                p = laplace_tail(bins_base[j], threshold, scale)
                q = laplace_tail(bins_ext[j], threshold, scale)
                if min(p, q) < 1e-12:
                    continue
                assert p <= bound * q + 1e-12
                assert q <= bound * p + 1e-12

    def test_width_two_needs_double_scale(self, neighbours):
        # With two bases, both bins containing the new transaction
        # shift; the JOINT event needs scale 2/eps. Verify that the
        # correctly calibrated scale satisfies the bound...
        base, extended = neighbours
        epsilon = 1.0
        basis_set = BasisSet([(0, 1), (2,)])
        scale = basis_set.width / epsilon
        bound = math.exp(epsilon)
        bins_base = [
            bin_counts_for_items(base, basis) for basis in basis_set
        ]
        bins_ext = [
            bin_counts_for_items(extended, basis) for basis in basis_set
        ]
        # Joint tail event: bin of {0,1} >= t1 AND bin of {2} >= t2
        # (noise independent, so the joint probability factorizes).
        for t1 in (1.0, 2.0, 3.0):
            for t2 in (1.0, 2.0, 3.0):
                p = laplace_tail(bins_base[0][3], t1, scale) * (
                    laplace_tail(bins_base[1][1], t2, scale)
                )
                q = laplace_tail(bins_ext[0][3], t1, scale) * (
                    laplace_tail(bins_ext[1][1], t2, scale)
                )
                assert p <= bound * q + 1e-12
                assert q <= bound * p + 1e-12

    def test_uncalibrated_scale_violates_bound(self, neighbours):
        # Sanity of the verifier itself: using scale 1/eps for a
        # width-2 basis set (forgetting w) must BREAK the bound —
        # proving these tests can fail.
        base, extended = neighbours
        epsilon = 2.0
        wrong_scale = 1.0 / epsilon
        bound = math.exp(epsilon)
        # Joint shift of two bins by 1 each with under-scaled noise.
        count_b0 = bin_counts_for_items(base, (0, 1))[3]
        count_b1 = bin_counts_for_items(base, (2,))[1]
        count_e0 = bin_counts_for_items(extended, (0, 1))[3]
        count_e1 = bin_counts_for_items(extended, (2,))[1]
        violated = False
        for t1 in np.linspace(count_e0, count_e0 + 4, 9):
            for t2 in np.linspace(count_e1, count_e1 + 4, 9):
                p = laplace_tail(count_b0, t1, wrong_scale) * (
                    laplace_tail(count_b1, t2, wrong_scale)
                )
                q = laplace_tail(count_e0, t1, wrong_scale) * (
                    laplace_tail(count_e1, t2, wrong_scale)
                )
                if q > bound * p * (1 + 1e-9) or p > bound * q * (
                    1 + 1e-9
                ):
                    violated = True
        assert violated


class TestGeometricAnalytic:
    @pytest.mark.parametrize("epsilon", [0.25, 1.0])
    def test_point_probabilities(self, epsilon):
        # Pr[count + Z = v] ratios between neighbouring counts c and
        # c+1 are at most alpha^{-1} = e^eps.
        alpha = geometric_alpha(1.0, epsilon)
        norm = (1 - alpha) / (1 + alpha)

        def pmf(noise_value: int) -> float:
            return norm * alpha ** abs(noise_value)

        count = 4
        bound = math.exp(epsilon)
        for value in range(-2, 12):
            p = pmf(value - count)
            q = pmf(value - (count + 1))
            assert p <= bound * q + 1e-15
            assert q <= bound * p + 1e-15


class TestExponentialMechanismAnalytic:
    def test_getlambda_probabilities_bounded(self, neighbours):
        # GetLambda's quality on item rank j is (1 - |f_j - f_k1|)*N,
        # sensitivity 1.  Compute the EM distribution analytically on
        # both neighbours; every outcome's probability ratio must be
        # within e^eps (the /2 factor makes the per-outcome bound
        # e^{eps} overall after normalization shifts).
        base, extended = neighbours
        epsilon = 1.0
        bound = math.exp(epsilon)

        def qualities(database):
            n = database.num_transactions
            supports = sorted(
                (database.support((item,)) for item in range(3)),
                reverse=True,
            )
            theta = supports[0] / n  # target the top rank, k1 = 1
            return np.array(
                [
                    (1.0 - abs(support / n - theta)) * n
                    for support in supports
                ]
            )

        p = em_probabilities(qualities(base), epsilon, sensitivity=1.0)
        q = em_probabilities(
            qualities(extended), epsilon, sensitivity=1.0
        )
        for a, b in zip(p, q):
            assert a <= bound * b + 1e-12
            assert b <= bound * a + 1e-12


class TestEndToEndMonteCarlo:
    def test_privbasis_event_probabilities(self, neighbours):
        """Pr[itemset ∈ release] on neighbours, 1500 runs each.

        Smoke check with generous slack for Monte Carlo error: a
        composition bug (e.g. spending more than the per-step share)
        shows up as a ratio far beyond e^ε.
        """
        base, extended = neighbours
        epsilon = 1.0
        runs = 1500
        rng = np.random.default_rng(123)

        def hit_rate(database):
            hits = 0
            for _ in range(runs):
                release = privbasis(
                    database, k=2, epsilon=epsilon, rng=rng
                )
                released = {
                    entry.itemset for entry in release.itemsets
                }
                if (0, 1) in released:
                    hits += 1
            return hits / runs

        p = hit_rate(base)
        q = hit_rate(extended)
        assert min(p, q) > 0.01, "event too rare to verify"
        bound = math.exp(epsilon)
        slack = 1.35  # 3-sigma Monte Carlo slack at these rates
        assert p <= bound * q * slack
        assert q <= bound * p * slack
