"""Tests for the exponential mechanism (log-space / Gumbel sampling)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dp.exponential import (
    em_probabilities,
    em_scores,
    exponential_mechanism,
    exponential_mechanism_top_k,
)
from repro.errors import EmptySelectionError, ValidationError


class TestScores:
    def test_standard_halving(self):
        scores = em_scores(np.array([0.0, 2.0]), epsilon=1.0,
                           sensitivity=1.0)
        assert scores[1] - scores[0] == pytest.approx(1.0)

    def test_one_sided_doubles_exponent(self):
        two_sided = em_scores(np.array([0.0, 2.0]), 1.0, 1.0)
        one_sided = em_scores(np.array([0.0, 2.0]), 1.0, 1.0,
                              one_sided=True)
        assert one_sided[1] == pytest.approx(2 * two_sided[1])

    def test_huge_qualities_do_not_overflow(self):
        # ε·N-scale exponents (the paper's GetLambda regime).
        qualities = np.array([1e6, 1e6 - 5, 0.0])
        probabilities = em_probabilities(qualities, 1.0, 1.0)
        assert np.all(np.isfinite(probabilities))
        assert probabilities.sum() == pytest.approx(1.0)

    def test_rejects_matrix_input(self):
        with pytest.raises(ValidationError):
            em_scores(np.zeros((2, 2)), 1.0, 1.0)


class TestSingleSelection:
    def test_empty_domain(self):
        with pytest.raises(EmptySelectionError):
            exponential_mechanism(np.array([]), 1.0, 1.0)

    def test_overwhelming_quality_always_wins(self):
        qualities = np.array([0.0, 0.0, 1000.0, 0.0])
        picks = {
            exponential_mechanism(qualities, 1.0, 1.0, rng=seed)
            for seed in range(50)
        }
        assert picks == {2}

    def test_empirical_ratio_matches_exponent(self):
        # q difference of 1, ε = 2, GS = 1 → odds ratio e^1.
        qualities = np.array([1.0, 0.0])
        rng = np.random.default_rng(5)
        wins = sum(
            exponential_mechanism(qualities, 2.0, 1.0, rng=rng) == 0
            for _ in range(40_000)
        )
        expected = math.e / (1 + math.e)
        assert wins / 40_000 == pytest.approx(expected, abs=0.01)

    def test_probabilities_match_theory(self):
        qualities = np.array([3.0, 1.0, 0.0])
        probabilities = em_probabilities(qualities, 2.0, 1.0)
        weights = np.exp(qualities)  # ε/(2·GS) = 1
        assert probabilities == pytest.approx(weights / weights.sum())


class TestTopKSelection:
    def test_without_replacement(self):
        qualities = np.arange(10, dtype=float)
        picked = exponential_mechanism_top_k(qualities, 5, 10.0, 1.0,
                                             rng=0)
        assert len(set(picked)) == 5

    def test_domain_too_small(self):
        with pytest.raises(EmptySelectionError):
            exponential_mechanism_top_k(np.array([1.0]), 2, 1.0, 1.0)

    def test_high_budget_recovers_exact_top_k(self):
        qualities = np.array([100.0, 90.0, 80.0, 5.0, 1.0, 0.5])
        picked = exponential_mechanism_top_k(
            qualities, 3, 1e5, 1.0, one_sided=True, rng=3
        )
        assert sorted(picked) == [0, 1, 2]

    def test_budget_split_across_rounds(self):
        # Splitting ε across k rounds weakens each round: the clear
        # winner tops the *first draw* far less often with k = 30 than
        # with k = 1 at the same total budget.
        qualities = np.concatenate([[30.0], np.zeros(60)])
        rng = np.random.default_rng(9)
        trials = 300
        first_hit_whole_budget = sum(
            exponential_mechanism_top_k(qualities, 1, 2.0, 1.0,
                                        rng=rng)[0] == 0
            for _ in range(trials)
        )
        first_hit_split_budget = sum(
            exponential_mechanism_top_k(qualities, 30, 2.0, 1.0,
                                        rng=rng)[0] == 0
            for _ in range(trials)
        )
        # ε=2, gap 30 → one-shot odds e^30 vs 60: essentially certain.
        assert first_hit_whole_budget > 0.95 * trials
        # ε/30 per round → odds e^1 vs 60: rarely first.
        assert first_hit_split_budget < 0.35 * trials

    @given(k=st.integers(min_value=1, max_value=6))
    @settings(max_examples=20)
    def test_result_length(self, k):
        qualities = np.arange(8, dtype=float)
        assert len(
            exponential_mechanism_top_k(qualities, k, 1.0, 1.0, rng=0)
        ) == k

    def test_invalid_k(self):
        with pytest.raises(ValidationError):
            exponential_mechanism_top_k(np.arange(3.0), 0, 1.0, 1.0)
