"""Tests for RNG normalization and spawning."""

import numpy as np
import pytest

from repro.dp.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        assert ensure_rng(123).random() == ensure_rng(123).random()

    def test_numpy_integer_seed(self):
        assert (
            ensure_rng(np.int64(5)).random() == ensure_rng(5).random()
        )

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawn:
    def test_children_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_children_streams_differ(self):
        children = spawn_rngs(0, 3)
        draws = {child.random() for child in children}
        assert len(draws) == 3

    def test_spawning_is_deterministic(self):
        first = [child.random() for child in spawn_rngs(42, 3)]
        second = [child.random() for child in spawn_rngs(42, 3)]
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []
