"""Tests for the two-sided geometric mechanism."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.geometric import (
    geometric_alpha,
    geometric_mechanism,
    geometric_noise,
    geometric_variance,
)
from repro.errors import ValidationError


class TestAlpha:
    def test_formula(self):
        assert geometric_alpha(1.0, 1.0) == pytest.approx(math.exp(-1))
        assert geometric_alpha(5.0, 1.0) == pytest.approx(math.exp(-0.2))

    def test_validation(self):
        with pytest.raises(ValidationError):
            geometric_alpha(0.0, 1.0)
        with pytest.raises(ValidationError):
            geometric_alpha(1.0, 0.0)
        with pytest.raises(ValidationError):
            geometric_alpha(1.0, -2.0)


class TestNoise:
    def test_integer_outputs(self):
        draws = geometric_noise(0.5, size=100, rng=0)
        assert draws.dtype == np.int64

    def test_scalar_output(self):
        value = geometric_noise(0.5, rng=0)
        assert isinstance(value, int)

    def test_symmetric_around_zero(self):
        rng = np.random.default_rng(1)
        draws = geometric_noise(0.6, size=40000, rng=rng)
        assert abs(float(draws.mean())) < 0.05
        # Symmetry: P(Z = z) == P(Z = -z) empirically.
        positive = np.count_nonzero(draws > 0)
        negative = np.count_nonzero(draws < 0)
        assert abs(positive - negative) < 0.05 * draws.size

    def test_variance_matches_formula(self):
        alpha = 0.7
        rng = np.random.default_rng(2)
        draws = geometric_noise(alpha, size=60000, rng=rng)
        expected = geometric_variance(alpha)
        assert float(draws.var()) == pytest.approx(expected, rel=0.05)

    def test_distribution_shape(self):
        # P(Z = z) proportional to alpha^{|z|}: the ratio of
        # consecutive probabilities is alpha.
        alpha = 0.5
        rng = np.random.default_rng(3)
        draws = geometric_noise(alpha, size=200000, rng=rng)
        p0 = np.count_nonzero(draws == 0)
        p1 = np.count_nonzero(draws == 1)
        p2 = np.count_nonzero(draws == 2)
        assert p1 / p0 == pytest.approx(alpha, rel=0.1)
        assert p2 / p1 == pytest.approx(alpha, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValidationError):
            geometric_noise(-0.1)
        with pytest.raises(ValidationError):
            geometric_noise(1.0)


class TestMechanism:
    def test_integer_release(self):
        noisy = geometric_mechanism(
            np.array([10, 20, 30]), sensitivity=1.0, epsilon=1.0, rng=0
        )
        assert noisy.dtype == np.int64

    def test_scalar_release(self):
        noisy = geometric_mechanism(10, sensitivity=1.0, epsilon=1.0,
                                    rng=0)
        assert isinstance(noisy, int)

    def test_tiny_noise_at_huge_epsilon(self):
        values = np.arange(50)
        noisy = geometric_mechanism(
            values, sensitivity=1.0, epsilon=1e6, rng=0
        )
        assert np.array_equal(noisy, values)

    def test_rounds_non_integer_inputs(self):
        noisy = geometric_mechanism(
            10.4, sensitivity=1.0, epsilon=1e6, rng=0
        )
        assert noisy == 10

    @given(
        epsilon=st.floats(min_value=0.01, max_value=10),
        sensitivity=st.floats(min_value=0.5, max_value=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_variance_never_exceeds_laplace(self, epsilon, sensitivity):
        # Var_geometric = 2a/(1-a)^2 <= Var_laplace = 2(D/e)^2 for all
        # a = exp(-e/D), with equality in the e/D -> 0 limit.
        alpha = geometric_alpha(sensitivity, epsilon)
        geometric = geometric_variance(alpha)
        laplace = 2.0 * (sensitivity / epsilon) ** 2
        assert geometric <= laplace * (1.0 + 1e-9)

    def test_variance_ratio_approaches_one_at_small_epsilon(self):
        alpha = geometric_alpha(1.0, 0.001)
        ratio = geometric_variance(alpha) / (2.0 * (1.0 / 0.001) ** 2)
        assert ratio == pytest.approx(1.0, abs=0.01)

    def test_alpha_zero_limit(self):
        assert geometric_variance(0.0) == 0.0
        assert geometric_noise(0.0) == 0
        assert np.array_equal(
            geometric_noise(0.0, size=3), np.zeros(3, dtype=np.int64)
        )


class TestBasisFreqIntegration:
    def test_geometric_bins_are_integers(self, tiny_db):
        from repro.core.basis import BasisSet
        from repro.core.basis_freq import noisy_bin_counts

        bins = noisy_bin_counts(
            tiny_db, BasisSet([(0, 1, 2)]), 1.0, rng=0, noise="geometric"
        )
        assert all(float(value).is_integer() for value in bins[0])

    def test_invalid_noise_kind(self, tiny_db):
        from repro.core.basis import BasisSet
        from repro.core.basis_freq import noisy_bin_counts

        with pytest.raises(ValidationError):
            noisy_bin_counts(
                tiny_db, BasisSet([(0,)]), 1.0, noise="gaussian"
            )

    def test_privbasis_with_geometric_noise(self, dense_db):
        from repro.core.privbasis import privbasis

        release = privbasis(
            dense_db, k=10, epsilon=1e6, noise="geometric", rng=4
        )
        # Huge budget: recovered counts must be near-exact.
        for entry in release.itemsets:
            truth = dense_db.support(entry.itemset)
            assert entry.noisy_count == pytest.approx(truth, abs=1.0)

    def test_variance_bookkeeping_uses_geometric_formula(self, tiny_db):
        from repro.core.basis import BasisSet
        from repro.core.basis_freq import (
            itemset_estimates_from_bins,
            noisy_bin_counts,
        )

        basis_set = BasisSet([(0, 1)])
        epsilon = 0.5
        bins = noisy_bin_counts(
            tiny_db, basis_set, epsilon, rng=0, noise="geometric"
        )
        estimates = itemset_estimates_from_bins(
            basis_set, bins, epsilon, noise="geometric"
        )
        alpha = geometric_alpha(1, epsilon)
        per_bin = geometric_variance(alpha)
        # The full-basis itemset {0,1} sums exactly one bin.
        assert estimates[(0, 1)][1] == pytest.approx(per_bin)
