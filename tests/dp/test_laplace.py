"""Tests for the Laplace mechanism and distribution helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dp.laplace import (
    laplace_cdf,
    laplace_mechanism,
    laplace_noise,
    laplace_ppf,
    laplace_variance,
)
from repro.errors import ValidationError


class TestNoise:
    def test_shape(self):
        noise = laplace_noise(1.0, size=(3, 4), rng=0)
        assert noise.shape == (3, 4)

    def test_determinism_under_seed(self):
        assert laplace_noise(1.0, size=5, rng=42) == pytest.approx(
            laplace_noise(1.0, size=5, rng=42)
        )

    def test_empirical_mean_and_variance(self):
        sample = laplace_noise(2.0, size=200_000, rng=1)
        assert np.mean(sample) == pytest.approx(0.0, abs=0.05)
        assert np.var(sample) == pytest.approx(
            laplace_variance(2.0), rel=0.05
        )

    def test_invalid_scale(self):
        with pytest.raises(ValidationError):
            laplace_noise(0.0)


class TestMechanism:
    def test_scalar_input_returns_float(self):
        out = laplace_mechanism(10.0, sensitivity=1.0, epsilon=1.0, rng=0)
        assert isinstance(out, float)

    def test_vector_input_returns_array(self):
        out = laplace_mechanism(
            np.zeros(4), sensitivity=1.0, epsilon=1.0, rng=0
        )
        assert out.shape == (4,)

    def test_noise_scale_tracks_sensitivity_over_epsilon(self):
        tight = laplace_mechanism(
            np.zeros(100_000), sensitivity=1.0, epsilon=10.0, rng=3
        )
        loose = laplace_mechanism(
            np.zeros(100_000), sensitivity=1.0, epsilon=0.1, rng=3
        )
        assert np.std(loose) > 50 * np.std(tight)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValidationError):
            laplace_mechanism(1.0, sensitivity=1.0, epsilon=0.0)

    def test_rejects_bad_sensitivity(self):
        with pytest.raises(ValidationError):
            laplace_mechanism(1.0, sensitivity=-1.0, epsilon=1.0)


class TestDistributionFunctions:
    def test_cdf_at_zero_is_half(self):
        assert laplace_cdf(0.0, scale=3.0) == pytest.approx(0.5)

    def test_cdf_symmetry(self):
        assert laplace_cdf(-1.7, 1.0) == pytest.approx(
            1.0 - laplace_cdf(1.7, 1.0)
        )

    def test_ppf_bounds_validation(self):
        with pytest.raises(ValidationError):
            laplace_ppf(1.5, 1.0)

    @given(
        q=st.floats(min_value=1e-6, max_value=1 - 1e-6),
        scale=st.floats(min_value=0.01, max_value=100.0),
    )
    def test_ppf_inverts_cdf(self, q, scale):
        assert laplace_cdf(laplace_ppf(q, scale), scale) == pytest.approx(
            q, rel=1e-9, abs=1e-12
        )

    @given(x=st.floats(min_value=-50, max_value=50))
    def test_cdf_monotone(self, x):
        assert laplace_cdf(x, 1.0) <= laplace_cdf(x + 0.5, 1.0)

    def test_variance_formula(self):
        assert laplace_variance(3.0) == pytest.approx(18.0)
