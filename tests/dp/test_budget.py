"""Tests for the privacy-budget ledger (sequential composition)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.dp.budget import PrivacyBudget
from repro.errors import BudgetExceededError, ValidationError


class TestConstruction:
    def test_positive_epsilon_required(self):
        with pytest.raises(ValidationError):
            PrivacyBudget(0.0)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValidationError):
            PrivacyBudget(-1.0)

    def test_unlimited_budget(self):
        budget = PrivacyBudget.unlimited()
        budget.spend(1e9, "huge")
        assert budget.remaining == math.inf


class TestSpending:
    def test_spend_records_entry(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.25, "step1")
        assert budget.spent == pytest.approx(0.25)
        assert budget.remaining == pytest.approx(0.75)
        assert budget.entries[0].label == "step1"

    def test_spend_returns_amount(self):
        budget = PrivacyBudget(1.0)
        assert budget.spend(0.5) == 0.5

    def test_overdraft_raises(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.9)
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.spend(0.2)
        assert excinfo.value.requested == pytest.approx(0.2)
        assert excinfo.value.remaining == pytest.approx(0.1)

    def test_overdraft_leaves_ledger_unchanged(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.9)
        with pytest.raises(BudgetExceededError):
            budget.spend(0.5)
        assert budget.spent == pytest.approx(0.9)

    def test_zero_spend_rejected(self):
        budget = PrivacyBudget(1.0)
        with pytest.raises(ValidationError):
            budget.spend(0.0)

    def test_exact_exhaustion_allowed(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.5)
        budget.spend(0.5)
        assert budget.remaining == pytest.approx(0.0)

    def test_float_rounding_tolerated(self):
        # 0.1 + 0.4 + 0.5 has float error; must still fit in ε = 1.
        budget = PrivacyBudget(1.0)
        for fraction in (0.1, 0.4, 0.5):
            budget.spend(fraction)
        budget.assert_within_budget()

    def test_spend_all_consumes_remainder(self):
        budget = PrivacyBudget(2.0)
        budget.spend(0.75)
        amount = budget.spend_all("rest")
        assert amount == pytest.approx(1.25)
        assert budget.remaining == pytest.approx(0.0)

    def test_spend_all_on_empty_budget_raises(self):
        budget = PrivacyBudget(1.0)
        budget.spend(1.0)
        with pytest.raises(BudgetExceededError):
            budget.spend_all()


class TestSplit:
    def test_paper_alphas(self):
        budget = PrivacyBudget(2.0)
        amounts = budget.split((0.1, 0.4, 0.5))
        assert amounts == pytest.approx([0.2, 0.8, 1.0])

    def test_split_does_not_spend(self):
        budget = PrivacyBudget(1.0)
        budget.split((0.5, 0.5))
        assert budget.spent == 0.0

    def test_split_rejects_oversubscription(self):
        with pytest.raises(ValidationError):
            PrivacyBudget(1.0).split((0.6, 0.6))

    def test_split_rejects_nonpositive_fraction(self):
        with pytest.raises(ValidationError):
            PrivacyBudget(1.0).split((0.5, 0.0))

    def test_split_error_is_structured(self):
        # A zero fraction must answer the structured error naming the
        # offending entry, never slip through to a degenerate ε = 0
        # stage budget.
        from repro.errors import InvalidFractionsError

        with pytest.raises(InvalidFractionsError) as excinfo:
            PrivacyBudget(1.0).split((0.5, 0.0, 0.5))
        assert excinfo.value.fractions == (0.5, 0.0, 0.5)
        assert "fractions[1]" in str(excinfo.value)

    def test_split_rejects_nan_and_inf(self):
        from repro.errors import InvalidFractionsError

        with pytest.raises(InvalidFractionsError):
            PrivacyBudget(1.0).split((float("nan"), 0.5))
        with pytest.raises(InvalidFractionsError):
            PrivacyBudget(1.0).split((float("inf"),))

    def test_split_rejects_empty(self):
        with pytest.raises(ValidationError):
            PrivacyBudget(1.0).split(())

    def test_partial_split_allowed(self):
        # Fractions may sum to < 1 (caller keeps the rest).
        amounts = PrivacyBudget(1.0).split((0.3,))
        assert amounts == pytest.approx([0.3])


class TestCompositionProperty:
    @given(
        epsilon=st.floats(min_value=0.01, max_value=100.0),
        fractions=st.lists(
            st.floats(min_value=0.01, max_value=1.0), min_size=1,
            max_size=8,
        ),
    )
    def test_spending_split_amounts_never_overdraws(self, epsilon, fractions):
        total = sum(fractions)
        normalized = [fraction / total for fraction in fractions]
        budget = PrivacyBudget(epsilon)
        for amount in budget.split(normalized):
            budget.spend(amount)
        budget.assert_within_budget()
        assert budget.spent == pytest.approx(epsilon, rel=1e-6)
