"""Tests for FNR and relative-error metrics (paper Section 5)."""

import math

import pytest

from repro.baselines.nonprivate import exact_top_k
from repro.core.result import NoisyItemset, PrivateFIMResult
from repro.errors import ValidationError
from repro.fim.topk import top_k_itemsets
from repro.metrics.utility import (
    evaluate_release,
    false_negative_rate,
    relative_error,
)


def make_release(entries, k, method="test"):
    itemsets = [
        NoisyItemset(
            itemset=itemset,
            noisy_count=frequency * 100,
            noisy_frequency=frequency,
            count_variance=1.0,
        )
        for itemset, frequency in entries
    ]
    return PrivateFIMResult(itemsets=itemsets, k=k, epsilon=1.0,
                            method=method)


class TestFNR:
    def test_perfect_release(self):
        truth = [(1,), (2,), (1, 2)]
        assert false_negative_rate(truth, truth, 3) == 0.0

    def test_total_miss(self):
        assert false_negative_rate([(1,)], [(9,)], 1) == 1.0

    def test_partial(self):
        truth = [(1,), (2,), (3,), (4,)]
        found = [(1,), (2,), (9,), (8,)]
        assert false_negative_rate(truth, found, 4) == pytest.approx(0.5)

    def test_equals_false_positive_rate_for_topk(self):
        # Same cardinality on both sides → FNR == FPR (paper note).
        truth = [(1,), (2,), (3,)]
        found = [(1,), (8,), (9,)]
        fnr = false_negative_rate(truth, found, 3)
        fpr = len(set(found) - set(truth)) / 3
        assert fnr == fpr

    def test_denominator_is_nominal_k(self):
        # Fewer than k true itemsets: denominator stays k.
        assert false_negative_rate([(1,)], [], 4) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValidationError):
            false_negative_rate([], [], 0)


class TestRelativeError:
    def test_exact_release_is_zero(self):
        published = {(1,): 0.5, (2,): 0.25}
        assert relative_error(published, dict(published)) == 0.0

    def test_median_semantics(self):
        published = {(1,): 0.5, (2,): 0.5, (3,): 0.5}
        truth = {(1,): 0.5, (2,): 0.25, (3,): 0.1}
        # Errors: 0, 1.0, 4.0 → median 1.0.
        assert relative_error(published, truth) == pytest.approx(1.0)

    def test_empty_is_nan(self):
        assert math.isnan(relative_error({}, {}))

    def test_zero_truth_needs_floor(self):
        published = {(1,): 0.5}
        with pytest.raises(ValidationError):
            relative_error(published, {(1,): 0.0})
        value = relative_error(published, {(1,): 0.0}, floor=0.01)
        assert value == pytest.approx(50.0)


class TestEvaluateRelease:
    def test_exact_release_scores_perfectly(self, tiny_db):
        truth = top_k_itemsets(tiny_db, 4)
        release = exact_top_k(tiny_db, 4)
        metrics = evaluate_release(release, tiny_db, truth)
        assert metrics["fnr"] == 0.0
        assert metrics["relative_error"] == 0.0

    def test_junk_release_scores_fnr_one(self, tiny_db):
        truth = top_k_itemsets(tiny_db, 2)
        release = make_release([((3, 4), 0.9), ((2, 3), 0.8)], k=2)
        metrics = evaluate_release(release, tiny_db, truth)
        assert metrics["fnr"] == 1.0
        assert math.isnan(metrics["relative_error"])

    def test_re_computed_over_true_positives_only(self, tiny_db):
        truth = top_k_itemsets(tiny_db, 2)  # {0}:6/8, {1}:5/8
        release = make_release(
            [((0,), 0.75), ((4, 3), 0.999)], k=2
        )
        metrics = evaluate_release(release, tiny_db, truth)
        assert metrics["fnr"] == pytest.approx(0.5)
        # Only {0} counts toward RE; it is exact → 0, despite the junk
        # itemset having absurd error.
        assert metrics["relative_error"] == pytest.approx(0.0)
