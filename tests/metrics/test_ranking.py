"""Tests for ranking-quality metrics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.metrics.ranking import (
    jaccard_similarity,
    kendall_tau,
    precision_at,
    precision_curve,
    ranking_report,
)

TRUTH = [(0,), (1,), (2,), (0, 1), (3,)]


class TestPrecisionAt:
    def test_perfect(self):
        assert precision_at(TRUTH, TRUTH, 3) == 1.0

    def test_half_wrong(self):
        released = [(0,), (9,), (1,), (8,)]
        assert precision_at(released, TRUTH, 4) == 0.5

    def test_order_within_prefix_ignored(self):
        released = [(2,), (0,), (1,)]
        assert precision_at(released, TRUTH, 3) == 1.0

    def test_short_release_scored_on_content(self):
        released = [(0,), (1,)]
        assert precision_at(released, TRUTH, 5) == 1.0

    def test_empty_release_is_nan(self):
        assert math.isnan(precision_at([], TRUTH, 3))

    def test_validation(self):
        with pytest.raises(ValidationError):
            precision_at(TRUTH, TRUTH, 0)

    def test_curve(self):
        released = [(0,), (9,), (2,)]
        curve = precision_curve(released, TRUTH, [1, 3])
        assert curve[0] == (1, 1.0)
        assert curve[1][0] == 3
        assert curve[1][1] == pytest.approx(2 / 3)


class TestJaccard:
    def test_identical(self):
        assert jaccard_similarity(TRUTH, list(reversed(TRUTH))) == 1.0

    def test_disjoint(self):
        assert jaccard_similarity([(7,)], [(8,)]) == 0.0

    def test_partial(self):
        assert jaccard_similarity([(0,), (1,)], [(1,), (2,)]) == (
            pytest.approx(1 / 3)
        )

    def test_both_empty(self):
        assert jaccard_similarity([], []) == 1.0


class TestKendallTau:
    def test_identical_order(self):
        assert kendall_tau(TRUTH, TRUTH) == 1.0

    def test_reversed_order(self):
        assert kendall_tau(list(reversed(TRUTH)), TRUTH) == -1.0

    def test_partial_overlap_uses_common_only(self):
        released = [(0,), (9,), (1,)]       # (9,) not in truth
        assert kendall_tau(released, TRUTH) == 1.0

    def test_one_swap(self):
        released = [(1,), (0,), (2,)]
        # pairs: (1,0) discordant, (1,2) concordant, (0,2) concordant
        assert kendall_tau(released, TRUTH) == pytest.approx(1 / 3)

    def test_too_few_common_is_nan(self):
        assert math.isnan(kendall_tau([(0,)], TRUTH))
        assert math.isnan(kendall_tau([(9,), (8,)], TRUTH))


class TestRankingReport:
    def test_keys_and_consistency(self):
        released = [(0,), (2,), (1,)]
        report = ranking_report(released, TRUTH)
        assert set(report) == {
            "jaccard", "kendall_tau", "precision_curve", "common",
        }
        assert report["common"] == 3
        assert 0 <= report["jaccard"] <= 1

    def test_precision_points_clipped_to_truth(self):
        report = ranking_report(TRUTH, TRUTH, precision_points=(1, 500))
        assert [j for j, _ in report["precision_curve"]] == [1]


@st.composite
def two_rankings(draw):
    universe = [(i,) for i in range(8)]
    released = draw(
        st.lists(st.sampled_from(universe), max_size=8, unique=True)
    )
    truth = draw(
        st.lists(st.sampled_from(universe), max_size=8, unique=True)
    )
    return released, truth


class TestProperties:
    @given(two_rankings())
    @settings(max_examples=150, deadline=None)
    def test_ranges(self, rankings):
        released, truth = rankings
        assert 0.0 <= jaccard_similarity(released, truth) <= 1.0
        tau = kendall_tau(released, truth)
        assert math.isnan(tau) or -1.0 <= tau <= 1.0

    @given(two_rankings())
    @settings(max_examples=100, deadline=None)
    def test_jaccard_symmetric(self, rankings):
        released, truth = rankings
        assert jaccard_similarity(released, truth) == (
            jaccard_similarity(truth, released)
        )

    @given(two_rankings())
    @settings(max_examples=100, deadline=None)
    def test_tau_antisymmetric_under_reversal(self, rankings):
        released, truth = rankings
        tau = kendall_tau(released, truth)
        reversed_tau = kendall_tau(list(reversed(released)), truth)
        if not math.isnan(tau):
            assert reversed_tau == pytest.approx(-tau)
