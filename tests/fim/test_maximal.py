"""Tests for maximal frequent itemsets and the basis-covering check."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.transactions import TransactionDatabase
from repro.fim.fpgrowth import fpgrowth
from repro.fim.maximal import is_basis_for, maximal_itemsets, mine_maximal


class TestMaximalItemsets:
    def test_tiny(self, tiny_db):
        mined = fpgrowth(tiny_db, min_support=4)
        # Frequent: {0}:6 {1}:5 {2}:4 {0,1}:4 {0,2}:4 → maximal are the
        # two pairs.
        assert maximal_itemsets(mined) == [(0, 1), (0, 2)]

    def test_all_singletons(self):
        db = TransactionDatabase([[0], [1], [2]], num_items=3)
        mined = fpgrowth(db, 1)
        assert maximal_itemsets(mined) == [(0,), (1,), (2,)]

    def test_empty_input(self):
        assert maximal_itemsets({}) == []

    def test_mine_maximal_includes_supports(self, tiny_db):
        result = mine_maximal(tiny_db, min_support=4)
        assert result == [((0, 1), 4), ((0, 2), 4)]

    @given(
        transactions=st.lists(
            st.lists(st.integers(min_value=0, max_value=7), max_size=5),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_maximality_property(self, transactions):
        db = TransactionDatabase(transactions, num_items=8)
        mined = fpgrowth(db, min_support=2)
        maximal = set(maximal_itemsets(mined))
        # 1. Every maximal itemset is frequent.
        assert maximal <= set(mined)
        # 2. No maximal itemset has a frequent strict superset.
        for candidate in maximal:
            for other in mined:
                assert not set(candidate) < set(other)
        # 3. Every frequent itemset is covered by some maximal one.
        assert is_basis_for(sorted(maximal), sorted(mined))


class TestIsBasisFor:
    def test_positive(self):
        assert is_basis_for([(1, 2, 3)], [(1,), (2, 3), (1, 3)])

    def test_negative(self):
        assert not is_basis_for([(1, 2)], [(3,)])

    def test_empty_frequent_set(self):
        assert is_basis_for([(1,)], [])
