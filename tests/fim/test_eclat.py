"""Tests for the Eclat vertical miner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError
from repro.fim.apriori import apriori
from repro.fim.eclat import eclat
from repro.fim.fpgrowth import fpgrowth


class TestEclatBasic:
    def test_singletons(self, tiny_db):
        result = eclat(tiny_db, min_support=1, max_length=1)
        assert result[(0,)] == 6
        assert result[(1,)] == 5
        assert result[(4,)] == 2

    def test_pairs(self, tiny_db):
        result = eclat(tiny_db, min_support=3)
        assert result[(0, 1)] == 4
        assert result[(0, 2)] == 4
        assert result[(0, 1, 2)] == 3

    def test_min_support_filters(self, tiny_db):
        result = eclat(tiny_db, min_support=5)
        assert (0,) in result
        assert (1,) in result
        assert (0, 1) not in result  # support 4

    def test_max_length(self, tiny_db):
        result = eclat(tiny_db, min_support=1, max_length=2)
        assert all(len(itemset) <= 2 for itemset in result)
        # The size-2 results are identical with and without the cap.
        unlimited = eclat(tiny_db, min_support=1)
        for itemset, support in result.items():
            assert unlimited[itemset] == support

    def test_empty_database(self):
        database = TransactionDatabase([], num_items=3)
        assert eclat(database, min_support=1) == {}

    def test_no_frequent_items(self, tiny_db):
        assert eclat(tiny_db, min_support=100) == {}

    def test_validation(self, tiny_db):
        with pytest.raises(ValidationError):
            eclat(tiny_db, min_support=0)
        with pytest.raises(ValidationError):
            eclat(tiny_db, min_support=1, max_length=0)


class TestEclatEquivalence:
    """Eclat must agree exactly with Apriori and FP-Growth."""

    @pytest.mark.parametrize("floor", [1, 2, 3, 5])
    def test_tiny_db_all_floors(self, tiny_db, floor):
        assert (
            eclat(tiny_db, floor)
            == apriori(tiny_db, floor)
            == fpgrowth(tiny_db, floor)
        )

    def test_small_db(self, small_db):
        floor = max(1, int(0.1 * small_db.num_transactions))
        assert eclat(small_db, floor) == fpgrowth(small_db, floor)

    def test_small_db_with_length_cap(self, small_db):
        floor = max(1, int(0.05 * small_db.num_transactions))
        assert eclat(small_db, floor, max_length=2) == fpgrowth(
            small_db, floor, max_length=2
        )

    @given(
        transactions=st.lists(
            st.sets(
                st.integers(min_value=0, max_value=7),
                min_size=0,
                max_size=6,
            ).map(tuple),
            min_size=0,
            max_size=30,
        ),
        floor=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=120, deadline=None)
    def test_equivalence_property(self, transactions, floor):
        database = TransactionDatabase(transactions, num_items=8)
        assert eclat(database, floor) == apriori(database, floor)

    @given(
        transactions=st.lists(
            st.sets(
                st.integers(min_value=0, max_value=5),
                min_size=1,
                max_size=5,
            ).map(tuple),
            min_size=1,
            max_size=25,
        ),
        floor=st.integers(min_value=1, max_value=4),
        max_length=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_length_cap_property(self, transactions, floor, max_length):
        database = TransactionDatabase(transactions, num_items=6)
        assert eclat(database, floor, max_length) == fpgrowth(
            database, floor, max_length=max_length
        )


class TestEclatInvariants:
    @given(
        transactions=st.lists(
            st.sets(
                st.integers(min_value=0, max_value=6),
                min_size=0,
                max_size=5,
            ).map(tuple),
            min_size=0,
            max_size=20,
        ),
        floor=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_supports_are_exact(self, transactions, floor):
        database = TransactionDatabase(transactions, num_items=7)
        for itemset, support in eclat(database, floor).items():
            assert support == database.support(itemset)
            assert support >= floor

    @given(
        transactions=st.lists(
            st.sets(
                st.integers(min_value=0, max_value=6),
                min_size=0,
                max_size=5,
            ).map(tuple),
            min_size=0,
            max_size=20,
        ),
        floor=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_anti_monotone_closure(self, transactions, floor):
        # Every subset of a mined itemset is mined too (Apriori
        # property of the result family).
        database = TransactionDatabase(transactions, num_items=7)
        result = eclat(database, floor)
        for itemset in result:
            for drop in range(len(itemset)):
                subset = itemset[:drop] + itemset[drop + 1:]
                if subset:
                    assert subset in result
