"""Cross-validation of the three exact miners.

Apriori, FP-Growth, and the best-first top-k miner must agree with each
other and with brute-force counting on every database — this is the
load-bearing guarantee behind all ground-truth metrics.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError
from repro.fim.apriori import apriori, frequent_itemsets_sorted
from repro.fim.fpgrowth import fpgrowth
from repro.fim.topk import top_k_itemsets

from tests.conftest import brute_force_supports, brute_force_topk

transactions_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=9), max_size=6),
    min_size=1,
    max_size=30,
)


class TestAprioriBasics:
    def test_tiny_exact(self, tiny_db):
        mined = apriori(tiny_db, min_support=4)
        assert mined == {
            (0,): 6, (1,): 5, (2,): 4, (0, 1): 4, (0, 2): 4,
        }

    def test_max_length(self, tiny_db):
        mined = apriori(tiny_db, min_support=3, max_length=1)
        assert all(len(itemset) == 1 for itemset in mined)

    def test_min_support_one_required(self, tiny_db):
        with pytest.raises(ValidationError):
            apriori(tiny_db, min_support=0)

    def test_threshold_above_everything(self, tiny_db):
        assert apriori(tiny_db, min_support=100) == {}

    def test_sorted_helper(self, tiny_db):
        ranked = frequent_itemsets_sorted(apriori(tiny_db, 4))
        assert ranked[0] == ((0,), 6)
        supports = [support for _, support in ranked]
        assert supports == sorted(supports, reverse=True)


class TestFPGrowthBasics:
    def test_tiny_exact(self, tiny_db):
        assert fpgrowth(tiny_db, min_support=4) == apriori(tiny_db, 4)

    def test_max_length(self, tiny_db):
        mined = fpgrowth(tiny_db, min_support=2, max_length=2)
        assert all(len(itemset) <= 2 for itemset in mined)
        assert mined == apriori(tiny_db, 2, max_length=2)

    def test_validation(self, tiny_db):
        with pytest.raises(ValidationError):
            fpgrowth(tiny_db, min_support=0)
        with pytest.raises(ValidationError):
            fpgrowth(tiny_db, min_support=1, max_length=0)

    def test_single_path_shortcut(self):
        # A chain-shaped database exercises the single-path branch.
        db = TransactionDatabase(
            [[0, 1, 2, 3]] * 5 + [[0, 1, 2]] * 3 + [[0, 1]] * 2 + [[0]],
            num_items=4,
        )
        assert fpgrowth(db, 2) == apriori(db, 2)


class TestMinersAgree:
    @given(transactions=transactions_strategy)
    @settings(max_examples=50, deadline=None)
    def test_apriori_equals_fpgrowth(self, transactions):
        db = TransactionDatabase(transactions, num_items=10)
        for threshold in (1, 2, 4):
            assert apriori(db, threshold) == fpgrowth(db, threshold)

    @given(transactions=transactions_strategy)
    @settings(max_examples=40, deadline=None)
    def test_apriori_matches_brute_force(self, transactions):
        db = TransactionDatabase(transactions, num_items=10)
        mined = apriori(db, min_support=2)
        brute = {
            itemset: support
            for itemset, support in brute_force_supports(
                db, max_size=6
            ).items()
            if support >= 2
        }
        # brute_force_supports caps at size 6; transactions have ≤ 6
        # distinct items so this is complete.
        assert mined == brute

    @given(transactions=transactions_strategy)
    @settings(max_examples=40, deadline=None)
    def test_downward_closure(self, transactions):
        db = TransactionDatabase(transactions, num_items=10)
        mined = fpgrowth(db, min_support=2)
        for itemset in mined:
            for drop in range(len(itemset)):
                subset = itemset[:drop] + itemset[drop + 1:]
                if subset:
                    assert subset in mined
                    assert mined[subset] >= mined[itemset]


class TestTopK:
    def test_tiny_topk(self, tiny_db):
        top = top_k_itemsets(tiny_db, 3)
        assert top == [((0,), 6), ((1,), 5), ((0, 1), 4)]

    def test_max_length_restriction(self, tiny_db):
        top = top_k_itemsets(tiny_db, 4, max_length=1)
        assert [itemset for itemset, _ in top] == [
            (0,), (1,), (2,), (3,),
        ]

    def test_k_larger_than_universe(self):
        db = TransactionDatabase([[0], [0], [1]], num_items=2)
        top = top_k_itemsets(db, 50)
        # Only itemsets with positive support are returned; the pair
        # {0,1} never co-occurs.
        assert top == [((0,), 2), ((1,), 1)]

    def test_validation(self, tiny_db):
        with pytest.raises(ValidationError):
            top_k_itemsets(tiny_db, 0)

    def test_empty_database(self):
        db = TransactionDatabase([], num_items=4)
        assert top_k_itemsets(db, 3) == []

    @given(
        transactions=transactions_strategy,
        k=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_brute_force(self, transactions, k):
        db = TransactionDatabase(transactions, num_items=10)
        fast = top_k_itemsets(db, k)
        brute = brute_force_topk(db, k, max_size=6)
        assert fast == brute

    def test_quest_database_consistency(self, small_db):
        top = top_k_itemsets(small_db, 40)
        assert len(top) == 40
        supports = [support for _, support in top]
        assert supports == sorted(supports, reverse=True)
        # Spot-check supports against direct counting.
        for itemset, support in top[:10]:
            assert small_db.support(itemset) == support
