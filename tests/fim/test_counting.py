"""Tests for the bitmap and bin-counting kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError
from repro.fim.counting import (
    ItemBitmaps,
    bin_counts_for_items,
    naive_superset_sum,
    superset_sum_transform,
)


class TestItemBitmaps:
    def test_support_matches_database(self, tiny_db):
        bitmaps = ItemBitmaps(tiny_db, [0, 1, 2, 3, 4])
        for itemset in [(0,), (0, 1), (0, 1, 2), (0, 4)]:
            assert bitmaps.support(itemset) == tiny_db.support(itemset)

    def test_empty_conjunction_is_n(self, tiny_db):
        bitmaps = ItemBitmaps(tiny_db, [0, 1])
        assert bitmaps.support([]) == 8

    def test_duplicate_items_rejected(self, tiny_db):
        with pytest.raises(ValidationError):
            ItemBitmaps(tiny_db, [0, 0])

    def test_item_outside_pool(self, tiny_db):
        bitmaps = ItemBitmaps(tiny_db, [0, 1])
        with pytest.raises(ValidationError):
            bitmaps.support([3])

    def test_pairwise_supports(self, tiny_db):
        bitmaps = ItemBitmaps(tiny_db, [0, 1, 2, 3])
        pairwise = bitmaps.pairwise_supports()
        assert pairwise[(0, 1)] == tiny_db.support([0, 1])
        assert pairwise[(2, 3)] == tiny_db.support([2, 3])
        assert len(pairwise) == 6

    def test_extension_supports(self, tiny_db):
        bitmaps = ItemBitmaps(tiny_db, [0, 1, 2, 3, 4])
        base = bitmaps.conjunction_row([0])
        extensions = bitmaps.extension_supports(base, [1, 2, 3, 4])
        assert extensions.tolist() == [
            tiny_db.support([0, item]) for item in (1, 2, 3, 4)
        ]

    def test_empty_pool(self, tiny_db):
        bitmaps = ItemBitmaps(tiny_db, [])
        assert bitmaps.pairwise_supports() == {}


class TestBinCounts:
    def test_partition_property(self, tiny_db):
        bins = bin_counts_for_items(tiny_db, [0, 1, 2])
        assert bins.sum() == tiny_db.num_transactions

    def test_bin_semantics(self, tiny_db):
        # Bit j of the mask ↔ basis[j]; bins count exact intersections.
        bins = bin_counts_for_items(tiny_db, [0, 1])
        # t ∩ {0,1} = {}: transactions (3,4)=... rows: {0,2},{0},... let
        # us just recompute naively.
        expected = [0, 0, 0, 0]
        for transaction in tiny_db:
            mask = (1 if 0 in transaction else 0) | (
                2 if 1 in transaction else 0
            )
            expected[mask] += 1
        assert bins.tolist() == expected

    def test_superset_sum_gives_supports(self, tiny_db):
        basis = (0, 1, 2)
        bins = bin_counts_for_items(tiny_db, basis)
        sums = superset_sum_transform(bins)
        # mask 0b011 = {0,1}; support from bins must equal exact count.
        assert sums[0b011] == tiny_db.support([0, 1])
        assert sums[0b111] == tiny_db.support([0, 1, 2])
        assert sums[0] == tiny_db.num_transactions

    def test_duplicate_basis_items_rejected(self, tiny_db):
        with pytest.raises(ValidationError):
            bin_counts_for_items(tiny_db, [0, 0])

    def test_oversized_basis_rejected(self, tiny_db):
        with pytest.raises(ValidationError):
            bin_counts_for_items(tiny_db, list(range(26)) )


class TestSupersetSumTransform:
    def test_requires_power_of_two(self):
        with pytest.raises(ValidationError):
            superset_sum_transform(np.zeros(5))

    def test_single_bin(self):
        assert superset_sum_transform(np.array([3.0])).tolist() == [3.0]

    @given(
        values=st.lists(
            st.floats(min_value=-100, max_value=100), min_size=8,
            max_size=8,
        )
    )
    @settings(max_examples=50)
    def test_matches_naive_oracle(self, values):
        bins = np.array(values)
        fast = superset_sum_transform(bins)
        for mask in range(8):
            assert fast[mask] == pytest.approx(
                naive_superset_sum(bins, mask), rel=1e-9, abs=1e-9
            )

    @given(length=st.integers(min_value=0, max_value=6))
    @settings(max_examples=20)
    def test_random_sizes_match_naive(self, length):
        rng = np.random.default_rng(length)
        bins = rng.normal(size=1 << length)
        fast = superset_sum_transform(bins)
        for mask in range(1 << length):
            assert fast[mask] == pytest.approx(
                naive_superset_sum(bins, mask), rel=1e-9, abs=1e-9
            )
