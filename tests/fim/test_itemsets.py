"""Tests for itemset utilities."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.fim.itemsets import (
    all_nonempty_subsets,
    apriori_join,
    canonical_itemset,
    format_itemset,
    has_all_subsets,
    itemset_to_mask,
    mask_to_itemset,
    subsets_of_size,
)


class TestSubsets:
    def test_all_nonempty_subsets_count(self):
        subsets = list(all_nonempty_subsets((1, 2, 3)))
        assert len(subsets) == 7

    def test_ordering_by_size_then_lex(self):
        subsets = list(all_nonempty_subsets((1, 2)))
        assert subsets == [(1,), (2,), (1, 2)]

    def test_subsets_of_size(self):
        assert list(subsets_of_size((1, 2, 3), 2)) == [
            (1, 2), (1, 3), (2, 3),
        ]

    def test_subsets_of_size_zero(self):
        assert list(subsets_of_size((1, 2), 0)) == [()]

    def test_negative_size_rejected(self):
        with pytest.raises(ValidationError):
            list(subsets_of_size((1,), -1))


class TestMaskEncoding:
    def test_roundtrip_all_masks(self):
        basis = (3, 7, 11)
        for mask in range(8):
            itemset = mask_to_itemset(mask, basis)
            assert itemset_to_mask(itemset, basis) == mask

    def test_item_not_in_basis(self):
        with pytest.raises(ValidationError):
            itemset_to_mask((5,), (1, 2, 3))

    def test_mask_out_of_range(self):
        with pytest.raises(ValidationError):
            mask_to_itemset(8, (1, 2, 3))

    def test_empty_itemset_is_mask_zero(self):
        assert itemset_to_mask((), (1, 2)) == 0
        assert mask_to_itemset(0, (1, 2)) == ()

    @given(
        basis_items=st.sets(
            st.integers(min_value=0, max_value=100), min_size=1,
            max_size=8,
        ),
        mask=st.integers(min_value=0),
    )
    @settings(max_examples=60)
    def test_roundtrip_property(self, basis_items, mask):
        basis = tuple(sorted(basis_items))
        mask %= 1 << len(basis)
        assert itemset_to_mask(mask_to_itemset(mask, basis), basis) == mask


class TestAprioriJoin:
    def test_joins_shared_prefix(self):
        level = [(1, 2), (1, 3), (2, 3)]
        assert apriori_join(level) == [(1, 2, 3)]

    def test_prunes_missing_subset(self):
        # (1,2,3) needs (2,3) to be frequent; it is not.
        level = [(1, 2), (1, 3)]
        assert apriori_join(level) == []

    def test_singleton_level(self):
        level = [(1,), (2,), (5,)]
        assert apriori_join(level) == [(1, 2), (1, 5), (2, 5)]

    def test_empty_level(self):
        assert apriori_join([]) == []

    def test_mixed_sizes_rejected(self):
        with pytest.raises(ValidationError):
            apriori_join([(1,), (1, 2)])

    def test_has_all_subsets(self):
        frequent = {(1, 2), (1, 3), (2, 3)}
        assert has_all_subsets((1, 2, 3), frequent)
        assert not has_all_subsets((1, 2, 4), frequent)


class TestFormatting:
    def test_plain(self):
        assert format_itemset((3, 1)) == "{1, 3}"

    def test_with_labels(self):
        assert format_itemset((0, 1), ["milk", "bread"]) == "{milk, bread}"

    def test_canonicalization(self):
        assert canonical_itemset((5, 5, 2)) == (2, 5)
