"""Tests for the trial runner and sweeps."""

import math

import pytest

from repro.errors import ValidationError
from repro.experiments.runner import (
    MethodSpec,
    pb_spec,
    run_trials,
    sweep,
    tf_spec,
)

HUGE_EPSILON = 1e8


class TestMethodSpecs:
    def test_pb_label(self):
        assert pb_spec(100).label == "PB, k = 100"

    def test_tf_label_and_params(self):
        spec = tf_spec(50, 2)
        assert spec.label == "TF, k = 50, m = 2"
        assert spec.params["m"] == 2

    def test_unknown_kind(self, dense_db):
        spec = MethodSpec(kind="nope", label="x")
        with pytest.raises(ValidationError):
            spec.run(dense_db, 5, 1.0, None)


class TestRunTrials:
    def test_trial_count(self, dense_db):
        fnrs, res = run_trials(
            dense_db, pb_spec(8), 8, 1.0, trials=4, seed=0
        )
        assert len(fnrs) == 4 and len(res) == 4

    def test_metrics_in_range(self, dense_db):
        fnrs, _ = run_trials(
            dense_db, pb_spec(8), 8, 0.5, trials=3, seed=0
        )
        assert all(0.0 <= fnr <= 1.0 for fnr in fnrs)

    def test_huge_budget_near_perfect_fnr(self, dense_db):
        # dense_db has exact support ties at the k = 10 boundary, so a
        # zero-noise release may legitimately swap one tied itemset.
        fnrs, res = run_trials(
            dense_db, pb_spec(10), 10, HUGE_EPSILON, trials=2, seed=0
        )
        assert all(fnr <= 0.1 for fnr in fnrs)
        assert all(value < 1e-3 for value in res)

    def test_deterministic_under_seed(self, dense_db):
        first = run_trials(dense_db, pb_spec(8), 8, 0.3, 3, seed=5)
        second = run_trials(dense_db, pb_spec(8), 8, 0.3, 3, seed=5)
        assert first == second

    def test_trials_validation(self, dense_db):
        with pytest.raises(ValidationError):
            run_trials(dense_db, pb_spec(5), 5, 1.0, trials=0, seed=0)


class TestSweep:
    def test_series_shape(self, dense_db):
        series = sweep(
            dense_db, pb_spec(8), 8, [0.5, 1.0], trials=2, seed=0
        )
        assert series.epsilons == [0.5, 1.0]
        assert len(series.fnr_mean) == 2
        assert len(series.re_stderr) == 2
        assert series.label == "PB, k = 8"

    def test_fnr_decreases_with_epsilon_on_average(self, dense_db):
        series = sweep(
            dense_db, pb_spec(10), 10, [0.05, HUGE_EPSILON], trials=3,
            seed=1,
        )
        assert series.fnr_mean[-1] <= series.fnr_mean[0]

    def test_as_rows(self, dense_db):
        series = sweep(dense_db, pb_spec(5), 5, [1.0], trials=2, seed=0)
        rows = series.as_rows()
        assert len(rows) == 1
        assert rows[0][0] == "PB, k = 5"

    def test_tf_series_runs(self, dense_db):
        series = sweep(
            dense_db, tf_spec(8, 2), 8, [1.0], trials=2, seed=0
        )
        assert len(series.fnr_mean) == 1
