"""Tests for CSV / JSON export of experiment results."""

import csv
import io
import json

import pytest

from repro.core.privbasis import privbasis
from repro.experiments.export import (
    FIGURE_FIELDS,
    RELEASE_FIELDS,
    release_to_csv,
    series_to_csv,
    series_to_json,
    write_text,
)
from repro.experiments.runner import SeriesResult


@pytest.fixture()
def series():
    return [
        SeriesResult(
            label="PB, k = 50",
            k=50,
            epsilons=[0.1, 1.0],
            fnr_mean=[0.5, 0.1],
            fnr_stderr=[0.01, 0.0],
            re_mean=[0.2, 0.05],
            re_stderr=[0.0, 0.0],
        ),
        SeriesResult(
            label="TF, k = 50, m = 2",
            k=50,
            epsilons=[0.1, 1.0],
            fnr_mean=[0.9, 0.6],
            fnr_stderr=[0.0, 0.0],
            re_mean=[0.4, 0.2],
            re_stderr=[0.0, 0.0],
        ),
    ]


class TestSeriesCsv:
    def test_header_and_row_count(self, series):
        text = series_to_csv(series)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == list(FIGURE_FIELDS)
        assert len(rows) == 1 + 4  # 2 series x 2 epsilons

    def test_values_roundtrip(self, series):
        rows = list(csv.DictReader(io.StringIO(series_to_csv(series))))
        first = rows[0]
        assert first["label"] == "PB, k = 50"
        assert float(first["epsilon"]) == 0.1
        assert float(first["fnr_mean"]) == 0.5

    def test_empty_series_list(self):
        text = series_to_csv([])
        assert text.strip() == ",".join(FIGURE_FIELDS)


class TestSeriesJson:
    def test_parses_and_matches(self, series):
        payload = json.loads(series_to_json(series))
        assert len(payload) == 2
        assert payload[0]["label"] == "PB, k = 50"
        assert payload[0]["epsilons"] == [0.1, 1.0]
        assert payload[1]["fnr_mean"] == [0.9, 0.6]


class TestReleaseCsv:
    def test_release_rows(self, dense_db):
        release = privbasis(dense_db, k=5, epsilon=10.0, rng=1)
        rows = list(
            csv.DictReader(io.StringIO(release_to_csv(release)))
        )
        assert len(rows) == len(release.itemsets)
        assert list(rows[0]) == list(RELEASE_FIELDS)
        # Itemsets serialized as space-separated ids, rank ascending.
        first = rows[0]
        assert first["rank"] == "1"
        items = tuple(int(token) for token in first["itemset"].split())
        assert items == release.itemsets[0].itemset
        assert int(first["size"]) == len(items)

    def test_frequencies_match(self, dense_db):
        release = privbasis(dense_db, k=5, epsilon=10.0, rng=1)
        rows = list(
            csv.DictReader(io.StringIO(release_to_csv(release)))
        )
        for row, entry in zip(rows, release.itemsets):
            assert float(row["noisy_frequency"]) == pytest.approx(
                entry.noisy_frequency, abs=1e-6
            )


class TestWriteText:
    def test_writes_file(self, tmp_path):
        path = tmp_path / "out.csv"
        write_text(path, "a,b\n1,2\n")
        assert path.read_text() == "a,b\n1,2\n"
