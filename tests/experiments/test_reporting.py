"""Tests for text rendering of results."""

import math

import pytest

from repro.experiments.reporting import (
    render_figure_panel,
    render_table,
)
from repro.experiments.runner import SeriesResult


def make_series(label="PB, k = 5"):
    return SeriesResult(
        label=label,
        k=5,
        epsilons=[0.5, 1.0],
        fnr_mean=[0.25, 0.1],
        fnr_stderr=[0.02, 0.01],
        re_mean=[0.3, float("nan")],
        re_stderr=[0.05, 0.0],
    )


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            ["name", "value"], [["alpha", 1.5], ["b", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in lines[3]

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text

    def test_float_formatting(self):
        text = render_table(["x"], [[1.23456789e8]])
        assert "1.23e+08" in text

    def test_nan_rendered_as_na(self):
        text = render_table(["x"], [[float("nan")]])
        assert "n/a" in text


class TestRenderPanel:
    def test_fnr_panel(self):
        text = render_figure_panel([make_series()], "fnr", "Panel A")
        assert "Panel A" in text
        assert "0.250±0.020" in text
        assert "PB, k = 5" in text

    def test_re_panel_with_nan(self):
        text = render_figure_panel([make_series()], "relative_error",
                                   "Panel B")
        assert "0.300±0.050" in text
        assert "n/a" in text

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            render_figure_panel([make_series()], "accuracy", "t")

    def test_multiple_series_columns(self):
        text = render_figure_panel(
            [make_series("PB"), make_series("TF")], "fnr", "t"
        )
        header = text.splitlines()[1]
        assert "PB" in header and "TF" in header
