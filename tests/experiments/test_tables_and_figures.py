"""Smoke tests for table/figure regeneration (small scales)."""

import pytest

from repro.datasets import registry
from repro.experiments.figures import run_figure
from repro.experiments.tables import (
    render_table2a,
    render_table2b,
    table2a,
    table2b,
)


@pytest.fixture(scope="module", autouse=True)
def small_datasets():
    """Shrink all registry datasets so harness smoke tests are fast."""
    registry.clear_caches()
    original = dict(registry._GENERATORS)
    registry._GENERATORS = {
        name: (generator, min(quick, 0.04))
        for name, (generator, quick) in original.items()
    }
    yield
    registry._GENERATORS = original
    registry.clear_caches()


class TestTables:
    def test_table2a_rows(self):
        rows = table2a()
        assert [row.name for row in rows] == [
            "retail", "mushroom", "pumsb_star", "kosarak", "aol",
        ]
        for row in rows:
            assert row.num_transactions > 0
            assert row.lam >= 1

    def test_table2a_render(self):
        text = render_table2a()
        assert "mushroom" in text
        assert "lambda" in text

    def test_table2b_rows(self):
        rows = table2b()
        assert len(rows) == 5
        # At 4% scale every dataset is deeply degenerate for TF.
        assert all(row.is_degenerate for row in rows)

    def test_table2b_render(self):
        text = render_table2b()
        assert "gamma*N" in text
        assert "yes" in text


class TestFigureHarness:
    def test_fig1_quick_smoke(self):
        result = run_figure("fig1", profile="quick", trials=1, seed=1)
        assert result.dataset == "mushroom"
        assert len(result.series) == 4  # PB ×2 + TF ×2
        rendered = result.render()
        assert "False Negative Rate" in rendered
        assert "Relative Error" in rendered
        for series in result.series:
            for value in series.fnr_mean:
                assert 0.0 <= value <= 1.0
