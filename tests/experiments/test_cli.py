"""Tests for the experiment CLI (argument handling and artefact
selection; heavy sweeps are covered by the benchmarks)."""

import pytest

from repro.experiments.cli import main


class TestCliArguments:
    def test_unknown_artefact_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig99"])
        assert excinfo.value.code != 0

    def test_help_lists_artefacts(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for artefact in ("table2a", "table2b", "fig1", "fig5", "datasets"):
            assert artefact in out

    def test_bad_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig1", "--profile", "huge"])


class TestCliExecution:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("retail", "mushroom", "pumsb_star", "kosarak", "aol"):
            assert name in out
        assert "REPRO_FULL_SCALE" in out

    def test_table2b_runs(self, capsys):
        assert main(["table2b"]) == 0
        out = capsys.readouterr().out
        assert "Table 2(b)" in out
        assert "gamma*N" in out
        assert "done in" in out

    def test_figure_with_plot_flag(self, capsys):
        # One-trial quick run of the cheapest figure, with charts.
        assert main(["fig1", "--trials", "1", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "False Negative Rate" in out
        assert "FNR vs epsilon" in out       # the ASCII chart title
        assert "epsilon" in out
        # Legend glyphs present.
        assert "PB, k = 50" in out

    def test_compare_subcommand(self, capsys):
        assert main([
            "compare", "--dataset", "mushroom", "--k", "20",
            "--epsilon", "1.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "PrivBasis" in out
        assert "TF" in out
        assert "FNR" in out
        assert "top 10 by PrivBasis" in out
