"""Tests for experiment configuration."""

import pytest

from repro.errors import ValidationError
from repro.experiments.config import (
    FIGURES,
    TABLE2A_KS,
    TABLE2B_RUNS,
    active_profile,
    epsilons_for,
    figure_config,
)


class TestFigureConfigs:
    def test_all_five_figures_defined(self):
        assert sorted(FIGURES) == ["fig1", "fig2", "fig3", "fig4", "fig5"]

    def test_paper_parameters(self):
        fig1 = figure_config("fig1")
        assert fig1.dataset == "mushroom"
        assert [run.k for run in fig1.runs] == [50, 100]
        assert [run.tf_m for run in fig1.runs] == [4, 2]
        assert fig1.epsilons[0] == 0.1
        assert fig1.epsilons[-1] == 1.0

    def test_fig4_four_k_values(self):
        fig4 = figure_config("fig4")
        assert [run.k for run in fig4.runs] == [100, 200, 300, 400]

    def test_fig5_epsilon_range(self):
        fig5 = figure_config("fig5")
        assert fig5.epsilons[0] == 0.5

    def test_trials_default_three(self):
        assert all(config.trials == 3 for config in FIGURES.values())

    def test_unknown_figure(self):
        with pytest.raises(ValidationError):
            figure_config("fig9")


class TestProfiles:
    def test_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_PROFILE", raising=False)
        assert active_profile() == "quick"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "paper")
        assert active_profile() == "paper"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "paper")
        assert active_profile("quick") == "quick"

    def test_invalid_profile(self):
        with pytest.raises(ValidationError):
            active_profile("fast")

    def test_quick_epsilons_subset_of_range(self):
        config = figure_config("fig1")
        quick = epsilons_for(config, "quick")
        assert len(quick) <= 3
        assert quick[0] == config.epsilons[0]
        assert quick[-1] == config.epsilons[-1]

    def test_paper_epsilons_full_grid(self):
        config = figure_config("fig1")
        assert epsilons_for(config, "paper") == config.epsilons


class TestTableConfigs:
    def test_table2a_covers_all_datasets(self):
        assert sorted(TABLE2A_KS) == sorted(
            ["retail", "mushroom", "pumsb_star", "kosarak", "aol"]
        )

    def test_table2b_matches_paper_m_values(self):
        assert TABLE2B_RUNS["retail"] == (100, 1)
        assert TABLE2B_RUNS["mushroom"] == (100, 2)
        assert TABLE2B_RUNS["pumsb_star"] == (200, 3)
        assert TABLE2B_RUNS["kosarak"] == (200, 2)
        assert TABLE2B_RUNS["aol"] == (200, 1)
