"""Tests for the ASCII plotting helper."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.experiments.plotting import (
    SERIES_GLYPHS,
    ascii_plot,
    plot_figure_panel,
)
from repro.experiments.runner import SeriesResult


def simple_series(label="s", xs=(0.1, 0.5, 1.0), ys=(1.0, 0.5, 0.0)):
    return (label, list(xs), list(ys))


class TestAsciiPlot:
    def test_contains_title_and_legend(self):
        chart = ascii_plot([simple_series("mine")], title="hello")
        assert chart.splitlines()[0] == "hello"
        assert "o mine" in chart

    def test_extreme_points_rendered(self):
        chart = ascii_plot(
            [simple_series()], width=20, height=8, y_max=1.0
        )
        lines = chart.splitlines()
        # First plot row (y = max) contains the y=1.0 point at x-min,
        # last plot row (y = 0) the y=0 point at x-max.
        assert "o" in lines[0]
        plot_rows = [line for line in lines if "|" in line]
        assert "o" in plot_rows[0]
        assert "o" in plot_rows[-1]

    def test_multiple_series_distinct_glyphs(self):
        chart = ascii_plot(
            [simple_series("a"), simple_series("b", ys=(0.0, 0.5, 1.0))]
        )
        assert "o a" in chart
        assert "x b" in chart
        assert "x" in chart.replace("x b", "")

    def test_nan_points_skipped(self):
        chart = ascii_plot(
            [("s", [0.1, 0.5, 1.0], [math.nan, 0.5, 0.2])]
        )
        assert "o" in chart

    def test_all_zero_series(self):
        chart = ascii_plot([("flat", [0.1, 1.0], [0.0, 0.0])])
        assert "o" in chart

    def test_single_point(self):
        chart = ascii_plot([("pt", [0.5], [0.3])])
        assert "o" in chart

    def test_y_max_clamps(self):
        chart = ascii_plot(
            [("s", [0.1, 1.0], [5.0, 0.1])], y_max=1.0, height=6
        )
        lines = [line for line in chart.splitlines() if "|" in line]
        assert "o" in lines[0]  # 5.0 clamped to the top row

    def test_aligned_grid(self):
        chart = ascii_plot(
            [simple_series()], width=30, height=8, y_max=1.0
        )
        rows = [line for line in chart.splitlines() if "|" in line]
        assert len({len(row) for row in rows}) == 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            ascii_plot([])
        with pytest.raises(ValidationError):
            ascii_plot([simple_series()], width=4)
        with pytest.raises(ValidationError):
            ascii_plot([("s", [1.0], [1.0, 2.0])])
        with pytest.raises(ValidationError):
            ascii_plot([("s", [], [])])
        too_many = [
            simple_series(str(index))
            for index in range(len(SERIES_GLYPHS) + 1)
        ]
        with pytest.raises(ValidationError):
            ascii_plot(too_many)

    @given(
        ys=st.lists(
            st.floats(
                min_value=0.0, max_value=10.0, allow_nan=False
            ),
            min_size=1,
            max_size=12,
        ),
        width=st.integers(min_value=16, max_value=80),
        height=st.integers(min_value=4, max_value=30),
    )
    @settings(max_examples=80, deadline=None)
    def test_never_crashes_and_stays_rectangular(self, ys, width, height):
        xs = [0.1 * (index + 1) for index in range(len(ys))]
        chart = ascii_plot(
            [("s", xs, ys)], width=width, height=height
        )
        rows = [line for line in chart.splitlines() if "|" in line]
        assert len(rows) == height
        assert len({len(row) for row in rows}) == 1


class TestPlotFigurePanel:
    def _series(self, label, fnr):
        return SeriesResult(
            label=label,
            k=50,
            epsilons=[0.1, 0.5, 1.0],
            fnr_mean=fnr,
            fnr_stderr=[0.0] * 3,
            re_mean=[0.1, 0.05, 0.01],
            re_stderr=[0.0] * 3,
        )

    def test_pb_drawn_last(self):
        pb = self._series("PB, k = 50", [0.2, 0.1, 0.0])
        tf = self._series("TF, k = 50, m = 2", [0.9, 0.7, 0.6])
        chart = plot_figure_panel([pb, tf], "fnr", "t")
        legend = chart.splitlines()[-1]
        # TF first (glyph o), PB second (glyph x) → PB wins collisions.
        assert legend.index("TF") < legend.index("PB")

    def test_metric_validation(self):
        pb = self._series("PB", [0.1, 0.1, 0.1])
        with pytest.raises(ValidationError):
            plot_figure_panel([pb], "accuracy", "t")

    def test_relative_error_metric(self):
        pb = self._series("PB", [0.1, 0.1, 0.1])
        chart = plot_figure_panel([pb], "relative_error", "re panel")
        assert "re panel" in chart
