"""Tests for the undirected graph structure."""

import pytest

from repro.errors import ValidationError
from repro.graph.adjacency import UndirectedGraph


class TestConstruction:
    def test_empty(self):
        graph = UndirectedGraph()
        assert len(graph) == 0
        assert graph.nodes == []
        assert graph.edges == []

    def test_nodes_and_edges(self):
        graph = UndirectedGraph(nodes=[5], edges=[(1, 2), (2, 3)])
        assert graph.nodes == [1, 2, 3, 5]
        assert graph.edges == [(1, 2), (2, 3)]

    def test_edge_adds_missing_nodes(self):
        graph = UndirectedGraph(edges=[(7, 9)])
        assert 7 in graph and 9 in graph

    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError):
            UndirectedGraph(edges=[(1, 1)])

    def test_duplicate_edges_collapse(self):
        graph = UndirectedGraph(edges=[(1, 2), (2, 1), (1, 2)])
        assert graph.edges == [(1, 2)]
        assert graph.degree(1) == 1


class TestQueries:
    def test_neighbors(self):
        graph = UndirectedGraph(edges=[(1, 2), (1, 3)])
        assert graph.neighbors(1) == frozenset({2, 3})
        assert graph.neighbors(2) == frozenset({1})

    def test_neighbors_of_absent_node(self):
        assert UndirectedGraph().neighbors(99) == frozenset()

    def test_has_edge_symmetry(self):
        graph = UndirectedGraph(edges=[(1, 2)])
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 1)
        assert not graph.has_edge(1, 3)

    def test_degree(self):
        graph = UndirectedGraph(edges=[(0, 1), (0, 2), (0, 3)])
        assert graph.degree(0) == 3
        assert graph.degree(9) == 0

    def test_iteration_sorted(self):
        graph = UndirectedGraph(nodes=[3, 1, 2])
        assert list(graph) == [1, 2, 3]

    def test_from_pairs_with_isolated_nodes(self):
        graph = UndirectedGraph.from_pairs([(1, 2)], nodes=[5, 6])
        assert graph.nodes == [1, 2, 5, 6]
        assert graph.degree(5) == 0
