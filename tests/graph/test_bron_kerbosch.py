"""Tests for Bron–Kerbosch maximal cliques, with networkx as oracle."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.adjacency import UndirectedGraph
from repro.graph.bron_kerbosch import (
    is_clique,
    is_maximal_clique,
    maximal_cliques,
    maximal_cliques_of_size_at_least,
)


def random_edge_set(node_count, edge_indices):
    """Map integers to edges of the complete graph on node_count nodes."""
    all_edges = [
        (i, j)
        for i in range(node_count)
        for j in range(i + 1, node_count)
    ]
    return [all_edges[index % len(all_edges)] for index in edge_indices]


class TestKnownGraphs:
    def test_empty_graph(self):
        assert maximal_cliques(UndirectedGraph()) == []

    def test_single_node(self):
        graph = UndirectedGraph(nodes=[3])
        assert maximal_cliques(graph) == [(3,)]

    def test_triangle(self):
        graph = UndirectedGraph(edges=[(0, 1), (1, 2), (0, 2)])
        assert maximal_cliques(graph) == [(0, 1, 2)]

    def test_path_graph(self):
        graph = UndirectedGraph(edges=[(0, 1), (1, 2), (2, 3)])
        assert maximal_cliques(graph) == [(0, 1), (1, 2), (2, 3)]

    def test_triangle_with_pendant(self):
        graph = UndirectedGraph(
            edges=[(0, 1), (1, 2), (0, 2), (2, 3)]
        )
        assert maximal_cliques(graph) == [(0, 1, 2), (2, 3)]

    def test_isolated_node_is_singleton_clique(self):
        graph = UndirectedGraph(nodes=[9], edges=[(0, 1)])
        assert maximal_cliques(graph) == [(0, 1), (9,)]

    def test_two_overlapping_triangles(self):
        # The paper's over-approximation example: pairs {1,2},{2,3},
        # {1,3},{3,4},{2,4} → cliques {1,2,3} and {2,3,4}.
        graph = UndirectedGraph(
            edges=[(1, 2), (2, 3), (1, 3), (3, 4), (2, 4)]
        )
        assert maximal_cliques(graph) == [(1, 2, 3), (2, 3, 4)]

    def test_complete_graph(self):
        nodes = range(6)
        edges = [(i, j) for i in nodes for j in nodes if i < j]
        graph = UndirectedGraph(edges=edges)
        assert maximal_cliques(graph) == [tuple(nodes)]

    def test_size_filter(self):
        graph = UndirectedGraph(nodes=[9], edges=[(0, 1), (1, 2), (0, 2)])
        assert maximal_cliques_of_size_at_least(graph, 2) == [(0, 1, 2)]


class TestPredicates:
    def test_is_clique(self):
        graph = UndirectedGraph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
        assert is_clique(graph, {0, 1, 2})
        assert not is_clique(graph, {0, 1, 3})
        assert is_clique(graph, {3})

    def test_is_maximal_clique(self):
        graph = UndirectedGraph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
        assert is_maximal_clique(graph, {0, 1, 2})
        assert not is_maximal_clique(graph, {0, 1})  # extendable by 2
        assert is_maximal_clique(graph, {2, 3})


class TestAgainstNetworkx:
    @given(
        node_count=st.integers(min_value=2, max_value=12),
        edge_indices=st.lists(
            st.integers(min_value=0, max_value=1000), max_size=40
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx(self, node_count, edge_indices):
        edges = random_edge_set(node_count, edge_indices)
        ours = UndirectedGraph(nodes=range(node_count), edges=edges)
        theirs = nx.Graph()
        theirs.add_nodes_from(range(node_count))
        theirs.add_edges_from(edges)
        expected = sorted(
            tuple(sorted(clique)) for clique in nx.find_cliques(theirs)
        )
        assert maximal_cliques(ours) == expected

    @given(
        node_count=st.integers(min_value=2, max_value=10),
        edge_indices=st.lists(
            st.integers(min_value=0, max_value=1000), max_size=30
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_output_cliques_are_maximal(self, node_count, edge_indices):
        edges = random_edge_set(node_count, edge_indices)
        graph = UndirectedGraph(nodes=range(node_count), edges=edges)
        for clique in maximal_cliques(graph):
            assert is_maximal_clique(graph, set(clique))

    @given(
        node_count=st.integers(min_value=2, max_value=10),
        edge_indices=st.lists(
            st.integers(min_value=0, max_value=1000), max_size=30
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_node_and_edge_covered(self, node_count, edge_indices):
        edges = random_edge_set(node_count, edge_indices)
        graph = UndirectedGraph(nodes=range(node_count), edges=edges)
        cliques = [set(clique) for clique in maximal_cliques(graph)]
        for node in graph.nodes:
            assert any(node in clique for clique in cliques)
        for left, right in graph.edges:
            assert any({left, right} <= clique for clique in cliques)
