"""Tests for the error-variance analysis (paper Section 4.2, Eq. 4)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.error_variance import (
    average_case_ev,
    bin_count_variance,
    combine_estimates,
    combine_variances,
    itemset_count_variance,
    itemset_frequency_variance,
    singleton_grouping_ev,
)
from repro.errors import ValidationError


class TestEquationFour:
    def test_bin_variance(self):
        # Lap(w/ε) has variance 2(w/ε)².
        assert bin_count_variance(3, 1.5) == pytest.approx(2 * 4.0)

    def test_itemset_count_variance(self):
        # ℓ=4, |X|=2 → 2^{4−2} bins summed.
        assert itemset_count_variance(4, 2, 1, 1.0) == pytest.approx(
            4 * 2.0
        )

    def test_frequency_form_matches_paper(self):
        # EV = 2^{ℓ−|X|+1} w²/(ε²N²).
        value = itemset_frequency_variance(
            basis_length=5, itemset_size=2, width=3, epsilon=0.5,
            num_transactions=100,
        )
        expected = 2 ** (5 - 2 + 1) * 9 / (0.25 * 100 * 100)
        assert value == pytest.approx(expected)

    def test_itemset_larger_than_basis_rejected(self):
        with pytest.raises(ValidationError):
            itemset_count_variance(2, 3, 1, 1.0)

    def test_invalid_width(self):
        with pytest.raises(ValidationError):
            bin_count_variance(0, 1.0)


class TestCombination:
    def test_paper_two_estimate_formula(self):
        # v₁v₂/(v₁+v₂).
        assert combine_variances([2.0, 6.0]) == pytest.approx(1.5)

    def test_combined_variance_below_minimum(self):
        assert combine_variances([4.0, 4.0]) == pytest.approx(2.0)

    def test_single_estimate_passthrough(self):
        assert combine_variances([7.0]) == pytest.approx(7.0)

    def test_combine_estimates_weights(self):
        # Weight ∝ 1/v: estimate 10 (v=1) vs 20 (v=3) → (30+20)/4 wait:
        # value = combined_v * (10/1 + 20/3) = 0.75 * 16.667 = 12.5.
        value, variance = combine_estimates([10.0, 20.0], [1.0, 3.0])
        assert variance == pytest.approx(0.75)
        assert value == pytest.approx(12.5)

    def test_combine_estimates_validation(self):
        with pytest.raises(ValidationError):
            combine_estimates([1.0], [1.0, 2.0])
        with pytest.raises(ValidationError):
            combine_variances([])
        with pytest.raises(ValidationError):
            combine_variances([0.0])

    @given(
        variances=st.lists(
            st.floats(min_value=0.01, max_value=100.0), min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=50)
    def test_combination_never_increases_variance(self, variances):
        assert combine_variances(variances) <= min(variances) + 1e-12

    @given(
        estimates=st.lists(
            st.floats(min_value=-100, max_value=100), min_size=2,
            max_size=5,
        )
    )
    @settings(max_examples=50)
    def test_combined_estimate_within_range(self, estimates):
        variances = [1.0] * len(estimates)
        value, _ = combine_estimates(estimates, variances)
        assert min(estimates) - 1e-9 <= value <= max(estimates) + 1e-9


class TestAverageCaseEV:
    def test_uncovered_query_is_infinite(self):
        assert average_case_ev([(1, 2)], [(3,)]) == math.inf

    def test_no_bases_is_infinite(self):
        assert average_case_ev([], [(1,)]) == math.inf

    def test_single_basis_single_query(self):
        # One basis of length 2, query a singleton: w²·2^{2−1} = 2.
        assert average_case_ev([(1, 2)], [(1,)]) == pytest.approx(2.0)

    def test_multi_coverage_reduces_ev(self):
        one_cover = average_case_ev([(1, 2), (3, 4)], [(1,)])
        two_cover = average_case_ev([(1, 2), (1, 3)], [(1,)])
        assert two_cover < one_cover

    def test_merging_tradeoff_visible(self):
        # Querying 6 singletons: six size-1 bases (w=6, ℓ=1) vs two
        # size-3 bases (w=2, ℓ=3): 36·1 vs 4·4 per query.
        separate = average_case_ev(
            [(i,) for i in range(6)], [(i,) for i in range(6)]
        )
        grouped = average_case_ev(
            [(0, 1, 2), (3, 4, 5)], [(i,) for i in range(6)]
        )
        assert grouped < separate

    def test_empty_queries(self):
        assert average_case_ev([(1,)], []) == 0.0


class TestSingletonGroupingEV:
    def test_paper_optimum_at_three(self):
        # 2^{ℓ−1}/ℓ² is minimized at ℓ = 3 where it equals 4/9.
        values = {
            group_size: singleton_grouping_ev(group_size, 10)
            for group_size in range(1, 9)
        }
        assert min(values, key=values.get) == 3
        assert values[3] == pytest.approx(4 / 9)

    def test_direct_method_is_one(self):
        assert singleton_grouping_ev(1, 5) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            singleton_grouping_ev(0, 5)
