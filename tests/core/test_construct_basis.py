"""Tests for ConstructBasisSet (paper Algorithm 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.basis import BasisSet
from repro.core.construct_basis import construct_basis_set
from repro.core.error_variance import average_case_ev
from repro.errors import ValidationError


class TestValidation:
    def test_empty_items_rejected(self):
        with pytest.raises(ValidationError):
            construct_basis_set([], [])

    def test_pair_outside_f_rejected(self):
        with pytest.raises(ValidationError):
            construct_basis_set([1, 2], [(1, 9)])

    def test_non_pair_rejected(self):
        with pytest.raises(ValidationError):
            construct_basis_set([1, 2, 3], [(1, 2, 3)])

    def test_max_length_minimum(self):
        with pytest.raises(ValidationError):
            construct_basis_set([1], [], max_basis_length=2)


class TestStructure:
    def test_no_pairs_gives_triples(self):
        basis_set = construct_basis_set(range(7), [])
        # 7 leftover items → groups of ≤ 3; EV-dissolve may rearrange
        # but every item must be covered and length ≤ max.
        assert set(basis_set.items) == set(range(7))
        assert basis_set.length <= 12

    def test_single_item(self):
        basis_set = construct_basis_set([5], [])
        assert basis_set.bases == ((5,),)

    def test_clique_becomes_basis(self):
        # Triangle 1-2-3 plus isolated items 7, 8.
        basis_set = construct_basis_set(
            [1, 2, 3, 7, 8], [(1, 2), (1, 3), (2, 3)]
        )
        assert basis_set.covers((1, 2, 3))
        assert basis_set.covers((7,))
        assert basis_set.covers((8,))

    def test_every_input_pair_covered(self):
        items = list(range(10))
        pairs = [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (8, 9)]
        basis_set = construct_basis_set(items, pairs)
        for pair in pairs:
            assert basis_set.covers(pair)

    def test_every_item_covered(self):
        items = list(range(15))
        pairs = [(0, 1), (2, 3)]
        basis_set = construct_basis_set(items, pairs)
        for item in items:
            assert basis_set.covers((item,))

    def test_length_cap_respected(self):
        # A large clique cannot be merged beyond the cap.
        items = list(range(8))
        pairs = [
            (i, j) for i in items for j in items if i < j
        ]
        basis_set = construct_basis_set(items, pairs, max_basis_length=8)
        assert basis_set.length <= 8

    def test_no_subsumed_bases_in_output(self):
        items = list(range(6))
        pairs = [(0, 1), (1, 2), (0, 2), (3, 4)]
        basis_set = construct_basis_set(items, pairs)
        bases = [set(basis) for basis in basis_set]
        for i, left in enumerate(bases):
            for j, right in enumerate(bases):
                if i != j:
                    assert not left < right


class TestEVReasoning:
    def test_merging_overlapping_cliques_reduces_width(self):
        # Star pairs (0,1), (0,2): cliques {0,1} and {0,2}.  Merging
        # into {0,1,2} lowers the average EV (hand computation: 5.6 →
        # 3.2 in relative units), so greedy merging must take it.
        basis_set = construct_basis_set([0, 1, 2], [(0, 1), (0, 2)])
        assert basis_set.bases == ((0, 1, 2),)

    def test_disjoint_edges_stay_separate(self):
        # For 12 disjoint edges with pair queries, merging any two
        # (size-4 basis) strictly increases the average EV — the greedy
        # phase must leave them alone.
        items = list(range(24))
        pairs = [(2 * i, 2 * i + 1) for i in range(12)]
        basis_set = construct_basis_set(items, pairs)
        assert basis_set.width == 12
        assert basis_set.length == 2

    def test_output_ev_not_worse_than_initial(self):
        items = list(range(12))
        pairs = [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7)]
        basis_set = construct_basis_set(items, pairs)
        queries = [(item,) for item in items] + pairs
        final_ev = average_case_ev(list(basis_set), queries)
        # Initial configuration: cliques + leftover triples.
        from repro.graph.adjacency import UndirectedGraph
        from repro.graph.bron_kerbosch import maximal_cliques

        graph = UndirectedGraph.from_pairs(pairs, nodes=items)
        cliques = [
            clique for clique in maximal_cliques(graph)
            if len(clique) >= 2
        ]
        in_pairs = {item for pair in pairs for item in pair}
        leftovers = [item for item in items if item not in in_pairs]
        initial = cliques + [
            tuple(leftovers[start:start + 3])
            for start in range(0, len(leftovers), 3)
        ]
        initial_ev = average_case_ev(initial, queries)
        assert final_ev <= initial_ev + 1e-9

    @given(
        num_items=st.integers(min_value=1, max_value=14),
        pair_seeds=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=13),
                st.integers(min_value=0, max_value=13),
            ),
            max_size=20,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_coverage_invariant(self, num_items, pair_seeds):
        items = list(range(num_items))
        pairs = sorted(
            {
                (min(a, b), max(a, b))
                for a, b in pair_seeds
                if a != b and a < num_items and b < num_items
            }
        )
        basis_set = construct_basis_set(items, pairs)
        for item in items:
            assert basis_set.covers((item,))
        for pair in pairs:
            assert basis_set.covers(pair)
        assert basis_set.length <= 12
