"""Tests for GetLambda and GetFreqElements (Algorithm 3, steps 1–3)."""

import numpy as np
import pytest

from repro.core.freq_elements import (
    get_frequent_items,
    get_frequent_pairs,
    select_top_by_count,
)
from repro.core.lambda_select import get_lambda
from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError

HUGE_EPSILON = 1e9


class TestGetLambda:
    def test_huge_epsilon_finds_structural_lambda(self, dense_db):
        # With ~zero noise, λ is the item rank whose frequency is
        # closest to f_{k·η}: deterministic given the data.
        lam = get_lambda(dense_db, k=20, epsilon=HUGE_EPSILON, rng=0)
        reference = get_lambda(dense_db, k=20, epsilon=HUGE_EPSILON,
                               rng=999)
        assert lam == reference  # noise-free → seed-independent
        assert 1 <= lam <= dense_db.num_items

    def test_lambda_in_range_small_epsilon(self, dense_db):
        for seed in range(5):
            lam = get_lambda(dense_db, k=10, epsilon=0.05, rng=seed)
            assert 1 <= lam <= dense_db.num_items

    def test_eta_inflation_does_not_shrink_lambda(self, dense_db):
        # Larger η targets a lower θ, hence a (weakly) larger rank.
        low = get_lambda(dense_db, k=15, epsilon=HUGE_EPSILON, eta=1.0,
                         rng=0)
        high = get_lambda(dense_db, k=15, epsilon=HUGE_EPSILON, eta=2.0,
                          rng=0)
        assert high >= low

    def test_validation(self, dense_db):
        with pytest.raises(ValidationError):
            get_lambda(dense_db, k=0, epsilon=1.0)
        with pytest.raises(ValidationError):
            get_lambda(dense_db, k=1, epsilon=-1.0)
        with pytest.raises(ValidationError):
            get_lambda(dense_db, k=1, epsilon=1.0, eta=0.5)

    def test_empty_database_rejected(self):
        empty = TransactionDatabase([], num_items=3)
        with pytest.raises(ValidationError):
            get_lambda(empty, k=1, epsilon=1.0)


class TestSelectTopByCount:
    def test_huge_epsilon_exact(self):
        counts = np.array([5.0, 100.0, 50.0, 2.0])
        picked = select_top_by_count(counts, 2, HUGE_EPSILON, rng=0)
        assert sorted(picked) == [1, 2]

    def test_validation(self):
        with pytest.raises(ValidationError):
            select_top_by_count(np.array([1.0]), 0, 1.0)


class TestGetFrequentItems:
    def test_huge_epsilon_returns_true_top_items(self, tiny_db):
        items = get_frequent_items(tiny_db, 3, HUGE_EPSILON, rng=0)
        assert sorted(items) == [0, 1, 2]

    def test_count_respected(self, tiny_db):
        assert len(get_frequent_items(tiny_db, 4, 1.0, rng=0)) == 4

    def test_no_duplicates(self, small_db):
        items = get_frequent_items(small_db, 10, 0.5, rng=1)
        assert len(set(items)) == 10

    def test_too_many_requested(self, tiny_db):
        with pytest.raises(ValidationError):
            get_frequent_items(tiny_db, 6, 1.0)


class TestGetFrequentPairs:
    def test_huge_epsilon_returns_true_top_pairs(self, tiny_db):
        pairs = get_frequent_pairs(
            tiny_db, [0, 1, 2, 3], 2, HUGE_EPSILON, rng=0
        )
        # True pair supports: (0,1):4 (0,2):4 (1,2):3 (0,3):2 (1,3):2
        # (2,3):1.
        assert sorted(pairs) == [(0, 1), (0, 2)]

    def test_pairs_are_within_pool(self, small_db):
        pool = list(range(8))
        pairs = get_frequent_pairs(small_db, pool, 5, 1.0, rng=2)
        for a, b in pairs:
            assert a in pool and b in pool
            assert a < b

    def test_pool_too_small(self, tiny_db):
        with pytest.raises(ValidationError):
            get_frequent_pairs(tiny_db, [0], 1, 1.0)

    def test_requesting_more_than_available(self, tiny_db):
        with pytest.raises(ValidationError):
            get_frequent_pairs(tiny_db, [0, 1], 2, 1.0)
