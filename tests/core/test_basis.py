"""Tests for BasisSet (paper Definitions 2–3, Propositions 2 and 4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.basis import BasisSet, single_basis
from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError
from repro.fim.fpgrowth import fpgrowth


class TestShape:
    def test_width_and_length(self):
        basis_set = BasisSet([(1, 2, 3), (4, 5)])
        assert basis_set.width == 2
        assert basis_set.length == 3

    def test_items(self):
        assert BasisSet([(3, 1), (2,)]).items == (1, 2, 3)

    def test_bases_canonicalized(self):
        assert BasisSet([(3, 1, 3)]).bases == ((1, 3),)

    def test_empty_basis_rejected(self):
        with pytest.raises(ValidationError):
            BasisSet([()])

    def test_equality_ignores_order(self):
        assert BasisSet([(1, 2), (3,)]) == BasisSet([(3,), (1, 2)])
        assert hash(BasisSet([(1, 2), (3,)])) == hash(
            BasisSet([(3,), (1, 2)])
        )

    def test_indexing_and_iteration(self):
        basis_set = BasisSet([(1, 2), (3,)])
        assert basis_set[0] == (1, 2)
        assert list(basis_set) == [(1, 2), (3,)]
        assert len(basis_set) == 2


class TestCovering:
    def test_covers(self):
        basis_set = BasisSet([(1, 2, 3), (4, 5)])
        assert basis_set.covers((1, 3))
        assert basis_set.covers((4,))
        assert not basis_set.covers((3, 4))

    def test_covering_bases_indices(self):
        basis_set = BasisSet([(1, 2), (2, 3), (1, 2, 4)])
        assert basis_set.covering_bases((2,)) == [0, 1, 2]
        assert basis_set.covering_bases((1, 2)) == [0, 2]

    def test_empty_itemset_covered_by_all(self):
        basis_set = BasisSet([(1,), (2,)])
        assert basis_set.covering_bases(()) == [0, 1]


class TestCandidateSet:
    def test_counts_unique_subsets(self):
        basis_set = BasisSet([(1, 2), (2, 3)])
        candidates = basis_set.candidate_set()
        assert candidates == [
            (1,), (2,), (3,), (1, 2), (2, 3),
        ]

    def test_candidate_count(self):
        assert BasisSet([(1, 2, 3)]).candidate_count() == 7

    def test_all_candidates_covered(self):
        basis_set = BasisSet([(1, 2, 3), (3, 4)])
        for candidate in basis_set.candidate_set():
            assert basis_set.covers(candidate)


class TestThetaBasisVerification:
    def test_single_basis_of_frequent_items(self, dense_db):
        # Proposition 2: all θ-frequent items form a width-1 θ-basis.
        theta = 0.3
        min_support = int(theta * dense_db.num_transactions + 0.999)
        supports = dense_db.item_supports()
        frequent_items = [
            item for item in range(dense_db.num_items)
            if supports[item] >= min_support
        ]
        basis_set = single_basis(frequent_items)
        assert basis_set.width == 1
        assert basis_set.is_theta_basis_for(dense_db, theta)

    def test_insufficient_basis_detected(self, dense_db):
        # A basis missing the planted block cannot cover θ = 0.3.
        basis_set = BasisSet([(6, 7, 8)])
        assert not basis_set.is_theta_basis_for(dense_db, 0.3)

    def test_theta_validation(self, tiny_db):
        with pytest.raises(ValidationError):
            BasisSet([(0,)]).is_theta_basis_for(tiny_db, 0.0)


class TestTransformations:
    def test_merge_preserves_items(self):
        merged = BasisSet([(1, 2), (2, 3), (5,)]).merged(0, 1)
        assert merged.width == 2
        assert (1, 2, 3) in merged.bases

    def test_merge_self_rejected(self):
        with pytest.raises(ValidationError):
            BasisSet([(1,), (2,)]).merged(1, 1)

    def test_simplified_drops_subsumed(self):
        simplified = BasisSet([(1, 2), (1, 2, 3), (1, 2)]).simplified()
        assert simplified.bases == ((1, 2, 3),)

    def test_enforce_max_length_splits(self):
        capped = BasisSet([(1, 2, 3, 4, 5)]).enforce_max_length(2)
        assert capped.length <= 2
        assert set(capped.items) == {1, 2, 3, 4, 5}

    def test_enforce_max_length_validation(self):
        with pytest.raises(ValidationError):
            BasisSet([(1,)]).enforce_max_length(0)

    @given(
        bases=st.lists(
            st.sets(
                st.integers(min_value=0, max_value=12), min_size=1,
                max_size=5,
            ),
            min_size=2,
            max_size=5,
        )
    )
    @settings(max_examples=50)
    def test_merge_preserves_coverage(self, bases):
        # Proposition 4: merging two bases keeps every covered itemset
        # covered.
        basis_set = BasisSet([tuple(sorted(basis)) for basis in bases])
        merged = basis_set.merged(0, 1)
        for candidate in basis_set.candidate_set():
            assert merged.covers(candidate)
        assert merged.width == basis_set.width - 1
