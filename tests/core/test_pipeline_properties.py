"""Property-based tests of the full PrivBasis pipeline on random
databases.

Hypothesis generates small random transaction databases and pipeline
parameters; the invariants below must hold for *every* input, not
just the curated fixtures:

* structural: release size ≤ k; every released itemset is covered by
  some basis; no duplicates; frequencies finite; counts/frequencies
  consistent (count = frequency · N);
* accounting: the budget ledger spends exactly ε;
* diagnostics: λ ≥ 1; the basis set respects the length cap; the
  single-basis branch fires exactly when λ ≤ threshold.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.privbasis import privbasis
from repro.datasets.transactions import TransactionDatabase


@st.composite
def databases(draw):
    num_items = draw(st.integers(min_value=2, max_value=10))
    transactions = draw(
        st.lists(
            st.sets(
                st.integers(min_value=0, max_value=num_items - 1),
                min_size=0,
                max_size=num_items,
            ).map(tuple),
            min_size=1,
            max_size=40,
        ).filter(lambda rows: any(rows))  # ≥ 1 non-empty transaction
    )
    return TransactionDatabase(transactions, num_items=num_items)


@st.composite
def pipeline_params(draw):
    return {
        "k": draw(st.integers(min_value=1, max_value=30)),
        "epsilon": draw(
            st.floats(min_value=0.01, max_value=100.0)
        ),
        "rng": draw(st.integers(min_value=0, max_value=2**31)),
    }


class TestDegenerateInputs:
    def test_all_empty_transactions_rejected_cleanly(self):
        import pytest

        from repro.errors import ValidationError

        database = TransactionDatabase([(), (), ()], num_items=3)
        with pytest.raises(ValidationError):
            privbasis(database, k=1, epsilon=1.0, rng=0)


class TestPipelineInvariants:
    @given(database=databases(), params=pipeline_params())
    @settings(max_examples=120, deadline=None)
    def test_structural_invariants(self, database, params):
        release = privbasis(database, **params)

        # Size and uniqueness.
        assert len(release.itemsets) <= params["k"]
        itemsets = [entry.itemset for entry in release.itemsets]
        assert len(set(itemsets)) == len(itemsets)

        # Coverage: everything published is a subset of some basis.
        bases = [set(basis) for basis in release.basis_set.bases]
        for itemset in itemsets:
            assert any(set(itemset) <= basis for basis in bases)

        # Numeric sanity.
        n = database.num_transactions
        for entry in release.itemsets:
            assert math.isfinite(entry.noisy_count)
            assert math.isfinite(entry.noisy_frequency)
            assert entry.count_variance > 0
            assert entry.noisy_frequency * n == (
                entry.noisy_count
            ) or abs(
                entry.noisy_frequency * n - entry.noisy_count
            ) < 1e-6 * max(1.0, abs(entry.noisy_count))

        # Ordering: descending by noisy count.
        counts = [entry.noisy_count for entry in release.itemsets]
        assert counts == sorted(counts, reverse=True)

    @given(database=databases(), params=pipeline_params())
    @settings(max_examples=80, deadline=None)
    def test_budget_spent_exactly(self, database, params):
        release = privbasis(database, **params)
        assert release.budget.spent <= params["epsilon"] * (1 + 1e-9)
        assert release.budget.spent >= params["epsilon"] * (1 - 1e-9)

    @given(database=databases(), params=pipeline_params())
    @settings(max_examples=80, deadline=None)
    def test_diagnostics_consistent(self, database, params):
        release = privbasis(database, **params)
        assert release.lam >= 1
        assert release.lam <= database.num_items
        assert release.basis_set.length <= 12
        # Single-basis branch iff lambda <= threshold (default 12).
        if release.lam <= 12:
            assert release.used_single_basis
            assert release.frequent_pairs == ()

    @given(database=databases(), params=pipeline_params())
    @settings(max_examples=40, deadline=None)
    def test_deterministic_under_seed(self, database, params):
        first = privbasis(database, **params)
        second = privbasis(database, **params)
        assert [e.itemset for e in first.itemsets] == [
            e.itemset for e in second.itemsets
        ]
        assert [e.noisy_count for e in first.itemsets] == [
            e.noisy_count for e in second.itemsets
        ]
