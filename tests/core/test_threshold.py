"""Tests for the θ-threshold frontend."""

import pytest

from repro.core.threshold import (
    privbasis_threshold,
    select_k_for_threshold,
)
from repro.errors import ValidationError
from repro.fim.fpgrowth import fpgrowth
from repro.fim.topk import top_k_itemsets

HUGE_EPSILON = 1e7


class TestSelectK:
    def test_huge_epsilon_recovers_exact_k(self, dense_db):
        n = dense_db.num_transactions
        theta = 0.5
        exact_k = sum(
            1
            for _, count in top_k_itemsets(dense_db, 512)
            if count / n >= theta
        )
        selected = select_k_for_threshold(
            dense_db, theta, HUGE_EPSILON, rng=1
        )
        # The EM picks the k whose f_k is closest to theta; exact_k or
        # a tie-neighbour.
        assert abs(selected - exact_k) <= 1

    def test_respects_max_k(self, dense_db):
        selected = select_k_for_threshold(
            dense_db, 0.01, HUGE_EPSILON, max_k=7, rng=1
        )
        assert 1 <= selected <= 7

    def test_high_theta_gives_small_k(self, dense_db):
        selected = select_k_for_threshold(
            dense_db, 0.99, HUGE_EPSILON, rng=1
        )
        low = select_k_for_threshold(
            dense_db, 0.30, HUGE_EPSILON, rng=1
        )
        assert selected <= low

    def test_validation(self, dense_db):
        with pytest.raises(ValidationError):
            select_k_for_threshold(dense_db, 0.0, 1.0)
        with pytest.raises(ValidationError):
            select_k_for_threshold(dense_db, 1.5, 1.0)
        with pytest.raises(ValidationError):
            select_k_for_threshold(dense_db, 0.5, -1.0)
        with pytest.raises(ValidationError):
            select_k_for_threshold(dense_db, 0.5, 1.0, max_k=0)

    def test_deterministic_under_seed(self, dense_db):
        first = select_k_for_threshold(dense_db, 0.4, 1.0, rng=9)
        second = select_k_for_threshold(dense_db, 0.4, 1.0, rng=9)
        assert first == second


class TestPrivBasisThreshold:
    def test_huge_epsilon_recovers_theta_frequent_sets(self, dense_db):
        n = dense_db.num_transactions
        theta = 0.5
        release = privbasis_threshold(
            dense_db, theta, HUGE_EPSILON, rng=3
        )
        exact = {
            itemset
            for itemset, count in fpgrowth(
                dense_db, min_support=int(theta * n)
            ).items()
            if count / n >= theta
        }
        released = {entry.itemset for entry in release.itemsets}
        missing = exact - released
        spurious = released - exact
        # Near-exact at huge epsilon (k selection may be off by one).
        assert len(missing) <= max(1, len(exact) // 10)
        assert len(spurious) <= max(1, len(exact) // 10)

    def test_all_noisy_frequencies_above_theta(self, dense_db):
        release = privbasis_threshold(dense_db, 0.4, 2.0, rng=3)
        for entry in release.itemsets:
            assert entry.noisy_frequency >= 0.4

    def test_drop_below_threshold_false_keeps_topk(self, dense_db):
        filtered = privbasis_threshold(dense_db, 0.4, 2.0, rng=3)
        unfiltered = privbasis_threshold(
            dense_db, 0.4, 2.0, drop_below_threshold=False, rng=3
        )
        # Same seed → same pipeline; only the final filter differs.
        assert unfiltered.k == filtered.k
        assert len(unfiltered.itemsets) >= len(filtered.itemsets)
        # The release never exceeds k (and may be smaller when the
        # candidate set C(B) is small, as on this tiny database).
        assert len(unfiltered.itemsets) <= unfiltered.k

    def test_method_label_and_budget(self, dense_db):
        release = privbasis_threshold(dense_db, 0.5, 1.0, rng=3)
        assert release.method == "privbasis-threshold"
        assert release.epsilon == 1.0
        # The inner PrivBasis ledger accounts the mining fraction.
        assert release.budget is not None
        assert release.budget.epsilon == pytest.approx(0.9)

    def test_k_fraction_validation(self, dense_db):
        with pytest.raises(ValidationError):
            privbasis_threshold(dense_db, 0.5, 1.0, k_fraction=0.0)
        with pytest.raises(ValidationError):
            privbasis_threshold(dense_db, 0.5, 1.0, k_fraction=1.0)

    def test_kwargs_forwarded(self, dense_db):
        release = privbasis_threshold(
            dense_db, 0.5, HUGE_EPSILON, eta=1.2, rng=3
        )
        assert release.itemsets

    def test_deterministic_under_seed(self, dense_db):
        first = privbasis_threshold(dense_db, 0.5, 1.0, rng=11)
        second = privbasis_threshold(dense_db, 0.5, 1.0, rng=11)
        assert [e.itemset for e in first.itemsets] == [
            e.itemset for e in second.itemsets
        ]
