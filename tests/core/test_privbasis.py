"""Tests for the full PrivBasis pipeline (paper Algorithm 3)."""

import pytest

from repro.core.privbasis import (
    _pair_budget_size,
    default_eta,
    privbasis,
)
from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError
from repro.fim.topk import top_k_itemsets

HUGE_EPSILON = 1e9


class TestValidation:
    def test_k_positive(self, dense_db):
        with pytest.raises(ValidationError):
            privbasis(dense_db, k=0, epsilon=1.0)

    def test_alphas_must_sum_to_one(self, dense_db):
        with pytest.raises(ValidationError):
            privbasis(dense_db, k=5, epsilon=1.0,
                      alphas=(0.1, 0.1, 0.1))

    def test_alphas_length(self, dense_db):
        with pytest.raises(ValidationError):
            privbasis(dense_db, k=5, epsilon=1.0, alphas=(0.5, 0.5))

    def test_epsilon_positive(self, dense_db):
        with pytest.raises(ValidationError):
            privbasis(dense_db, k=5, epsilon=0.0)


class TestPipelineInvariants:
    def test_returns_k_itemsets(self, dense_db):
        result = privbasis(dense_db, k=10, epsilon=1.0, rng=0)
        assert len(result.itemsets) == 10

    def test_budget_fully_spent_and_not_exceeded(self, dense_db):
        result = privbasis(dense_db, k=10, epsilon=0.7, rng=0)
        assert result.budget.spent == pytest.approx(0.7, rel=1e-9)
        result.budget.assert_within_budget()

    def test_budget_ledger_labels(self, dense_db):
        result = privbasis(dense_db, k=10, epsilon=1.0, rng=0)
        labels = [entry.label for entry in result.budget.entries]
        assert labels[0] == "get_lambda"
        assert labels[-1] == "basis_freq"

    def test_deterministic_under_seed(self, dense_db):
        first = privbasis(dense_db, k=10, epsilon=0.5, rng=123)
        second = privbasis(dense_db, k=10, epsilon=0.5, rng=123)
        assert first.itemset_set() == second.itemset_set()
        assert first.lam == second.lam

    def test_different_seeds_can_differ(self, dense_db):
        results = {
            frozenset(privbasis(dense_db, k=10, epsilon=0.1,
                                rng=seed).itemset_set())
            for seed in range(6)
        }
        assert len(results) > 1  # at ε = 0.1 the output is noisy

    def test_published_itemsets_covered_by_basis(self, dense_db):
        result = privbasis(dense_db, k=12, epsilon=1.0, rng=4)
        for entry in result.itemsets:
            assert result.basis_set.covers(entry.itemset)

    def test_diagnostics_populated(self, dense_db):
        result = privbasis(dense_db, k=10, epsilon=1.0, rng=0)
        assert result.lam >= 1
        assert result.method == "privbasis"
        assert len(result.frequent_items) == min(
            result.lam, dense_db.num_items
        )


class TestAccuracyAtHighBudget:
    def test_single_basis_branch_recovers_topk(self, dense_db):
        # dense_db has a 6-item block: λ ≤ 12 → single basis; with a
        # huge budget the exact top-k must be recovered.
        result = privbasis(dense_db, k=15, epsilon=HUGE_EPSILON, rng=0)
        assert result.used_single_basis
        truth = {
            itemset for itemset, _ in top_k_itemsets(dense_db, 15)
        }
        assert result.itemset_set() == truth

    def test_multi_basis_branch_high_accuracy(self, small_db):
        # small_db's top-k spreads over > 12 items → pairs branch.
        result = privbasis(
            small_db, k=25, epsilon=HUGE_EPSILON, rng=1,
            single_basis_lambda=4,
        )
        assert not result.used_single_basis
        truth = {
            itemset for itemset, _ in top_k_itemsets(small_db, 25)
        }
        missing = truth - result.itemset_set()
        # The basis over-approximates maximal itemsets from items and
        # pairs only; with zero noise nearly everything is recovered.
        assert len(missing) <= 3

    def test_basis_length_cap_enforced(self, small_db):
        result = privbasis(
            small_db, k=25, epsilon=1.0, rng=2, single_basis_lambda=4,
            max_basis_length=6,
        )
        assert result.basis_set.length <= 6


class TestForcedBranches:
    def test_forced_pairs_branch_produces_multi_bases(self, dense_db):
        result = privbasis(
            dense_db, k=10, epsilon=HUGE_EPSILON, rng=0,
            single_basis_lambda=1,
        )
        assert result.basis_set.width >= 1
        assert result.frequent_pairs  # pairs step actually ran

    def test_eta_default_rule(self):
        assert default_eta(50) == 1.2
        assert default_eta(100) == 1.2
        assert default_eta(150) == 1.1


class TestPairBudgetHeuristic:
    def test_paper_worked_example(self):
        # Paper Section 4.4: pumsb-star, k = 100, η = 1.2, λ = 20
        # → λ₂ = 44.
        assert _pair_budget_size(20, 100, 1.2) == 44

    def test_no_pairs_when_lambda_exceeds_eta_k(self):
        assert _pair_budget_size(130, 100, 1.2) == 0

    def test_undamped_when_ratio_small(self):
        # λ₂' = 1.2·100 − 110 = 10 < λ → no damping.
        assert _pair_budget_size(110, 100, 1.2) == 10


class TestArbitraryBudgetSplits:
    """The pipeline must hold ε-accounting for any valid α-split."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        raw=st.tuples(
            st.floats(min_value=0.05, max_value=1.0),
            st.floats(min_value=0.05, max_value=1.0),
            st.floats(min_value=0.05, max_value=1.0),
        ),
        epsilon=st.floats(min_value=0.05, max_value=5.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_spends_exactly_epsilon_for_any_split(
        self, dense_db, raw, epsilon
    ):
        import pytest as _pytest

        from repro.core.privbasis import privbasis

        total = sum(raw)
        alphas = tuple(value / total for value in raw)
        # Guard the normalization against float drift.
        alphas = (alphas[0], alphas[1], 1.0 - alphas[0] - alphas[1])
        release = privbasis(
            dense_db, k=5, epsilon=epsilon, alphas=alphas, rng=3
        )
        assert release.budget.spent == _pytest.approx(epsilon)
        assert len(release.itemsets) >= 1
