"""Tests for consistency post-processing of noisy estimates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basis import BasisSet
from repro.core.basis_freq import basis_freq
from repro.core.postprocess import enforce_consistency, is_consistent


def estimates(mapping):
    """Shorthand: {itemset: count} → {itemset: (count, variance=1)}."""
    return {itemset: (count, 1.0) for itemset, count in mapping.items()}


class TestEnforceConsistency:
    def test_already_consistent_is_untouched(self):
        family = estimates({(0,): 10.0, (1,): 8.0, (0, 1): 5.0})
        repaired = enforce_consistency(family)
        assert repaired == family

    def test_negative_counts_clamped_to_zero(self):
        family = estimates({(0,): -3.0, (1,): 2.0})
        repaired = enforce_consistency(family)
        assert repaired[(0,)][0] == 0.0
        assert repaired[(1,)][0] == 2.0

    def test_counts_clamped_to_n(self):
        family = estimates({(0,): 150.0})
        repaired = enforce_consistency(family, num_transactions=100)
        assert repaired[(0,)][0] == 100.0

    def test_no_n_cap_without_num_transactions(self):
        family = estimates({(0,): 150.0})
        repaired = enforce_consistency(family)
        assert repaired[(0,)][0] == 150.0

    def test_subset_raised_to_superset(self):
        # {0} estimated below {0,1}: anti-monotonicity violated.
        family = estimates({(0,): 3.0, (0, 1): 7.0})
        repaired = enforce_consistency(family)
        assert repaired[(0,)][0] == 7.0
        assert repaired[(0, 1)][0] == 7.0

    def test_chain_propagates_upwards(self):
        # The repair must propagate through intermediate sizes:
        # {0,1,2} = 9 forces {0,1} and then {0}.
        family = estimates({(0,): 1.0, (0, 1): 2.0, (0, 1, 2): 9.0})
        repaired = enforce_consistency(family)
        assert repaired[(0,)][0] == 9.0
        assert repaired[(0, 1)][0] == 9.0

    def test_gap_in_family_does_not_propagate(self):
        # {0} and {0,1,2} are in the family but {0,1} is not; the
        # sweep only looks one level up, so {0} keeps its value.
        # (Documented limitation: the family produced by BasisFreq is
        # always subset-closed, where one level is enough.)
        family = estimates({(0,): 1.0, (0, 1, 2): 9.0})
        repaired = enforce_consistency(family)
        assert repaired[(0, 1, 2)][0] == 9.0
        assert repaired[(0,)][0] == 1.0

    def test_variances_passed_through(self):
        family = {(0,): (5.0, 2.5), (0, 1): (9.0, 0.5)}
        repaired = enforce_consistency(family)
        assert repaired[(0,)] == (9.0, 2.5)
        assert repaired[(0, 1)][1] == 0.5

    def test_empty_family(self):
        assert enforce_consistency({}) == {}


class TestIsConsistent:
    def test_detects_negative(self):
        assert not is_consistent(estimates({(0,): -1.0}))

    def test_detects_n_violation(self):
        assert not is_consistent(
            estimates({(0,): 11.0}), num_transactions=10
        )

    def test_detects_anti_monotonicity_violation(self):
        assert not is_consistent(estimates({(0,): 1.0, (0, 1): 2.0}))

    def test_accepts_consistent(self):
        family = estimates({(0,): 5.0, (1,): 4.0, (0, 1): 3.0})
        assert is_consistent(family, num_transactions=10)

    def test_tolerance(self):
        family = estimates({(0,): 1.0, (0, 1): 1.0 + 1e-12})
        assert is_consistent(family)


@st.composite
def noisy_families(draw):
    """A subset-closed family over ≤ 4 items with arbitrary counts."""
    num_items = draw(st.integers(min_value=1, max_value=4))
    base = tuple(range(num_items))
    subsets = [
        tuple(i for i in base if mask >> i & 1)
        for mask in range(1, 2**num_items)
    ]
    counts = draw(
        st.lists(
            st.floats(
                min_value=-50, max_value=150, allow_nan=False
            ),
            min_size=len(subsets),
            max_size=len(subsets),
        )
    )
    return {s: (c, 1.0) for s, c in zip(subsets, counts)}


class TestProperties:
    @given(noisy_families())
    @settings(max_examples=150, deadline=None)
    def test_repair_produces_consistency(self, family):
        repaired = enforce_consistency(family, num_transactions=100)
        assert is_consistent(repaired, num_transactions=100)

    @given(noisy_families())
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, family):
        once = enforce_consistency(family, num_transactions=100)
        twice = enforce_consistency(once, num_transactions=100)
        assert once == twice

    @given(noisy_families())
    @settings(max_examples=100, deadline=None)
    def test_never_decreases_counts_below_clamp(self, family):
        # The sweep only raises values (after the [0, N] clamp).
        repaired = enforce_consistency(family, num_transactions=100)
        for itemset, (count, _) in family.items():
            clamped = min(max(count, 0.0), 100.0)
            assert repaired[itemset][0] >= clamped - 1e-12

    @given(noisy_families())
    @settings(max_examples=100, deadline=None)
    def test_keys_and_variances_preserved(self, family):
        repaired = enforce_consistency(family)
        assert set(repaired) == set(family)
        for itemset in family:
            assert repaired[itemset][1] == family[itemset][1]


class TestIntegrationWithBasisFreq:
    def test_basis_freq_estimates_can_be_repaired(self, tiny_db):
        basis_set = BasisSet([(0, 1, 2), (2, 3)])
        release = basis_freq(tiny_db, basis_set, k=5, epsilon=0.5, rng=3)
        family = {
            entry.itemset: (entry.noisy_count, entry.count_variance)
            for entry in release.itemsets
        }
        repaired = enforce_consistency(
            family, num_transactions=tiny_db.num_transactions
        )
        for itemset, (count, _) in repaired.items():
            assert 0.0 <= count <= tiny_db.num_transactions

    def test_repair_reduces_error_at_low_epsilon(self, small_db):
        # Averaged over seeds, clamping to [0, N] cannot hurt and
        # usually helps at very low epsilon where noise dominates.
        basis_set = BasisSet([(0, 1, 2, 3)])
        raw_error = 0.0
        repaired_error = 0.0
        n = small_db.num_transactions
        for seed in range(20):
            release = basis_freq(
                small_db, basis_set, k=15, epsilon=0.02, rng=seed
            )
            family = {
                entry.itemset: (entry.noisy_count, entry.count_variance)
                for entry in release.itemsets
            }
            repaired = enforce_consistency(family, num_transactions=n)
            for itemset, (count, _) in family.items():
                truth = small_db.support(itemset)
                raw_error += abs(count - truth)
                repaired_error += abs(repaired[itemset][0] - truth)
        assert repaired_error <= raw_error
