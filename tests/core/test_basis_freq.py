"""Tests for BasisFreq (paper Algorithm 1)."""

import numpy as np
import pytest

from repro.core.basis import BasisSet
from repro.core.basis_freq import (
    basis_freq,
    itemset_estimates_from_bins,
    noisy_bin_counts,
)
from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError
from repro.fim.counting import bin_counts_for_items

HUGE_EPSILON = 1e9  # noise ≈ 0: recovers exact counting


class TestNoisyBins:
    def test_shapes(self, tiny_db):
        basis_set = BasisSet([(0, 1), (2, 3, 4)])
        bins = noisy_bin_counts(tiny_db, basis_set, 1.0, rng=0)
        assert [b.shape[0] for b in bins] == [4, 8]

    def test_noise_vanishes_at_huge_epsilon(self, tiny_db):
        basis_set = BasisSet([(0, 1, 2)])
        noisy = noisy_bin_counts(tiny_db, basis_set, HUGE_EPSILON, rng=0)
        exact = bin_counts_for_items(tiny_db, (0, 1, 2))
        assert noisy[0] == pytest.approx(exact, abs=1e-3)

    def test_noise_scale_grows_with_width(self, tiny_db):
        narrow = BasisSet([(0,)])
        wide = BasisSet([(0,), (1,), (2,), (3,), (4,)])
        rng = np.random.default_rng(1)
        narrow_err = np.std([
            noisy_bin_counts(tiny_db, narrow, 0.1, rng)[0]
            - bin_counts_for_items(tiny_db, (0,))
            for _ in range(300)
        ])
        wide_err = np.std([
            noisy_bin_counts(tiny_db, wide, 0.1, rng)[0]
            - bin_counts_for_items(tiny_db, (0,))
            for _ in range(300)
        ])
        assert wide_err > 3 * narrow_err  # scale ratio is 5

    def test_validation(self, tiny_db):
        with pytest.raises(ValidationError):
            noisy_bin_counts(tiny_db, BasisSet([(0,)]), 0.0)


class TestEstimates:
    def test_exact_recovery_with_zero_noise(self, tiny_db):
        basis_set = BasisSet([(0, 1, 2)])
        exact_bins = [
            bin_counts_for_items(tiny_db, (0, 1, 2)).astype(float)
        ]
        estimates = itemset_estimates_from_bins(
            basis_set, exact_bins, 1.0
        )
        assert estimates[(0,)][0] == pytest.approx(6.0)
        assert estimates[(0, 1)][0] == pytest.approx(4.0)
        assert estimates[(0, 1, 2)][0] == pytest.approx(3.0)

    def test_empty_itemset_excluded(self, tiny_db):
        basis_set = BasisSet([(0, 1)])
        bins = [bin_counts_for_items(tiny_db, (0, 1)).astype(float)]
        estimates = itemset_estimates_from_bins(basis_set, bins, 1.0)
        assert () not in estimates

    def test_overlapping_bases_combine(self, tiny_db):
        # Item 1 is covered by both bases; the combined estimate must
        # average the two (here: exact bins, so both agree).
        basis_set = BasisSet([(0, 1), (1, 2)])
        bins = [
            bin_counts_for_items(tiny_db, (0, 1)).astype(float),
            bin_counts_for_items(tiny_db, (1, 2)).astype(float),
        ]
        estimates = itemset_estimates_from_bins(basis_set, bins, 1.0)
        assert estimates[(1,)][0] == pytest.approx(5.0)
        # At equal width, double coverage halves the variance compared
        # to single coverage (item 0 is covered once, item 1 twice; both
        # from length-2 bases).
        assert estimates[(1,)][1] == pytest.approx(
            estimates[(0,)][1] / 2
        )

    def test_variance_accounting_matches_equation(self, tiny_db):
        basis_set = BasisSet([(0, 1, 2)])
        bins = [bin_counts_for_items(tiny_db, (0, 1, 2)).astype(float)]
        estimates = itemset_estimates_from_bins(basis_set, bins, 2.0)
        from repro.core.error_variance import itemset_count_variance

        assert estimates[(0,)][1] == pytest.approx(
            itemset_count_variance(3, 1, 1, 2.0)
        )
        assert estimates[(0, 1, 2)][1] == pytest.approx(
            itemset_count_variance(3, 3, 1, 2.0)
        )

    def test_bin_length_mismatch_rejected(self, tiny_db):
        basis_set = BasisSet([(0, 1)])
        with pytest.raises(ValidationError):
            itemset_estimates_from_bins(
                basis_set, [np.zeros(8)], 1.0
            )


class TestBasisFreqEndToEnd:
    def test_recovers_exact_topk_with_huge_epsilon(self, tiny_db):
        basis_set = BasisSet([(0, 1, 2, 3, 4)])
        result = basis_freq(tiny_db, basis_set, 3, HUGE_EPSILON, rng=0)
        published = [entry.itemset for entry in result.itemsets]
        assert published[:2] == [(0,), (1,)]
        # Third place is a three-way exact tie at support 4 ({0,1},
        # {0,2}, {2}); infinitesimal noise breaks it arbitrarily.
        assert published[2] in {(0, 1), (0, 2), (2,)}
        assert result.itemsets[0].noisy_count == pytest.approx(
            6.0, abs=1e-3
        )

    def test_returns_at_most_candidate_count(self, tiny_db):
        basis_set = BasisSet([(0, 1)])
        result = basis_freq(tiny_db, basis_set, 50, 1.0, rng=0)
        assert len(result.itemsets) == 3  # |C(B)| = 3 non-empty subsets

    def test_frequencies_are_counts_over_n(self, tiny_db):
        basis_set = BasisSet([(0, 1, 2)])
        result = basis_freq(tiny_db, basis_set, 2, HUGE_EPSILON, rng=0)
        for entry in result.itemsets:
            assert entry.noisy_frequency == pytest.approx(
                entry.noisy_count / 8
            )

    def test_deterministic_under_seed(self, tiny_db):
        basis_set = BasisSet([(0, 1, 2)])
        first = basis_freq(tiny_db, basis_set, 3, 0.5, rng=99)
        second = basis_freq(tiny_db, basis_set, 3, 0.5, rng=99)
        assert [e.itemset for e in first.itemsets] == [
            e.itemset for e in second.itemsets
        ]

    def test_validation(self, tiny_db):
        with pytest.raises(ValidationError):
            basis_freq(tiny_db, BasisSet([(0,)]), 0, 1.0)
