"""Contracts of the exception hierarchy and its wire format.

Two things are pinned here: (1) the ``isinstance`` relationships
callers rely on (e.g. catching :class:`ValueError` catches a
:class:`ValidationError`), and (2) the wire codes the service maps
onto HTTP error payloads — these are API surface and must not drift.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    BudgetError,
    BudgetExceededError,
    DatasetFormatError,
    DatasetTruncatedError,
    EmptySelectionError,
    IngestNotAllowedError,
    InvalidFractionsError,
    OverloadedError,
    ReproError,
    TornSegmentError,
    UnknownPlannerError,
    UnknownTenantError,
    ValidationError,
    error_to_wire,
    wire_code_for,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for error in (
            ValidationError("x"),
            DatasetFormatError("x"),
            BudgetError("x"),
            BudgetExceededError(1.0, 0.5),
            EmptySelectionError("x"),
            UnknownTenantError("t"),
            OverloadedError(4, 4),
            IngestNotAllowedError("t"),
            UnknownPlannerError("p", ("paper",)),
            InvalidFractionsError((0.0,), "zero"),
        ):
            assert isinstance(error, ReproError)

    def test_validation_error_is_a_value_error(self):
        # Generic callers that `except ValueError` keep working.
        assert isinstance(ValidationError("x"), ValueError)
        assert isinstance(DatasetFormatError("x"), ValueError)
        assert isinstance(EmptySelectionError("x"), ValueError)
        assert isinstance(UnknownTenantError("t"), ValueError)
        assert isinstance(UnknownPlannerError("p"), ValueError)
        assert isinstance(InvalidFractionsError((0.0,), "zero"), ValueError)

    def test_budget_exceeded_is_a_budget_error(self):
        error = BudgetExceededError(2.0, 1.0)
        assert isinstance(error, BudgetError)
        assert not isinstance(error, ValueError)

    def test_budget_exceeded_fields(self):
        error = BudgetExceededError(2.0, 0.25)
        assert error.requested == 2.0
        assert error.remaining == 0.25
        assert "2" in str(error) and "0.25" in str(error)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise UnknownTenantError("nobody")
        with pytest.raises(ReproError):
            raise OverloadedError(9, 8)


class TestWireCodes:
    # The service's HTTP error contract: codes are stable strings.
    EXPECTED = {
        ReproError("x"): "internal_error",
        ValidationError("x"): "validation_error",
        DatasetFormatError("x"): "dataset_format_error",
        DatasetTruncatedError("x"): "dataset_truncated",
        TornSegmentError("/tmp/shards", (1,)): "torn_segment",
        BudgetError("x"): "budget_error",
        BudgetExceededError(1.0, 0.0): "budget_exceeded",
        EmptySelectionError("x"): "empty_selection",
        UnknownTenantError("t"): "unknown_tenant",
        OverloadedError(1, 1): "overloaded",
        IngestNotAllowedError("t"): "ingest_forbidden",
        UnknownPlannerError("p", ("paper",)): "unknown_planner",
        InvalidFractionsError((0.0,), "zero"): "validation_error",
    }

    def test_wire_codes_are_stable(self):
        for error, code in self.EXPECTED.items():
            assert wire_code_for(error) == code
            assert error_to_wire(error)["error"] == code

    def test_foreign_exceptions_map_to_internal_error(self):
        assert wire_code_for(RuntimeError("boom")) == "internal_error"

    def test_payload_always_has_message(self):
        payload = error_to_wire(ValidationError("k must be >= 1"))
        assert payload["message"] == "k must be >= 1"

    def test_budget_exceeded_payload_is_structured(self):
        payload = error_to_wire(BudgetExceededError(0.8, 0.3))
        assert payload["requested"] == 0.8
        assert payload["remaining"] == 0.3

    def test_unknown_tenant_payload_names_the_tenant(self):
        assert error_to_wire(UnknownTenantError("zed"))["tenant"] == "zed"

    def test_overloaded_payload_has_limits(self):
        payload = error_to_wire(OverloadedError(5, 4))
        assert payload["in_flight"] == 5
        assert payload["limit"] == 4

    def test_ingest_forbidden_payload_names_the_tenant(self):
        payload = error_to_wire(IngestNotAllowedError("feedless"))
        assert payload["tenant"] == "feedless"
        assert "read-only" in payload["message"]

    def test_unknown_planner_payload_lists_alternatives(self):
        payload = error_to_wire(
            UnknownPlannerError("bogus", ("adaptive", "custom", "paper"))
        )
        assert payload["error"] == "unknown_planner"
        assert payload["planner"] == "bogus"
        assert payload["known"] == ["adaptive", "custom", "paper"]
        assert "bogus" in payload["message"]

    def test_invalid_fractions_carries_structure(self):
        error = InvalidFractionsError((0.5, 0.0), "fractions[1] is zero")
        assert error.fractions == (0.5, 0.0)
        assert error.reason == "fractions[1] is zero"
        assert "fractions[1]" in str(error)
