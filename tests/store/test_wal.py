"""Unit tests for the CRC-framed write-ahead log primitive.

The WAL's whole job is to make exactly the records that were fully
written recoverable, drop anything torn by a crash, and amortize
fsyncs through the barrier.  These tests pin those properties file-
byte-level: torn tails are simulated by truncating and corrupting the
real on-disk bytes.
"""

from __future__ import annotations

import pytest

from repro.errors import StateStoreError, ValidationError
from repro.store.wal import WriteAheadLog, require_directory


def reopened(path):
    """A fresh handle over the same file (simulated restart)."""
    return WriteAheadLog(path)


class TestAppendReplay:
    def test_round_trip_preserves_records_and_order(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "a.wal")
        payloads = [{"n": i, "tag": f"r{i}"} for i in range(20)]
        for payload in payloads:
            wal.append(payload)
        wal.close()

        replay = reopened(tmp_path / "a.wal").replay()
        assert list(replay) == payloads
        assert replay.torn_records == 0
        assert replay.next_seq == 20

    def test_replay_then_append_continues_the_sequence(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "a.wal")
        wal.append({"n": 0})
        wal.close()

        again = reopened(tmp_path / "a.wal")
        again.replay()
        again.append({"n": 1})
        again.close()

        replay = reopened(tmp_path / "a.wal").replay()
        assert [record["n"] for record in replay] == [0, 1]
        assert replay.next_seq == 2

    def test_missing_file_replays_empty(self, tmp_path):
        replay = WriteAheadLog(tmp_path / "missing.wal").replay()
        assert len(replay) == 0
        assert replay.torn_records == 0

    def test_non_serializable_payload_is_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "a.wal")
        with pytest.raises(ValidationError, match="JSON-serializable"):
            wal.append({"bad": object()})

    def test_unknown_fsync_policy_is_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="fsync"):
            WriteAheadLog(tmp_path / "a.wal", fsync="sometimes")


class TestTornTails:
    """Crash damage only ever strips records off the end."""

    def _write(self, path, count=5):
        wal = WriteAheadLog(path)
        for index in range(count):
            wal.append({"n": index})
        wal.close()

    def test_partial_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "a.wal"
        self._write(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 7])  # mid-record crash

        replay = reopened(path).replay()
        assert [record["n"] for record in replay] == [0, 1, 2, 3]
        assert replay.torn_records == 1

    def test_corrupted_crc_drops_the_record(self, tmp_path):
        path = tmp_path / "a.wal"
        self._write(path, count=3)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[-1] = lines[-1].replace(b'"n":2', b'"n":9')  # bit flip
        path.write_bytes(b"".join(lines))

        replay = reopened(path).replay()
        assert [record["n"] for record in replay] == [0, 1]
        assert replay.torn_records == 1

    def test_damage_in_the_middle_drops_everything_after(self, tmp_path):
        # Appends are sequential, so anything after a damaged line was
        # never acknowledged — trusting it would resurrect records
        # whose predecessors are gone.
        path = tmp_path / "a.wal"
        self._write(path, count=5)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[2] = b"garbage not json\n"
        path.write_bytes(b"".join(lines))

        replay = reopened(path).replay()
        assert [record["n"] for record in replay] == [0, 1]
        assert replay.torn_records == 3

    def test_replay_truncates_the_torn_tail_off_the_file(
        self, tmp_path
    ):
        # Leaving the damaged bytes in place would strand every later
        # append behind an unparsable line — the restart after next
        # would then silently drop acknowledged records.
        path = tmp_path / "a.wal"
        self._write(path, count=3)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 5])

        wal = reopened(path)
        replay = wal.replay()
        assert replay.torn_records == 1
        wal.close()
        # The file now ends exactly at the last intact record.
        clean = reopened(path).replay()
        assert clean.torn_records == 0
        assert [record["n"] for record in clean] == [0, 1]

    def test_records_synced_after_torn_recovery_survive_next_restart(
        self, tmp_path
    ):
        # The full double-restart scenario: crash leaves a torn tail;
        # restart 1 recovers and serves (appending + syncing new
        # records); restart 2 must see every post-crash record.
        path = tmp_path / "a.wal"
        self._write(path, count=3)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 5])

        restart_one = reopened(path)
        survivors = [record["n"] for record in restart_one.replay()]
        restart_one.append({"n": "acknowledged"})
        restart_one.sync()
        restart_one.close()

        restart_two = reopened(path).replay()
        assert [record["n"] for record in restart_two] == (
            survivors + ["acknowledged"]
        )
        assert restart_two.torn_records == 0


class TestFsyncBatching:
    def test_batch_policy_fsyncs_once_per_barrier(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "a.wal", fsync="batch")
        for index in range(10):
            wal.append({"n": index})
        assert wal.syncs == 0
        wal.sync()
        assert wal.syncs == 1
        wal.sync()  # nothing new appended — group commit no-op
        assert wal.syncs == 1
        wal.close()

    def test_always_policy_fsyncs_every_append(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "a.wal", fsync="always")
        for index in range(4):
            wal.append({"n": index})
        assert wal.syncs == 4
        wal.close()

    def test_never_policy_skips_fsync_but_replays(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "a.wal", fsync="never")
        wal.append({"n": 0})
        wal.sync()
        assert wal.syncs == 0
        wal.close()
        assert len(reopened(tmp_path / "a.wal").replay()) == 1


class TestRewrite:
    def test_rewrite_replaces_contents_atomically(self, tmp_path):
        path = tmp_path / "a.wal"
        wal = WriteAheadLog(path)
        for index in range(5):
            wal.append({"n": index})
        wal.rewrite([{"n": "only"}])

        replay = reopened(path).replay()
        assert [record["n"] for record in replay] == ["only"]
        assert not list(path.parent.glob("*.compact"))  # temp cleaned

    def test_rewrite_empty_truncates(self, tmp_path):
        path = tmp_path / "a.wal"
        wal = WriteAheadLog(path)
        wal.append({"n": 0})
        wal.rewrite(())
        assert wal.size_bytes() == 0
        assert len(reopened(path).replay()) == 0


class TestRequireDirectory:
    def test_creates_missing_directories(self, tmp_path):
        target = tmp_path / "a" / "b"
        assert require_directory(target) == target
        assert target.is_dir()

    def test_refuses_a_regular_file(self, tmp_path):
        target = tmp_path / "file"
        target.write_text("not a directory")
        with pytest.raises(StateStoreError, match="not a directory"):
            require_directory(target)
