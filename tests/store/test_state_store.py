"""Unit tests for the ledger journal, dataset log store, result
store, and the :class:`StateStore` facade.

Every test that matters reopens the store from disk — durability
claims are only meaningful across a (simulated) process boundary.
"""

from __future__ import annotations

import pytest

from repro.dp.budget import PrivacyBudget
from repro.errors import (
    BudgetExceededError,
    StateStoreError,
    ValidationError,
)
from repro.store import (
    DatasetLogStore,
    LedgerJournal,
    ResultStore,
    StateStore,
)
from repro.store.logstore import sanitize_dataset_name


class TestLedgerJournal:
    def test_debits_survive_reopen(self, tmp_path):
        journal = LedgerJournal(tmp_path)
        journal.debit("alice", 0.5, "release k=5")
        journal.debit("alice", 0.25, "release k=9")
        journal.debit("bob", 1.0, "batch[0] k=3")
        journal.sync()
        journal.close()

        recovered = LedgerJournal(tmp_path)
        assert recovered.spent("alice") == pytest.approx(0.75)
        assert recovered.spent("bob") == pytest.approx(1.0)
        assert recovered.spent("mallory") == 0.0
        assert recovered.entries("alice") == [
            ("release k=5", 0.5),
            ("release k=9", 0.25),
        ]

    def test_compaction_preserves_every_value(self, tmp_path):
        journal = LedgerJournal(tmp_path)
        for index in range(10):
            journal.debit("alice", 0.1, f"r{index}")
        summary = journal.compact()
        assert summary["wal_bytes_after"] == 0

        # More debits after compaction land in the fresh WAL.
        journal.debit("alice", 0.1, "post-compact")
        journal.sync()
        journal.close()

        recovered = LedgerJournal(tmp_path)
        assert recovered.spent("alice") == pytest.approx(1.1)
        assert len(recovered.entries("alice")) == 11

    def test_invalid_debits_are_rejected(self, tmp_path):
        journal = LedgerJournal(tmp_path)
        with pytest.raises(ValidationError):
            journal.debit("", 0.5)
        with pytest.raises(ValidationError):
            journal.debit("alice", 0.0)
        with pytest.raises(ValidationError):
            journal.debit("alice", float("inf"))

    def test_unreadable_snapshot_is_a_store_error(self, tmp_path):
        (tmp_path / "ledger.snapshot.json").write_text("{not json")
        with pytest.raises(StateStoreError, match="unreadable"):
            LedgerJournal(tmp_path)


class TestBudgetJournalHook:
    """The PrivacyBudget ↔ journal contract: write-ahead, restore
    without re-journaling, failed hooks abort the spend."""

    def test_spend_reaches_the_journal_before_memory(self, tmp_path):
        journal = LedgerJournal(tmp_path)
        budget = PrivacyBudget(2.0)
        observed = []
        budget.attach_journal(
            lambda label, epsilon: (
                journal.debit("alice", epsilon, label),
                observed.append(budget.spent),  # memory BEFORE entry
            )
        )
        budget.spend(0.5, "r1")
        assert observed == [0.0]  # journaled while memory still empty
        assert journal.spent("alice") == pytest.approx(0.5)
        assert budget.spent == pytest.approx(0.5)

    def test_restored_entries_bypass_the_journal(self, tmp_path):
        journal = LedgerJournal(tmp_path)
        journal.debit("alice", 0.5, "old")
        budget = PrivacyBudget(2.0)
        budget.restore_entries(journal.entries("alice"))
        budget.attach_journal(
            lambda label, epsilon: journal.debit("alice", epsilon, label)
        )
        # Restoring did not double-journal: one debit on disk.
        assert len(journal.entries("alice")) == 1
        assert budget.spent == pytest.approx(0.5)
        assert budget.remaining == pytest.approx(1.5)

    def test_failing_hook_aborts_the_spend(self):
        budget = PrivacyBudget(2.0)

        def explode(label, epsilon):
            raise OSError("disk full")

        budget.attach_journal(explode)
        with pytest.raises(OSError):
            budget.spend(0.5, "r1")
        # Nothing was recorded: the DP ledger never got ahead of the
        # durable one.
        assert budget.spent == 0.0

    def test_overdraft_checked_before_the_journal_is_touched(
        self, tmp_path
    ):
        journal = LedgerJournal(tmp_path)
        budget = PrivacyBudget(1.0)
        budget.attach_journal(
            lambda label, epsilon: journal.debit("alice", epsilon, label)
        )
        with pytest.raises(BudgetExceededError):
            budget.spend(2.0, "too much")
        assert journal.spent("alice") == 0.0

    def test_restore_rejects_non_positive_epsilon(self):
        budget = PrivacyBudget(1.0)
        with pytest.raises(ValidationError):
            budget.restore_entries([("bad", 0.0)])

    def test_non_callable_journal_is_rejected(self):
        with pytest.raises(ValidationError):
            PrivacyBudget(1.0).attach_journal("not callable")


class TestDatasetLogStore:
    def test_appends_replay_flattened_at_the_right_version(
        self, tmp_path
    ):
        store = DatasetLogStore(tmp_path, "mushroom")
        store.record_append(1, [[1, 2], [3]])
        store.record_append(2, [[4]])
        store.sync()
        store.close()

        recovered = DatasetLogStore(tmp_path, "mushroom")
        version, rows = recovered.replay()
        assert version == 2
        assert rows == [[1, 2], [3], [4]]

    def test_version_must_advance_by_exactly_one(self, tmp_path):
        store = DatasetLogStore(tmp_path, "mushroom")
        store.record_append(1, [[1]])
        with pytest.raises(StateStoreError, match="version"):
            store.record_append(3, [[2]])
        with pytest.raises(StateStoreError, match="version"):
            store.record_append(1, [[2]])

    def test_empty_appends_are_rejected(self, tmp_path):
        store = DatasetLogStore(tmp_path, "mushroom")
        with pytest.raises(ValidationError, match="empty"):
            store.record_append(1, [])

    def test_checkpoint_interval_folds_the_wal(self, tmp_path):
        store = DatasetLogStore(
            tmp_path, "mushroom", checkpoint_interval=3
        )
        for version in range(1, 5):
            store.record_append(version, [[version]])
        store.close()

        recovered = DatasetLogStore(tmp_path, "mushroom")
        version, rows = recovered.replay()
        assert version == 4
        assert rows == [[1], [2], [3], [4]]

    def test_compact_crash_window_skips_folded_records(self, tmp_path):
        # Compaction writes the checkpoint, then truncates the WAL.  A
        # crash between the two leaves WAL records the checkpoint
        # already covers; replay must not double-append them.
        store = DatasetLogStore(tmp_path, "mushroom")
        store.record_append(1, [[1]])
        store.record_append(2, [[2]])
        wal_bytes = (
            tmp_path / "logs" / "mushroom.wal"
        ).read_bytes()
        store.compact()
        # Simulate the crash: the pre-compaction WAL reappears.
        (tmp_path / "logs" / "mushroom.wal").write_bytes(wal_bytes)
        store.close()

        recovered = DatasetLogStore(tmp_path, "mushroom")
        version, rows = recovered.replay()
        assert version == 2
        assert rows == [[1], [2]]

    def test_checkpoint_interval_none_disables_auto_checkpoint(
        self, tmp_path
    ):
        store = DatasetLogStore(
            tmp_path, "mushroom", checkpoint_interval=None
        )
        for version in range(1, 200):
            store.record_append(version, [[version % 5]])
        store.close()
        assert not (
            tmp_path / "logs" / "mushroom.checkpoint.json"
        ).exists()
        # ... and the same through the facade.
        with StateStore(
            tmp_path / "facade", checkpoint_interval=None
        ) as facade:
            log = facade.dataset_log("d")
            for version in range(1, 100):
                log.record_append(version, [[1]])
        assert not (
            tmp_path / "facade" / "logs" / "d.checkpoint.json"
        ).exists()

    def test_hostile_dataset_names_cannot_escape_the_directory(
        self, tmp_path
    ):
        assert "/" not in sanitize_dataset_name("../../etc/passwd")
        store = DatasetLogStore(tmp_path, "../evil")
        store.record_append(1, [[1]])
        store.close()
        inside = list((tmp_path / "logs").iterdir())
        assert inside  # files landed inside logs/, nowhere else
        assert not (tmp_path.parent / "evil.wal").exists()
        with pytest.raises(ValidationError):
            sanitize_dataset_name("")


class TestResultStore:
    def test_round_trip_and_ordering(self, tmp_path):
        store = ResultStore(tmp_path)
        store.record("alice", "mushroom", 0, {"k": 5, "epsilon": 0.5})
        store.record("bob", "retail", 0, {"k": 9, "epsilon": 1.0})
        store.record("alice", "mushroom", 1, {"k": 7, "epsilon": 0.25})
        store.sync()
        store.close()

        recovered = ResultStore(tmp_path)
        assert len(recovered) == 3
        history = recovered.results_for("alice")
        assert [entry["snapshot_version"] for entry in history] == [0, 1]
        assert recovered.get("alice", "mushroom", 1) == [
            {"k": 7, "epsilon": 0.25}
        ]
        assert recovered.get("alice", "mushroom", 9) == []
        assert recovered.release_counts() == {"mushroom": 2, "retail": 1}
        assert recovered.epsilon_by_dataset() == {
            "mushroom": pytest.approx(0.75),
            "retail": pytest.approx(1.0),
        }

    def test_none_snapshot_version_stores_as_zero(self, tmp_path):
        store = ResultStore(tmp_path)
        store.record("alice", "static", None, {"epsilon": 0.1})
        assert store.get("alice", "static", 0) == [{"epsilon": 0.1}]

    def test_compact_preserves_contents(self, tmp_path):
        store = ResultStore(tmp_path)
        for index in range(5):
            store.record("alice", "d", index, {"epsilon": 0.1})
        store.compact()
        store.close()
        recovered = ResultStore(tmp_path)
        assert len(recovered) == 5

    def test_retention_bounds_the_window_not_the_aggregates(
        self, tmp_path
    ):
        store = ResultStore(tmp_path, retention=3)
        for index in range(10):
            store.record("alice", "d", index, {"epsilon": 0.1})
        # The serving window holds only the newest 3...
        history = store.results_for("alice")
        assert [e["snapshot_version"] for e in history] == [7, 8, 9]
        assert [e["snapshot_version"] for e in store.results_for(
            "alice", limit=2
        )] == [8, 9]
        # ...while counts, ε sums, and the WAL stay exact and full.
        assert len(store) == 10
        assert store.release_counts() == {"d": 10}
        assert store.epsilon_by_dataset()["d"] == pytest.approx(1.0)
        store.close()
        assert len(ResultStore(tmp_path, retention=3)) == 10


class TestStateStoreFacade:
    def test_recovery_report_aggregates_all_stores(self, tmp_path):
        with StateStore(tmp_path) as store:
            store.ledger.debit("alice", 0.5, "r")
            store.results.record("alice", "d", 0, {"epsilon": 0.5})
            store.dataset_log("d").record_append(1, [[1]])
            store.barrier()

        with StateStore(tmp_path) as recovered:
            report = recovered.recovery
            assert report.tenants == {"alice": pytest.approx(0.5)}
            assert report.results == 1
            assert report.torn_records == 0
            version, rows = recovered.dataset_log("d").replay()
            recovered.recovery.note_dataset("d", version)
            assert report.to_wire()["datasets"] == {"d": 1}

    def test_compact_covers_untouched_dataset_logs_on_disk(
        self, tmp_path
    ):
        with StateStore(tmp_path) as store:
            store.dataset_log("kosarak").record_append(1, [[5]])
            store.barrier()

        # A fresh facade that never touched the dataset still compacts
        # and inspects it (offline maintenance over a copied dir).
        with StateStore(tmp_path) as fresh:
            summary = fresh.compact()
            assert [d["dataset"] for d in summary["datasets"]] == [
                "kosarak"
            ]
            view = fresh.inspect()
            assert view["datasets"]["kosarak"]["version"] == 1

    def test_colliding_dataset_stems_are_refused(self, tmp_path):
        # sanitize_dataset_name is not injective; sharing one WAL
        # between two datasets would interleave their versions and
        # serve one dataset's rows as the other's after a restart.
        with StateStore(tmp_path) as store:
            store.dataset_log("retail/a")
            with pytest.raises(StateStoreError, match="retail_a"):
                store.dataset_log("retail_a")
            # The same name again is fine (cached, not a collision).
            store.dataset_log("retail/a")

    def test_refuses_a_file_as_state_dir(self, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("I am a file")
        with pytest.raises(StateStoreError):
            StateStore(target)
