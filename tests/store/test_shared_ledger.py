"""Cross-instance behavior of :class:`SharedLedgerJournal`.

Two (or more) journal *instances* on one directory model two worker
processes sharing a ``--state-dir``: the flock in front of every
public method opens a fresh file descriptor per hold, so two instances
in one test process serialize exactly like two OS processes do.  A
fork-based test then exercises the genuinely cross-process path.
"""

from __future__ import annotations

import math
import multiprocessing
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import BudgetExceededError, StateStoreError
from repro.store import (
    LedgerJournal,
    SharedLedgerJournal,
    StateStore,
    read_spent_totals,
)

pytestmark = pytest.mark.skipif(
    not hasattr(__import__("fcntl", fromlist=["flock"]), "flock"),
    reason="shared ledgers need fcntl file locks",
)


class TestCrossInstanceVisibility:
    def test_debits_are_visible_across_instances(self, tmp_path):
        a = SharedLedgerJournal(tmp_path, fsync="always")
        b = SharedLedgerJournal(tmp_path, fsync="always")
        a.debit("alice", 0.5, "from-a")
        assert b.spent("alice") == pytest.approx(0.5)
        b.debit("alice", 0.25, "from-b")
        assert a.spent("alice") == pytest.approx(0.75)
        assert [label for label, _ in a.entries("alice")] == [
            "from-a",
            "from-b",
        ]
        a.close()
        b.close()

    def test_limit_is_enforced_cluster_wide(self, tmp_path):
        a = SharedLedgerJournal(tmp_path, fsync="always")
        b = SharedLedgerJournal(tmp_path, fsync="always")
        a.debit_within_limit("alice", 0.8, limit=1.0)
        # Instance b has never seen alice spend, but the atomic
        # check-and-debit refreshes under the lock first — the debit
        # another "worker" journaled is binding here.
        with pytest.raises(BudgetExceededError):
            b.debit_within_limit("alice", 0.5, limit=1.0)
        b.debit_within_limit("alice", 0.2, limit=1.0)
        assert a.spent("alice") == pytest.approx(1.0)
        a.close()
        b.close()

    def test_read_spent_totals_matches_instances(self, tmp_path):
        a = SharedLedgerJournal(tmp_path, fsync="always")
        a.debit("alice", 0.5)
        a.debit("bob", 1.25)
        a.debit("alice", 0.125)
        totals = read_spent_totals(tmp_path)
        assert totals == {
            "alice": pytest.approx(0.625),
            "bob": pytest.approx(1.25),
        }
        a.close()

    def test_totals_survive_compaction_snapshot(self, tmp_path):
        # A snapshot written by an offline (exclusive) compaction must
        # still be counted by both the invariant reader and a shared
        # journal opened afterwards.
        exclusive = LedgerJournal(tmp_path, fsync="always")
        exclusive.debit("alice", 0.5)
        exclusive.compact()
        exclusive.debit("alice", 0.25)
        exclusive.close()
        shared = SharedLedgerJournal(tmp_path, fsync="always")
        assert shared.spent("alice") == pytest.approx(0.75)
        assert read_spent_totals(tmp_path)["alice"] == pytest.approx(
            0.75
        )
        shared.close()

    def test_shared_compaction_is_refused(self, tmp_path):
        journal = SharedLedgerJournal(tmp_path, fsync="always")
        journal.debit("alice", 0.5)
        with pytest.raises(StateStoreError):
            journal.compact()
        journal.close()

    def test_shared_state_store_compaction_is_refused(self, tmp_path):
        store = StateStore(tmp_path, shared=True)
        store.ledger.debit("alice", 0.5)
        with pytest.raises(StateStoreError):
            store.compact()
        store.close()


class TestConcurrentDebits:
    def test_two_instances_hammering_stay_exact(self, tmp_path):
        a = SharedLedgerJournal(tmp_path, fsync="never")
        b = SharedLedgerJournal(tmp_path, fsync="never")
        per_side = 100

        def hammer(journal, label):
            for index in range(per_side):
                journal.debit("alice", 0.01, f"{label}-{index}")

        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(hammer, a, "a"),
                pool.submit(hammer, b, "b"),
            ]
            for future in futures:
                future.result()
        expected = math.fsum([0.01] * (2 * per_side))
        assert a.spent("alice") == pytest.approx(expected)
        assert b.spent("alice") == pytest.approx(expected)
        assert len(a.entries("alice")) == 2 * per_side
        a.sync()
        b.sync()
        assert read_spent_totals(tmp_path)["alice"] == pytest.approx(
            expected
        )
        a.close()
        b.close()


def _fork_debitor(directory, count, label):
    """Child-process body for the cross-process test (fork keeps it
    reachable without pickling)."""
    journal = SharedLedgerJournal(directory, fsync="always")
    for index in range(count):
        journal.debit("alice", 0.01, f"{label}-{index}")
    journal.close()


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)
class TestCrossProcessDebits:
    def test_forked_processes_serialize_on_the_flock(self, tmp_path):
        context = multiprocessing.get_context("fork")
        count = 50
        children = [
            context.Process(
                target=_fork_debitor,
                args=(str(tmp_path), count, f"child-{index}"),
            )
            for index in range(2)
        ]
        parent = SharedLedgerJournal(tmp_path, fsync="always")
        for child in children:
            child.start()
        for index in range(count):
            parent.debit("alice", 0.01, f"parent-{index}")
        for child in children:
            child.join(timeout=60)
            assert child.exitcode == 0
        expected = math.fsum([0.01] * (3 * count))
        assert parent.spent("alice") == pytest.approx(expected)
        assert len(parent.entries("alice")) == 3 * count
        parent.close()
        assert read_spent_totals(tmp_path)["alice"] == pytest.approx(
            expected
        )
