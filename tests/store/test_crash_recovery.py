"""Crash-recovery property suite for the durable state store.

The one invariant the DP guarantee needs from persistence:

    **journaled spent ε ≥ ε behind released answers, at every instant,
    through any crash.**

The suite drives the exact discipline the service uses (debit → mine
→ record result → **barrier** → release answer) against a real
:class:`StateStore`, then simulates a crash at arbitrary points —
including *power loss*, modeled by truncating each WAL to a random
byte length no earlier than its last durability barrier (appends
between the last barrier and the crash may or may not survive, and
may survive torn).  Recovery then must show:

* never under-counted: every released answer's ε is journaled;
* deterministic replay: reopening twice yields identical ledgers and
  versions;
* behavioral equivalence: a tenant that was over its limit before the
  crash still gets refused (403 path) after recovery.
"""

from __future__ import annotations

import math
import os

import numpy as np
import pytest

from repro.errors import BudgetExceededError
from repro.store import StateStore


class CrashNow(Exception):
    """Injected mid-operation crash."""


class CrashHarness:
    """Drives release/ingest against a store with injectable crashes.

    Tracks, per WAL file, the byte length at the last durability
    barrier.  :meth:`power_loss` truncates each WAL to a random length
    between that barrier point and the current end — exactly the set
    of post-crash disk states an fsync-honoring kernel permits —
    optionally leaving a torn partial record at the cut.
    """

    #: Named points release() can crash at, in execution order.
    RELEASE_CRASH_POINTS = (
        "after_debit", "after_mine", "after_record", "after_barrier",
    )

    def __init__(self, state_dir, tenants):
        self.state_dir = state_dir
        self.limits = dict(tenants)
        self.store = StateStore(state_dir, fsync="batch")
        #: ε per released (acknowledged) answer, per tenant — the
        #: ground truth the journal must never under-count.
        self.released = {tenant: [] for tenant in tenants}
        #: Ingest batches acknowledged to the feed, per dataset.
        self.acked_versions = {}
        self._wal_paths = {
            "ledger": self.store.ledger._wal.path,
            "results": self.store.results._wal.path,
        }
        self._synced_sizes = {}

    # -- barrier tracking ----------------------------------------------
    def _note_barrier(self) -> None:
        for name, path in self._wal_paths.items():
            self._synced_sizes[name] = (
                os.path.getsize(path) if path.exists() else 0
            )

    def track_dataset(self, dataset: str) -> None:
        log = self.store.dataset_log(dataset)
        self._wal_paths[f"log:{dataset}"] = log._wal.path
        self.acked_versions.setdefault(dataset, 0)

    # -- the service discipline ----------------------------------------
    def spent(self, tenant: str) -> float:
        return self.store.ledger.spent(tenant)

    def remaining(self, tenant: str) -> float:
        return max(0.0, self.limits[tenant] - self.spent(tenant))

    def release(self, tenant, epsilon, crash_at=None) -> bool:
        """One release following the service's exact ordering.

        Returns True when the answer was released (acknowledged);
        raises :class:`CrashNow` when the injected crash fired first.
        """
        if epsilon > self.remaining(tenant) + 1e-12:
            raise BudgetExceededError(epsilon, self.remaining(tenant))
        self.store.ledger.debit(tenant, epsilon, "release")
        if crash_at == "after_debit":
            raise CrashNow()
        noisy = {"epsilon": epsilon, "noise": 0.0}  # the mining stand-in
        if crash_at == "after_mine":
            raise CrashNow()
        self.store.results.record(tenant, "d", 0, noisy)
        if crash_at == "after_record":
            raise CrashNow()
        self.store.barrier()
        self._note_barrier()
        if crash_at == "after_barrier":
            # Crash after durability but before the client saw the
            # answer: over-counts (budget forfeited), never under.
            raise CrashNow()
        self.released[tenant].append(epsilon)
        return True

    def ingest(self, dataset, rows, crash_at=None) -> None:
        log = self.store.dataset_log(dataset)
        version = self.acked_versions[dataset] + 1
        log.record_append(version, rows)
        if crash_at == "after_append":
            raise CrashNow()
        log.sync()
        self._synced_sizes[f"log:{dataset}"] = os.path.getsize(
            log._wal.path
        )
        if crash_at == "after_sync":
            raise CrashNow()
        self.acked_versions[dataset] = version

    # -- crash simulation ----------------------------------------------
    def power_loss(self, rng) -> None:
        """Truncate every WAL to a random length ≥ its last barrier."""
        self.store.close()
        for name, path in self._wal_paths.items():
            if not path.exists():
                continue
            synced = self._synced_sizes.get(name, 0)
            current = os.path.getsize(path)
            if current > synced:
                cut = int(rng.integers(synced, current + 1))
                with open(path, "rb+") as handle:
                    handle.truncate(cut)

    def recover(self) -> StateStore:
        self.store = StateStore(self.state_dir, fsync="batch")
        return self.store

    def assert_never_undercounted(self) -> None:
        for tenant, epsilons in self.released.items():
            journaled = self.store.ledger.spent(tenant)
            acknowledged = math.fsum(epsilons)
            assert journaled >= acknowledged - 1e-12, (
                f"{tenant}: journal says {journaled}, but "
                f"{acknowledged} was released — under-count!"
            )

    def close(self) -> None:
        self.store.close()


TENANTS = {"alice": 2.0, "bob": 1.0, "carol": 0.5}


class TestSingleCrashPoints:
    """Every crash point in the release path, deterministically."""

    @pytest.mark.parametrize(
        "crash_at", CrashHarness.RELEASE_CRASH_POINTS
    )
    def test_release_crash_never_undercounts(self, tmp_path, crash_at):
        harness = CrashHarness(tmp_path, TENANTS)
        harness.release("alice", 0.5)  # a completed release first
        with pytest.raises(CrashNow):
            harness.release("alice", 0.25, crash_at=crash_at)
        harness.power_loss(np.random.default_rng(7))
        harness.recover()
        harness.assert_never_undercounted()
        # The completed release survives any later crash exactly.
        assert harness.spent("alice") >= 0.5 - 1e-12
        harness.close()

    def test_crash_after_barrier_overcounts_safely(self, tmp_path):
        # The one-sided error direction, pinned: debit durable, answer
        # never released → spent is strictly larger than released.
        harness = CrashHarness(tmp_path, TENANTS)
        with pytest.raises(CrashNow):
            harness.release("alice", 0.5, crash_at="after_barrier")
        harness.power_loss(np.random.default_rng(3))
        harness.recover()
        assert harness.spent("alice") == pytest.approx(0.5)
        assert harness.released["alice"] == []  # forfeited, not leaked
        harness.close()

    def test_ingest_crash_before_sync_may_lose_only_unacked_batches(
        self, tmp_path
    ):
        harness = CrashHarness(tmp_path, TENANTS)
        harness.track_dataset("d")
        harness.ingest("d", [[1, 2]])  # acknowledged
        with pytest.raises(CrashNow):
            harness.ingest("d", [[3]], crash_at="after_append")
        harness.power_loss(np.random.default_rng(11))
        store = harness.recover()
        version, rows = store.dataset_log("d").replay()
        # The acknowledged batch is never lost; the unacked one may or
        # may not have survived, but versions stay consistent.
        assert version >= harness.acked_versions["d"] == 1
        assert rows[:2] == [[1, 2]]
        harness.close()


class TestRandomizedCrashSweep:
    """Seeded random workloads × random crash points × power loss."""

    @pytest.mark.parametrize("seed", range(12))
    def test_invariant_holds_through_random_crashes(
        self, tmp_path, seed
    ):
        rng = np.random.default_rng(seed)
        harness = CrashHarness(tmp_path / f"s{seed}", TENANTS)
        harness.track_dataset("d")
        tenants = list(TENANTS)
        crashed = False
        for step in range(int(rng.integers(3, 12))):
            tenant = tenants[int(rng.integers(len(tenants)))]
            crash_at = None
            if rng.random() < 0.35:
                crash_at = str(
                    rng.choice(
                        list(CrashHarness.RELEASE_CRASH_POINTS)
                        + ["after_append", "after_sync"]
                    )
                )
            try:
                if crash_at in ("after_append", "after_sync"):
                    harness.ingest(
                        "d", [[int(rng.integers(5))]], crash_at=crash_at
                    )
                elif rng.random() < 0.8:
                    harness.release(
                        tenant,
                        float(rng.uniform(0.05, 0.4)),
                        crash_at=crash_at,
                    )
                else:
                    harness.ingest("d", [[int(rng.integers(5))]])
            except CrashNow:
                crashed = True
                break
            except BudgetExceededError:
                continue
        if crashed:
            harness.power_loss(rng)
        harness.recover()
        harness.assert_never_undercounted()
        harness.close()


class TestReplayDeterminism:
    """Restart replay reproduces identical state, twice over."""

    def test_double_recovery_is_identical(self, tmp_path):
        harness = CrashHarness(tmp_path, TENANTS)
        harness.track_dataset("d")
        harness.release("alice", 0.7)
        harness.ingest("d", [[1], [2, 3]])
        harness.release("bob", 0.9)
        with pytest.raises(CrashNow):
            harness.release("carol", 0.3, crash_at="after_record")
        harness.power_loss(np.random.default_rng(5))

        first = harness.recover()
        ledger_one = {
            tenant: first.ledger.entries(tenant) for tenant in TENANTS
        }
        version_one, rows_one = first.dataset_log("d").replay()
        results_one = first.results.results_for("alice")
        first.close()

        second = StateStore(harness.state_dir)
        assert ledger_one == {
            tenant: second.ledger.entries(tenant) for tenant in TENANTS
        }
        version_two, rows_two = second.dataset_log("d").replay()
        assert (version_one, rows_one) == (version_two, rows_two)
        assert results_one == second.results.results_for("alice")
        second.close()

    def test_exhausted_tenant_still_refused_after_recovery(
        self, tmp_path
    ):
        harness = CrashHarness(tmp_path, TENANTS)
        harness.release("carol", 0.5)  # carol's whole limit
        with pytest.raises(BudgetExceededError):
            harness.release("carol", 0.1)
        harness.power_loss(np.random.default_rng(9))
        harness.recover()
        # Same refusal through the same journaled-spent check.
        with pytest.raises(BudgetExceededError):
            harness.release("carol", 0.1)
        assert harness.remaining("carol") == pytest.approx(0.0)
        harness.close()
