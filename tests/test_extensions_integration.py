"""Integration tests for the extension layer working together.

The paper pipeline (privbasis) composes with every extension this
repository adds: threshold frontend → consistency repair →
association rules → ranking metrics → export.  These tests chain them
end-to-end on registry datasets, plus stress/failure-injection cases
that no single-module test exercises.
"""

import csv
import io
import math

import pytest

from repro.core.postprocess import enforce_consistency, is_consistent
from repro.core.privbasis import privbasis
from repro.core.threshold import privbasis_threshold
from repro.datasets.registry import load_dataset
from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError
from repro.experiments.export import release_to_csv
from repro.fim.topk import top_k_itemsets
from repro.metrics.ranking import ranking_report
from repro.rules.association import rules_from_frequencies, rules_from_release


@pytest.fixture(scope="module")
def mushroom():
    return load_dataset("mushroom")


class TestFullExtensionChain:
    def test_threshold_repair_rules_chain(self, mushroom):
        """θ-release → consistency repair → rules, all budget-free
        after the single ε spend."""
        release = privbasis_threshold(
            mushroom, theta=0.4, epsilon=2.0, rng=17
        )
        n = mushroom.num_transactions

        family = {
            entry.itemset: (entry.noisy_count, entry.count_variance)
            for entry in release.itemsets
        }
        repaired = enforce_consistency(family, num_transactions=n)
        assert is_consistent(repaired, num_transactions=n)

        frequencies = {
            itemset: count / n
            for itemset, (count, _) in repaired.items()
        }
        rules = rules_from_frequencies(frequencies, min_confidence=0.6)
        # Dense dataset at moderate ε: the chain must produce usable
        # rules with correctly bounded confidences.
        assert rules
        for rule in rules:
            assert 0.6 <= rule.confidence <= 1.0

    def test_ranking_report_on_release(self, mushroom):
        k = 60
        release = privbasis(mushroom, k=k, epsilon=1.0, rng=8)
        truth = [
            itemset for itemset, _ in top_k_itemsets(mushroom, k)
        ]
        released = [entry.itemset for entry in release.itemsets]
        report = ranking_report(released, truth)
        # At epsilon = 1 on mushroom the release is nearly exact.
        assert report["jaccard"] >= 0.8
        assert report["common"] >= int(0.8 * k)
        assert report["kendall_tau"] >= 0.5

    def test_release_export_consistency(self, mushroom):
        release = privbasis(mushroom, k=20, epsilon=1.0, rng=9)
        rows = list(
            csv.DictReader(io.StringIO(release_to_csv(release)))
        )
        assert len(rows) == len(release.itemsets)
        # Rank order in the file matches noisy-count order.
        counts = [float(row["noisy_count"]) for row in rows]
        assert counts == sorted(counts, reverse=True)

    def test_rules_from_tf_release_too(self, mushroom):
        # rules_from_release accepts any PrivateFIMResult.
        from repro.baselines.tf import tf_method

        release = tf_method(mushroom, k=30, epsilon=5.0, m=2, rng=3)
        rules = rules_from_release(release, min_confidence=0.5)
        for rule in rules:
            assert rule.itemset in release.itemset_set()


class TestStress:
    def test_single_transaction_database(self):
        database = TransactionDatabase([(0, 1, 2)], num_items=3)
        release = privbasis(database, k=3, epsilon=1.0, rng=0)
        assert len(release.itemsets) >= 1

    def test_single_item_vocabulary(self):
        database = TransactionDatabase(
            [(0,)] * 10, num_items=1
        )
        release = privbasis(database, k=1, epsilon=1.0, rng=0)
        assert release.itemsets[0].itemset == (0,)

    def test_transactions_with_empty_rows(self):
        database = TransactionDatabase(
            [(0, 1), (), (1,), ()], num_items=2
        )
        release = privbasis(database, k=2, epsilon=1.0, rng=0)
        assert len(release.itemsets) >= 1

    def test_minuscule_epsilon_runs(self, mushroom):
        # Utility is garbage but nothing crashes or hangs.
        release = privbasis(mushroom, k=10, epsilon=1e-6, rng=0)
        assert len(release.itemsets) >= 1

    def test_threshold_above_all_frequencies(self, mushroom):
        release = privbasis_threshold(
            mushroom, theta=0.999999, epsilon=2.0, rng=0
        )
        # Nothing (or nearly nothing) clears the bar — and that's a
        # valid, empty-ish release, not an error.
        assert len(release.itemsets) <= 5

    def test_k_far_beyond_distinct_itemsets(self):
        database = TransactionDatabase(
            [(0, 1)] * 5 + [(1,)] * 5, num_items=2
        )
        release = privbasis(database, k=1000, epsilon=5.0, rng=0)
        # Candidate space has at most 3 non-empty subsets of {0, 1}.
        assert len(release.itemsets) <= 3

    def test_zero_transactions_rejected_cleanly(self):
        database = TransactionDatabase([], num_items=4)
        with pytest.raises(ValidationError):
            privbasis_threshold(database, 0.5, 1.0, rng=0)


class TestDeterminismAcrossExtensions:
    def test_same_seed_same_everything(self, mushroom):
        def run():
            release = privbasis_threshold(
                mushroom, theta=0.45, epsilon=1.0, rng=77
            )
            rules = rules_from_release(release, min_confidence=0.5)
            return (
                [entry.itemset for entry in release.itemsets],
                [(r.antecedent, r.consequent) for r in rules],
            )

        assert run() == run()

    def test_different_seeds_differ(self, mushroom):
        first = privbasis(mushroom, k=40, epsilon=0.2, rng=1)
        second = privbasis(mushroom, k=40, epsilon=0.2, rng=2)
        assert [e.noisy_count for e in first.itemsets] != [
            e.noisy_count for e in second.itemsets
        ]
