"""Tests for the TF baseline (Bhaskar et al. reimplementation)."""

import math

import numpy as np
import pytest

from repro.baselines.tf import (
    _laplace_order_statistics,
    _raise_floor_to_cap,
    _standard_laplace_ppf_log,
    tf_method,
)
from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError
from repro.fim.topk import top_k_itemsets

HUGE_EPSILON = 1e7


class TestValidation:
    def test_parameters(self, dense_db):
        with pytest.raises(ValidationError):
            tf_method(dense_db, k=0, epsilon=1.0, m=1)
        with pytest.raises(ValidationError):
            tf_method(dense_db, k=1, epsilon=0.0, m=1)
        with pytest.raises(ValidationError):
            tf_method(dense_db, k=1, epsilon=1.0, m=0)
        with pytest.raises(ValidationError):
            tf_method(dense_db, k=1, epsilon=1.0, m=1, rho=0.0)
        with pytest.raises(ValidationError):
            tf_method(dense_db, k=1, epsilon=1.0, m=1, variant="x")


class TestEndToEnd:
    def test_returns_k_itemsets(self, dense_db):
        result = tf_method(dense_db, k=10, epsilon=1.0, m=2, rng=0)
        assert len(result.itemsets) == 10
        assert result.method == "tf-laplace"

    def test_em_variant(self, dense_db):
        result = tf_method(dense_db, k=10, epsilon=1.0, m=2,
                           variant="em", rng=0)
        assert len(result.itemsets) == 10
        assert result.method == "tf-em"

    def test_no_duplicate_itemsets(self, dense_db):
        result = tf_method(dense_db, k=15, epsilon=0.3, m=2, rng=1)
        assert len(result.itemset_set()) == 15

    def test_length_cap_respected(self, dense_db):
        for variant in ("laplace", "em"):
            result = tf_method(dense_db, k=10, epsilon=0.5, m=2,
                               variant=variant, rng=2)
            assert all(
                len(entry.itemset) <= 2 for entry in result.itemsets
            )

    def test_huge_epsilon_recovers_topk(self, dense_db):
        # Exact support ties make the identity of the k-th itemset
        # ambiguous; compare the multiset of true supports instead.
        truth_supports = sorted(
            support
            for _, support in top_k_itemsets(dense_db, 10, max_length=3)
        )
        for variant in ("laplace", "em"):
            result = tf_method(
                dense_db, k=10, epsilon=HUGE_EPSILON, m=3,
                variant=variant, rng=3,
            )
            selected_supports = sorted(
                dense_db.support(entry.itemset)
                for entry in result.itemsets
            )
            assert selected_supports == truth_supports

    def test_deterministic_under_seed(self, dense_db):
        first = tf_method(dense_db, k=10, epsilon=0.5, m=2, rng=7)
        second = tf_method(dense_db, k=10, epsilon=0.5, m=2, rng=7)
        assert first.itemset_set() == second.itemset_set()

    def test_small_m_misses_deep_itemsets(self, dense_db):
        # dense_db's top-15 contains size-3 itemsets; m=1 cannot
        # publish them (the paper's core criticism).
        truth = top_k_itemsets(dense_db, 15)
        deep = {i for i, _ in truth if len(i) >= 2}
        assert deep  # premise
        result = tf_method(dense_db, k=15, epsilon=HUGE_EPSILON, m=1,
                           rng=0)
        assert not (result.itemset_set() & deep)

    def test_noisy_frequencies_near_truth_at_huge_epsilon(self, dense_db):
        result = tf_method(dense_db, k=5, epsilon=HUGE_EPSILON, m=2,
                           rng=0)
        n = dense_db.num_transactions
        for entry in result.itemsets:
            true_frequency = dense_db.support(entry.itemset) / n
            assert entry.noisy_frequency == pytest.approx(
                true_frequency, abs=1e-3
            )


class TestDegenerateRegime:
    def test_tiny_epsilon_still_runs(self, dense_db):
        # γ ≫ f_k: no pruning; the implicit pool dominates.  The run
        # must still return k itemsets (mostly junk — that is the
        # paper's point).
        result = tf_method(dense_db, k=20, epsilon=0.05, m=2, rng=5)
        assert len(result.itemsets) == 20

    def test_explicit_cap_engages(self, dense_db):
        result = tf_method(
            dense_db, k=10, epsilon=0.05, m=2, explicit_cap=50, rng=6
        )
        assert len(result.itemsets) == 10


class TestRaiseFloor:
    def test_no_raise_needed(self):
        supports = np.array([10, 8, 5, 1])
        assert _raise_floor_to_cap(supports, 1, 1, cap=100) == 1

    def test_raises_until_bound_fits(self):
        supports = np.array([100] * 50 + [10] * 50)
        # m=2 with 100 items → 5050 candidates > 60; with 50 → 1275;
        # the floor must rise above 10 → bound C(50,2)+50 = 1275 > 60
        # → keeps rising to exclude everything except... cap tiny.
        floor = _raise_floor_to_cap(supports, 1, 2, cap=60)
        assert floor > 10

    def test_monotone_in_cap(self):
        supports = np.arange(1, 200)
        loose = _raise_floor_to_cap(supports, 1, 2, cap=10_000)
        tight = _raise_floor_to_cap(supports, 1, 2, cap=100)
        assert tight >= loose


class TestOrderStatistics:
    def test_descending(self):
        rng = np.random.default_rng(0)
        values = _laplace_order_statistics(10_000, 0.0, 1.0, 50, rng)
        assert values == sorted(values, reverse=True)

    def test_count_limit(self):
        rng = np.random.default_rng(0)
        assert len(_laplace_order_statistics(3, 0.0, 1.0, 10, rng)) == 3
        assert len(_laplace_order_statistics(0, 0.0, 1.0, 10, rng)) == 0

    def test_max_distribution_matches_direct_sampling(self):
        # KS-style check: the sampled maximum of M=50 draws must match
        # the empirical maximum of direct sampling.
        rng = np.random.default_rng(1)
        sampled = np.array([
            _laplace_order_statistics(50, 0.0, 1.0, 1, rng)[0]
            for _ in range(4000)
        ])
        direct = np.array([
            rng.laplace(0.0, 1.0, size=50).max() for _ in range(4000)
        ])
        # Compare medians and upper quantiles.
        assert np.median(sampled) == pytest.approx(
            np.median(direct), abs=0.1
        )
        assert np.quantile(sampled, 0.9) == pytest.approx(
            np.quantile(direct, 0.9), abs=0.2
        )

    def test_huge_pool_is_finite_and_large(self):
        rng = np.random.default_rng(2)
        values = _laplace_order_statistics(10**9, 0.0, 1.0, 5, rng)
        assert all(math.isfinite(value) for value in values)
        # Max of 1e9 standard Laplace draws concentrates near
        # ln(M/2) ≈ 20.
        assert 15 < values[0] < 27

    def test_ppf_log_roundtrip(self):
        from repro.dp.laplace import laplace_cdf

        for q in (0.001, 0.3, 0.5, 0.9, 0.999999):
            z = _standard_laplace_ppf_log(math.log(q))
            assert laplace_cdf(z, 1.0) == pytest.approx(q, rel=1e-9)


class TestExplicitMiningCache:
    def test_cache_hit_returns_same_object(self, dense_db):
        from repro.baselines.tf import (
            _mine_explicit,
            clear_explicit_mining_cache,
        )

        clear_explicit_mining_cache()
        first = _mine_explicit(dense_db, m=2, truncation=0.2, explicit_cap=10**6)
        second = _mine_explicit(dense_db, m=2, truncation=0.2, explicit_cap=10**6)
        assert first is second

    def test_cache_validates_database_identity(self, dense_db, tiny_db):
        # Two different databases must never share an entry even if a
        # stale id were reused; the identity check guards this.
        from repro.baselines.tf import (
            _mine_explicit,
            clear_explicit_mining_cache,
        )

        clear_explicit_mining_cache()
        dense = _mine_explicit(dense_db, m=1, truncation=0.0, explicit_cap=10**6)
        tiny = _mine_explicit(tiny_db, m=1, truncation=0.0, explicit_cap=10**6)
        assert dense is not tiny
        singleton_supports = {s[0]: c for s, c in tiny.items() if len(s) == 1}
        assert singleton_supports[0] == tiny_db.support((0,))

    def test_cache_bounded(self, tiny_db):
        from repro.baselines import tf as tf_module

        tf_module.clear_explicit_mining_cache()
        for floor_seed in range(tf_module._EXPLICIT_MINING_CACHE_LIMIT + 5):
            # Vary m to force distinct keys against the same database.
            tf_module._EXPLICIT_MINING_CACHE[(floor_seed, 1, 1)] = (
                tiny_db,
                {},
            )
            if (
                len(tf_module._EXPLICIT_MINING_CACHE)
                > tf_module._EXPLICIT_MINING_CACHE_LIMIT
            ):
                break
        tf_module._mine_explicit(tiny_db, m=1, truncation=0.0, explicit_cap=10**6)
        assert (
            len(tf_module._EXPLICIT_MINING_CACHE)
            <= tf_module._EXPLICIT_MINING_CACHE_LIMIT
        )
        tf_module.clear_explicit_mining_cache()
