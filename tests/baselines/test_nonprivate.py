"""Tests for the exact (non-private) reference release."""

import pytest

from repro.baselines.nonprivate import exact_top_k
from repro.errors import ValidationError
from repro.fim.topk import top_k_itemsets


class TestExactTopK:
    def test_matches_miner(self, tiny_db):
        release = exact_top_k(tiny_db, 4)
        mined = top_k_itemsets(tiny_db, 4)
        assert [e.itemset for e in release.itemsets] == [
            itemset for itemset, _ in mined
        ]

    def test_exact_frequencies(self, tiny_db):
        release = exact_top_k(tiny_db, 3)
        for entry in release.itemsets:
            assert entry.noisy_frequency == pytest.approx(
                tiny_db.frequency(entry.itemset)
            )
            assert entry.count_variance == 0.0

    def test_epsilon_is_infinite(self, tiny_db):
        assert exact_top_k(tiny_db, 1).epsilon == float("inf")

    def test_validation(self, tiny_db):
        with pytest.raises(ValidationError):
            exact_top_k(tiny_db, 0)
