"""Tests for TF feasibility analysis (paper Eq. 3 and Table 2(b))."""

import math

import pytest

from repro.baselines.tf_analysis import (
    candidate_family_size,
    gamma_threshold,
    log_candidate_family_size,
    tf_feasibility,
)
from repro.errors import ValidationError


class TestCandidateFamily:
    def test_m_one(self):
        assert candidate_family_size(100, 1) == 100

    def test_m_two(self):
        assert candidate_family_size(10, 2) == 10 + 45

    def test_huge_vocabulary_exact(self):
        # Kosarak-scale: must not overflow.
        size = candidate_family_size(41270, 2)
        assert size == 41270 + 41270 * 41269 // 2

    def test_log_matches_exact(self):
        assert log_candidate_family_size(1000, 2) == pytest.approx(
            math.log(candidate_family_size(1000, 2))
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            candidate_family_size(0, 1)
        with pytest.raises(ValidationError):
            candidate_family_size(10, 0)


class TestGamma:
    def test_paper_mushroom_value(self):
        # Paper Table 2(b): mushroom, k=100, m=2, ε=1, ρ=0.9 →
        # γ·N = 5433 (N = 8124, |I| = 119).
        gamma = gamma_threshold(
            k=100, epsilon=1.0, num_transactions=8124, num_items=119,
            m=2, rho=0.9,
        )
        assert gamma * 8124 == pytest.approx(5433, abs=2)

    def test_paper_retail_value(self):
        # Retail, k=100, m=1: γ·N = 5768 (|I| = 16470).
        gamma = gamma_threshold(
            k=100, epsilon=1.0, num_transactions=88162,
            num_items=16470, m=1, rho=0.9,
        )
        assert gamma * 88162 == pytest.approx(5768, abs=2)

    def test_paper_pumsb_value(self):
        # Pumsb-star, k=200, m=3: γ·N = 21235 (|I| = 2088).
        gamma = gamma_threshold(
            k=200, epsilon=1.0, num_transactions=49046,
            num_items=2088, m=3, rho=0.9,
        )
        assert gamma * 49046 == pytest.approx(21235, abs=5)

    def test_gamma_scales_inverse_epsilon(self):
        small = gamma_threshold(10, 2.0, 1000, 50, 2)
        large = gamma_threshold(10, 0.5, 1000, 50, 2)
        assert large == pytest.approx(4 * small)

    def test_gamma_grows_linearly_in_k(self):
        one = gamma_threshold(10, 1.0, 1000, 50, 2)
        # γ(2k)/γ(k) slightly above 2 because of the ln(k/ρ) term.
        two = gamma_threshold(20, 1.0, 1000, 50, 2)
        assert 2.0 < two / one < 2.2

    def test_validation(self):
        with pytest.raises(ValidationError):
            gamma_threshold(0, 1.0, 100, 10, 1)
        with pytest.raises(ValidationError):
            gamma_threshold(1, 1.0, 100, 10, 1, rho=1.5)


class TestFeasibility:
    def test_degenerate_flag(self, dense_db):
        # Tiny N with large k → γ explodes → degenerate.
        row = tf_feasibility(dense_db, k=50, m=2, epsilon=0.5)
        assert row.is_degenerate
        assert row.truncation_frequency <= 0 or row.gamma >= row.fk

    def test_feasible_at_huge_epsilon(self, dense_db):
        row = tf_feasibility(dense_db, k=5, m=2, epsilon=1000.0)
        assert not row.is_degenerate
        assert row.truncation_frequency > 0

    def test_row_fields(self, dense_db):
        row = tf_feasibility(
            dense_db, k=10, m=2, epsilon=1.0, dataset="dense"
        )
        assert row.dataset == "dense"
        assert row.fk_count == pytest.approx(
            row.fk * dense_db.num_transactions
        )
        assert row.universe_size == candidate_family_size(
            dense_db.num_items, 2
        )
