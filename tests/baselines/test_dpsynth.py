"""Tests for the DiffPart-style synthetic release (Chen et al.)."""

import numpy as np
import pytest

from repro.baselines.dpsynth import (
    TaxonomyNode,
    dpsynth_release,
    dpsynth_top_k,
    taxonomy_height,
)
from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError
from repro.fim.topk import exact_topk_itemset_set


def msnbc_like(
    num_transactions=20_000, num_items=17, seed=7
) -> TransactionDatabase:
    """Small-vocabulary, short-transaction data — DiffPart's regime."""
    rng = np.random.default_rng(seed)
    popularity = 1.0 / np.arange(1, num_items + 1) ** 1.2
    popularity /= popularity.sum()
    rows = []
    for _ in range(num_transactions):
        size = min(num_items, 1 + rng.geometric(0.45))
        rows.append(
            tuple(
                np.sort(
                    rng.choice(
                        num_items, size=size, replace=False, p=popularity
                    )
                )
            )
        )
    return TransactionDatabase(rows, num_items=num_items)


class TestTaxonomy:
    def test_children_partition_the_range(self):
        node = TaxonomyNode(0, 17)
        children = node.children(4)
        assert children[0].lo == 0
        assert children[-1].hi == 17
        covered = []
        for child in children:
            covered.extend(range(child.lo, child.hi))
        assert covered == list(range(17))

    def test_leaf_has_no_children(self):
        assert TaxonomyNode(3, 4).is_leaf
        assert TaxonomyNode(3, 4).children(4) == []

    def test_height(self):
        assert taxonomy_height(17, 8) == 2
        assert taxonomy_height(119, 8) == 3
        assert taxonomy_height(1, 8) == 1
        assert taxonomy_height(16470, 8) == 5


class TestRelease:
    def test_small_vocabulary_produces_data(self):
        database = msnbc_like()
        synthetic = dpsynth_release(database, epsilon=1.0, rng=0)
        # DiffPart's home turf: most of the mass survives.
        assert synthetic.num_transactions > 0.5 * (
            database.num_transactions
        )
        assert synthetic.num_items == database.num_items

    def test_top_k_accurate_on_small_vocabulary(self):
        database = msnbc_like()
        top = dpsynth_top_k(database, 15, epsilon=1.0, rng=0)
        exact = exact_topk_itemset_set(database, 15)
        hits = sum(1 for itemset, _ in top if itemset in exact)
        assert hits >= 10

    def test_large_vocabulary_empties_out(self, small_db):
        # 40 items and 400 transactions of length ~8: counts spread
        # over far more leaf partitions than the threshold tolerates
        # (the PrivBasis paper's core criticism).
        synthetic = dpsynth_release(small_db, epsilon=1.0, rng=0)
        assert synthetic.num_transactions <= 40
        assert dpsynth_top_k(small_db, 10, epsilon=1.0, rng=0) == [] or (
            len(dpsynth_top_k(small_db, 10, epsilon=1.0, rng=0)) <= 10
        )

    def test_empty_synthetic_gives_empty_topk(self, small_db):
        if dpsynth_release(small_db, 1.0, rng=0).num_transactions == 0:
            assert dpsynth_top_k(small_db, 10, 1.0, rng=0) == []

    def test_deterministic_under_seed(self):
        database = msnbc_like(num_transactions=2000)
        first = dpsynth_release(database, 1.0, rng=5)
        second = dpsynth_release(database, 1.0, rng=5)
        assert list(first) == list(second)

    def test_more_budget_more_survivors(self):
        database = msnbc_like(num_transactions=5000)
        starved = dpsynth_release(database, epsilon=0.05, rng=3)
        funded = dpsynth_release(database, epsilon=4.0, rng=3)
        assert funded.num_transactions >= starved.num_transactions

    def test_validation(self, tiny_db):
        with pytest.raises(ValidationError):
            dpsynth_release(tiny_db, epsilon=0.0)
        with pytest.raises(ValidationError):
            dpsynth_release(tiny_db, epsilon=1.0, fanout=1)
        with pytest.raises(ValidationError):
            dpsynth_release(tiny_db, 1.0, threshold_factor=-1.0)
        with pytest.raises(ValidationError):
            dpsynth_top_k(tiny_db, 0, 1.0)

    def test_synthetic_items_within_vocabulary(self):
        database = msnbc_like(num_transactions=3000)
        synthetic = dpsynth_release(database, 1.0, rng=2)
        for transaction in synthetic:
            assert all(
                0 <= item < database.num_items for item in transaction
            )
