"""Tests for association-rule generation over noisy frequencies."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.privbasis import privbasis
from repro.errors import ValidationError
from repro.rules.association import (
    AssociationRule,
    rules_from_frequencies,
    rules_from_release,
)

#: Exact frequencies of a tiny world: f(a)=0.8, f(b)=0.5, f(ab)=0.4.
SIMPLE = {(0,): 0.8, (1,): 0.5, (0, 1): 0.4}


class TestRulesFromFrequencies:
    def test_basic_confidences(self):
        rules = rules_from_frequencies(SIMPLE, min_confidence=0.0)
        by_parts = {
            (rule.antecedent, rule.consequent): rule for rule in rules
        }
        a_to_b = by_parts[((0,), (1,))]
        assert a_to_b.confidence == pytest.approx(0.4 / 0.8)
        assert a_to_b.support == pytest.approx(0.4)
        assert a_to_b.lift == pytest.approx(0.4 / (0.8 * 0.5))
        b_to_a = by_parts[((1,), (0,))]
        assert b_to_a.confidence == pytest.approx(0.4 / 0.5)

    def test_min_confidence_filters(self):
        rules = rules_from_frequencies(SIMPLE, min_confidence=0.75)
        assert [(r.antecedent, r.consequent) for r in rules] == [
            ((1,), (0,))
        ]

    def test_min_support_filters(self):
        rules = rules_from_frequencies(
            SIMPLE, min_support=0.45, min_confidence=0.0
        )
        assert rules == []

    def test_missing_marginal_skips_rule(self):
        # f(b) missing: no rule with antecedent or consequent {b}
        # can be scored for lift/confidence respectively.
        family = {(0,): 0.8, (0, 1): 0.4}
        rules = rules_from_frequencies(family, min_confidence=0.0)
        assert rules == []

    def test_three_way_rules(self):
        family = {
            (0,): 0.9,
            (1,): 0.8,
            (2,): 0.7,
            (0, 1): 0.75,
            (0, 2): 0.65,
            (1, 2): 0.6,
            (0, 1, 2): 0.55,
        }
        rules = rules_from_frequencies(family, min_confidence=0.0)
        pairs = {(rule.antecedent, rule.consequent) for rule in rules}
        # All 6 single-consequent/antecedent splits of the triple plus
        # 6 from the pairs = 6 + 6 (triple has 2-elem antecedents and
        # 1-elem, both ways: 3 + 3) — just verify the triple's splits.
        assert ((0, 1), (2,)) in pairs
        assert ((2,), (0, 1)) in pairs
        assert ((0, 2), (1,)) in pairs
        triple_rule = next(
            rule for rule in rules
            if (rule.antecedent, rule.consequent) == ((0, 1), (2,))
        )
        assert triple_rule.confidence == pytest.approx(0.55 / 0.75)

    def test_max_consequent_size(self):
        family = {
            (0,): 0.9, (1,): 0.8, (2,): 0.7,
            (0, 1): 0.7, (0, 2): 0.6, (1, 2): 0.6,
            (0, 1, 2): 0.5,
        }
        rules = rules_from_frequencies(
            family, min_confidence=0.0, max_consequent_size=1
        )
        assert all(len(rule.consequent) == 1 for rule in rules)

    def test_noisy_confidence_clamped(self):
        # Noise made the superset "more frequent" than the subset.
        family = {(0,): 0.3, (1,): 0.5, (0, 1): 0.45}
        rules = rules_from_frequencies(family, min_confidence=0.0)
        rule = next(
            r for r in rules
            if (r.antecedent, r.consequent) == ((0,), (1,))
        )
        assert rule.confidence == 1.0
        assert rule.raw_confidence == pytest.approx(1.5)

    def test_zero_antecedent_frequency_skipped(self):
        family = {(0,): 0.0, (1,): 0.5, (0, 1): 0.1}
        rules = rules_from_frequencies(family, min_confidence=0.0)
        assert all(rule.antecedent != (0,) for rule in rules)

    def test_sorted_by_confidence_then_support(self):
        family = {
            (0,): 1.0, (1,): 1.0, (2,): 1.0, (3,): 1.0,
            (0, 1): 0.9, (2, 3): 0.5,
        }
        rules = rules_from_frequencies(family, min_confidence=0.0)
        confidences = [rule.confidence for rule in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_validation(self):
        with pytest.raises(ValidationError):
            rules_from_frequencies(SIMPLE, min_confidence=1.5)

    def test_str_rendering(self):
        rules = rules_from_frequencies(SIMPLE, min_confidence=0.0)
        text = str(rules[0])
        assert "->" in text
        assert "conf" in text

    def test_itemset_property(self):
        rule = AssociationRule(
            antecedent=(2,), consequent=(0, 1),
            support=0.1, confidence=0.5, lift=None, raw_confidence=0.5,
        )
        assert rule.itemset == (0, 1, 2)


class TestRulesFromRelease:
    def test_end_to_end_on_private_release(self, dense_db):
        release = privbasis(dense_db, k=30, epsilon=100.0, rng=5)
        rules = rules_from_release(release, min_confidence=0.5)
        # At huge epsilon the frequencies are near-exact, so every
        # rule's confidence must be near its true value.
        n = dense_db.num_transactions
        for rule in rules[:20]:
            whole = dense_db.support(rule.itemset) / n
            antecedent = dense_db.support(rule.antecedent) / n
            if antecedent > 0:
                assert rule.confidence == pytest.approx(
                    min(1.0, whole / antecedent), abs=0.05
                )

    def test_rules_only_from_released_itemsets(self, dense_db):
        release = privbasis(dense_db, k=10, epsilon=100.0, rng=5)
        released = release.itemset_set()
        rules = rules_from_release(release, min_confidence=0.0)
        for rule in rules:
            assert rule.itemset in released
            assert rule.antecedent in released
            assert rule.consequent in released


@st.composite
def frequency_families(draw):
    """Families over ≤ 5 items with anti-monotone-ish frequencies."""
    num_items = draw(st.integers(min_value=2, max_value=5))
    itemsets = [
        tuple(i for i in range(num_items) if mask >> i & 1)
        for mask in range(1, 2**num_items)
    ]
    chosen = draw(
        st.lists(
            st.sampled_from(itemsets),
            min_size=1,
            max_size=12,
            unique=True,
        )
    )
    return {
        itemset: draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        )
        for itemset in chosen
    }


class TestProperties:
    @given(frequency_families())
    @settings(max_examples=150, deadline=None)
    def test_all_outputs_well_formed(self, family):
        rules = rules_from_frequencies(family, min_confidence=0.0)
        for rule in rules:
            assert rule.antecedent
            assert rule.consequent
            assert not set(rule.antecedent) & set(rule.consequent)
            assert 0.0 <= rule.confidence <= 1.0
            assert rule.itemset in family
            assert rule.antecedent in family
            assert rule.consequent in family

    @given(frequency_families(), st.floats(min_value=0, max_value=1))
    @settings(max_examples=100, deadline=None)
    def test_min_confidence_monotone(self, family, cutoff):
        loose = rules_from_frequencies(family, min_confidence=0.0)
        strict = rules_from_frequencies(family, min_confidence=cutoff)
        loose_keys = {(r.antecedent, r.consequent) for r in loose}
        strict_keys = {(r.antecedent, r.consequent) for r in strict}
        assert strict_keys <= loose_keys
        for rule in strict:
            assert rule.confidence >= cutoff

    @given(frequency_families())
    @settings(max_examples=100, deadline=None)
    def test_deterministic(self, family):
        first = rules_from_frequencies(family, min_confidence=0.0)
        second = rules_from_frequencies(family, min_confidence=0.0)
        assert first == second
