#!/usr/bin/env python
"""Build the HTML API reference for :mod:`repro` from docstrings.

Preferred path (CI): render with `pdoc <https://pdoc.dev>`_ and fail
on **any** warning it emits (broken cross-references, unparsable
annotations), so the published reference cannot rot silently.

Fallback path (no pdoc installed): audit that every public module,
class, and top-level function carries a docstring, then emit a plain
HTML module index from the docstring summaries.  The script therefore
always either produces a browsable artifact or exits non-zero; pass
``--strict`` to additionally require pdoc itself (CI does).

Usage::

    python docs/build_api.py [--out docs/_build/api] [--strict]
"""

from __future__ import annotations

import argparse
import html
import importlib
import inspect
import pkgutil
import sys
import warnings
from pathlib import Path
from typing import Iterator, List

REPO_ROOT = Path(__file__).resolve().parent.parent


def iter_module_names() -> Iterator[str]:
    """Every importable module in the ``repro`` package, root first."""
    import repro

    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


def audit_docstrings(module_names: List[str]) -> List[str]:
    """Names of public modules/classes/functions missing docstrings."""
    missing: List[str] = []
    for name in module_names:
        module = importlib.import_module(name)
        if not (module.__doc__ or "").strip():
            missing.append(name)
        for attribute, value in vars(module).items():
            if attribute.startswith("_"):
                continue
            # Only audit objects *defined* here, not re-exports.
            if getattr(value, "__module__", None) != name:
                continue
            if not (inspect.isclass(value) or inspect.isfunction(value)):
                continue
            if not (getattr(value, "__doc__", None) or "").strip():
                missing.append(f"{name}.{attribute}")
    return missing


def build_with_pdoc(out_dir: Path) -> int:
    """Render with pdoc; any warning fails the build."""
    import pdoc

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        pdoc.pdoc("repro", output_directory=out_dir)
    problems = [
        f"{entry.category.__name__}: {entry.message}" for entry in caught
    ]
    if problems:
        print(f"pdoc reported {len(problems)} warning(s):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"pdoc reference written to {out_dir}")
    return 0


def build_fallback_index(out_dir: Path, module_names: List[str]) -> None:
    """Emit a minimal module index from docstring summaries."""
    rows = []
    for name in module_names:
        module = importlib.import_module(name)
        summary = (module.__doc__ or "").strip().splitlines()
        first_line = summary[0] if summary else ""
        rows.append(
            f"<tr><td><code>{html.escape(name)}</code></td>"
            f"<td>{html.escape(first_line)}</td></tr>"
        )
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "index.html").write_text(
        "<!doctype html><html><head><meta charset='utf-8'>"
        "<title>repro API index</title></head><body>"
        "<h1>repro — module index</h1>"
        "<p>Generated without pdoc (docstring summaries only; install "
        "<code>pdoc</code> for the full reference).</p>"
        f"<table border='1' cellpadding='4'>{''.join(rows)}</table>"
        "</body></html>",
        encoding="utf-8",
    )
    print(f"fallback module index written to {out_dir / 'index.html'}")


def main(argv: List[str] | None = None) -> int:
    """Build the reference; non-zero exit on any docs problem."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "docs" / "_build" / "api"),
        help="output directory for the rendered HTML",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail if pdoc is unavailable instead of falling back",
    )
    arguments = parser.parse_args(argv)
    sys.path.insert(0, str(REPO_ROOT / "src"))
    out_dir = Path(arguments.out)

    module_names = list(iter_module_names())
    missing = audit_docstrings(module_names)
    if missing:
        print(f"{len(missing)} public object(s) missing docstrings:")
        for name in missing:
            print(f"  - {name}")
        return 1
    print(f"docstring audit ok: {len(module_names)} modules")

    try:
        import pdoc  # noqa: F401 — availability probe
    except ImportError:
        if arguments.strict:
            print("pdoc is required with --strict: pip install pdoc")
            return 1
        build_fallback_index(out_dir, module_names)
        return 0
    return build_with_pdoc(out_dir)


if __name__ == "__main__":
    sys.exit(main())
