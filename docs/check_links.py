#!/usr/bin/env python
"""Check Markdown links in ``README.md`` and ``docs/*.md`` (stdlib only).

Validates that

* every relative link target exists on disk (anchors stripped);
* every in-page anchor (``#section``) matches a heading in the target
  file, using GitHub's slugging rules (lowercase, spaces to dashes,
  punctuation dropped);
* absolute URLs are well-formed ``http(s)`` — they are **not**
  fetched, so CI stays hermetic and immune to external flakiness.

Exit status is the number of broken links (0 = clean).

Usage::

    python docs/check_links.py [files...]   # default: README.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Set
from urllib.parse import urlsplit

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown links: [text](target) — images included.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)  # inline formatting
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_in(path: Path) -> Set[str]:
    """All heading anchors a Markdown file defines."""
    text = path.read_text(encoding="utf-8")
    text = _CODE_FENCE.sub("", text)
    return {github_slug(match) for match in _HEADING.findall(text)}


def check_file(path: Path) -> List[str]:
    """Broken-link descriptions for one Markdown file."""
    problems: List[str] = []
    text = path.read_text(encoding="utf-8")
    text = _CODE_FENCE.sub("", text)
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://")):
            parts = urlsplit(target)
            if not parts.netloc:
                problems.append(f"{path}: malformed URL {target!r}")
            continue
        if target.startswith("mailto:"):
            continue
        if target.startswith("#"):
            if github_slug(target[1:]) not in anchors_in(path):
                problems.append(
                    f"{path}: missing in-page anchor {target!r}"
                )
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append(
                f"{path}: broken relative link {target!r} "
                f"(no {resolved})"
            )
            continue
        if anchor and resolved.suffix == ".md":
            if github_slug(anchor) not in anchors_in(resolved):
                problems.append(
                    f"{path}: anchor {anchor!r} not found in "
                    f"{resolved.name}"
                )
    return problems


def main(argv: List[str] | None = None) -> int:
    """Check the given files (default README + docs); exit = #broken."""
    arguments = sys.argv[1:] if argv is None else argv
    if arguments:
        files = [Path(name) for name in arguments]
    else:
        files = [REPO_ROOT / "README.md"]
        files += sorted((REPO_ROOT / "docs").glob("*.md"))
    problems: List[str] = []
    checked = 0
    for path in files:
        if not path.exists():
            problems.append(f"{path}: file not found")
            continue
        checked += 1
        problems.extend(check_file(path))
    if problems:
        print(f"{len(problems)} broken link(s) in {checked} file(s):")
        for problem in problems:
            print(f"  - {problem}")
    else:
        print(f"links ok across {checked} file(s)")
    return len(problems)


if __name__ == "__main__":
    sys.exit(main())
