"""Crash-tolerant write-ahead log: CRC-framed JSONL with batched fsync.

The durability primitive every store in :mod:`repro.store` builds on.
A :class:`WriteAheadLog` is an append-only file of JSON records, one
per line, each framed with a sequence number and a CRC-32 of its
canonical payload bytes::

    {"seq": 17, "crc": 2596996162, "payload": {...}}\\n

The framing buys exactly the property a write-ahead log needs: after a
crash (power loss, ``kill -9``, full disk) the tail of the file may
hold a partial or corrupted line, and :meth:`WriteAheadLog.replay`
recovers every record *up to* the first damaged one, reporting how
many trailing bytes it dropped.  A record that replays is a record
that was fully written; a record that does not was never acknowledged
durable, so dropping it is correct.

Durability contract
-------------------
``append`` writes and flushes the record into the OS page cache but
does **not** force it to disk; :meth:`sync` is the durability barrier
(``fsync``).  Callers that must not acknowledge an action before its
record is on disk — the ε-debit path — append first, do the work, and
call ``sync()`` immediately before releasing the result.  Because
``sync`` is a no-op when nothing was appended since the last barrier,
concurrent writers naturally share fsyncs (group commit): whichever
barrier runs first pays for every record buffered so far.

``fsync`` policies:

* ``"batch"`` (default) — the contract above: appends buffer, barriers
  pay one fsync for everything pending.
* ``"always"`` — every append fsyncs immediately (simplest reasoning,
  slowest; useful for tiny control files).
* ``"never"`` — barriers flush but never fsync (tests and benchmarks
  measuring the non-durability ceiling).

Multi-process sharing
---------------------
A WAL file can be shared by several *processes* (the cluster mode of
:mod:`repro.service.cluster`): appends go through ``O_APPEND``
handles, so concurrent single-``write`` line appends never interleave.
The one unsafe combination is replay's torn-tail **truncation** racing
another process's append — pass a :class:`FileLock` as ``lock`` and
every append/replay/rewrite serializes on it, making recovery repair
safe while writers are live.  ``sync`` needs no lock (fsync mutates
nothing).
"""

from __future__ import annotations

import contextlib
import json
import os
import zlib
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import StateStoreError, ValidationError

try:  # POSIX only; cluster mode refuses to start without it
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

__all__ = ["FileLock", "WriteAheadLog", "ReplayResult", "FSYNC_POLICIES"]

#: The fsync policies :class:`WriteAheadLog` accepts.
FSYNC_POLICIES = ("batch", "always", "never")


class FileLock:
    """An advisory cross-process mutex over one lock file (``flock``).

    The serialization primitive behind cluster-shared stores: every
    worker process (and every thread within one — each hold opens its
    own descriptor, and ``flock`` locks conflict across descriptors)
    that holds the lock excludes all others, on the same machine,
    for the duration of a :meth:`held` block::

        lock = FileLock(state_dir / "ledger.lock")
        with lock.held():
            ...  # read-check-append atomically across processes

    Not reentrant: acquiring while already held by the same thread
    deadlocks, so holders must never nest.  POSIX-only (``fcntl``);
    :meth:`held` raises :class:`~repro.errors.StateStoreError` on
    platforms without it rather than silently not locking.
    """

    def __init__(self, path) -> None:
        self._path = Path(path)

    @property
    def path(self) -> Path:
        """Where the lock file lives."""
        return self._path

    @contextlib.contextmanager
    def held(self) -> Iterator[None]:
        """Hold the exclusive lock for the duration of the block."""
        if fcntl is None:
            raise StateStoreError(
                "file locking needs fcntl (POSIX); shared state "
                "directories are not supported on this platform"
            )
        self._path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(str(self._path), os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    def __repr__(self) -> str:
        return f"FileLock({str(self._path)!r})"


class ReplayResult:
    """What :meth:`WriteAheadLog.replay` recovered from disk.

    ``records`` holds every intact payload in append order;
    ``torn_records`` counts damaged or partial trailing lines that
    were dropped (0 after a clean shutdown, usually 1 after a crash
    mid-append); ``next_seq`` is the sequence number the log will
    stamp on its next append.
    """

    def __init__(
        self, records: List[Dict[str, Any]], torn_records: int,
        next_seq: int,
    ) -> None:
        self.records = records
        self.torn_records = torn_records
        self.next_seq = next_seq

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (
            f"ReplayResult(records={len(self.records)}, "
            f"torn={self.torn_records})"
        )


def _frame(seq: int, payload: Dict[str, Any]) -> bytes:
    """Serialize one framed record line (canonical payload + CRC)."""
    try:
        body = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )
    except (TypeError, ValueError) as error:
        raise ValidationError(
            f"WAL payloads must be JSON-serializable: {error}"
        )
    crc = zlib.crc32(body.encode("utf-8"))
    return (
        f'{{"seq":{seq},"crc":{crc},"payload":{body}}}\n'.encode("utf-8")
    )


def _unframe(line: bytes) -> Optional[Tuple[int, Dict[str, Any]]]:
    """Parse one framed line; ``None`` if damaged or partial."""
    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    seq, crc, payload = (
        record.get("seq"), record.get("crc"), record.get("payload")
    )
    if not isinstance(seq, int) or not isinstance(crc, int):
        return None
    if not isinstance(payload, dict):
        return None
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(body.encode("utf-8")) != crc:
        return None
    return seq, payload


class WriteAheadLog:
    """One append-only, CRC-framed record file (see module docstring).

    Parameters
    ----------
    path:
        The log file; parent directories are created on first append.
    fsync:
        One of :data:`FSYNC_POLICIES` — when appends become durable.
    lock:
        Optional :class:`FileLock` serializing appends and replay
        truncation against other *processes* sharing this file (see
        the module docstring); ``None`` (default) assumes a single
        writing process.
    """

    def __init__(
        self, path, fsync: str = "batch",
        lock: Optional[FileLock] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValidationError(
                f"fsync must be one of {list(FSYNC_POLICIES)}, "
                f"got {fsync!r}"
            )
        self._path = Path(path)
        self._fsync = fsync
        self._lock = lock
        self._handle = None
        self._next_seq = 0
        #: Durability watermark: appends are numbered by
        #: ``self.appends`` and ``_synced`` is the count known to be
        #: on disk.  A barrier snapshots the append count *before*
        #: fsyncing and only advances the watermark to that snapshot,
        #: so a concurrent append racing the fsync is never claimed
        #: covered — which is what makes running the barrier on
        #: another thread safe.
        self._synced = 0
        #: fsync calls actually issued (telemetry for the batching
        #: benchmark: batched barriers should show far fewer syncs
        #: than appends).
        self.syncs = 0
        #: records appended through this handle's lifetime.
        self.appends = 0

    @property
    def path(self) -> Path:
        """Where the log lives on disk."""
        return self._path

    @property
    def fsync_policy(self) -> str:
        """The configured fsync policy."""
        return self._fsync

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _guard(self):
        """The cross-process critical section (no-op when unshared)."""
        if self._lock is None:
            return contextlib.nullcontext()
        return self._lock.held()

    def _ensure_open(self) -> None:
        if self._handle is None:
            created = not self._path.exists()
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self._path, "ab")
            if created:
                # The file's *directory entry* must survive power
                # loss too, or a crash could lose the whole log while
                # its records were dutifully fsynced.
                fsync_directory(self._path.parent)

    def append(self, payload: Dict[str, Any]) -> int:
        """Append one record; returns its sequence number.

        The record is flushed to the OS but durable only after the
        next :meth:`sync` barrier (policy ``"batch"``) or immediately
        (policy ``"always"``).
        """
        with self._guard():
            self._ensure_open()
            seq = self._next_seq
            self._handle.write(_frame(seq, payload))
            self._handle.flush()
            self._next_seq += 1
            self.appends += 1
            if self._fsync == "always":
                self._do_sync(self.appends)
        return seq

    def _do_sync(self, covered: int) -> None:
        os.fsync(self._handle.fileno())
        self.syncs += 1
        self._synced = max(self._synced, covered)

    def sync(self) -> None:
        """Durability barrier: every record appended *before this
        call* is on disk when it returns.

        A no-op when no such record is pending, so overlapping
        callers share fsyncs (group commit).  Safe to run from a
        worker thread while appends continue on another: the
        watermark only advances to the append count observed before
        the fsync, so a racing append is never claimed durable early.
        """
        if self._handle is None:
            return
        covered = self.appends
        if self._synced >= covered:
            return
        if self._fsync == "never":
            self._synced = covered
            return
        self._do_sync(covered)

    def close(self) -> None:
        """Flush, barrier, and close the file handle (reopened lazily)."""
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def replay(self) -> ReplayResult:
        """Read every intact record back, dropping a torn tail.

        Records are returned in append order.  Parsing stops at the
        first damaged line: a crash can only damage the tail (appends
        are sequential), so anything *after* a bad line was never
        acknowledged and must not be trusted.  The damaged suffix is
        then **truncated off the file** — leaving it in place would
        strand every future append behind an unparsable line, silently
        losing acknowledged records on the restart after next.  Also
        primes this handle's next sequence number, so a log can be
        replayed and then appended to.
        """
        records: List[Dict[str, Any]] = []
        torn = 0
        next_seq = 0
        intact_bytes = 0
        with self._guard():
            if self._path.exists():
                with open(self._path, "rb") as handle:
                    lines = handle.read().split(b"\n")
                # A trailing newline yields one empty final chunk; a
                # torn final line yields a non-empty chunk that fails
                # to parse.
                if lines and lines[-1] == b"":
                    lines.pop()
                for line in lines:
                    parsed = _unframe(line)
                    if parsed is None:
                        torn = 1 + sum(
                            1 for _ in lines[len(records) + 1:]
                        )
                        break
                    seq, payload = parsed
                    records.append(payload)
                    next_seq = seq + 1
                    intact_bytes += len(line) + 1
                if torn:
                    self.close()
                    with open(self._path, "rb+") as handle:
                        handle.truncate(intact_bytes)
                        handle.flush()
                        os.fsync(handle.fileno())
            self._next_seq = next_seq
        return ReplayResult(records, torn, next_seq)

    def rewrite(self, payloads: Iterable[Dict[str, Any]]) -> int:
        """Atomically replace the log's contents (compaction).

        Writes the new records to a sibling temp file, fsyncs it, and
        renames it over the log — a crash mid-compaction leaves either
        the old log or the new one, never a mix.  Returns the number
        of records written.
        """
        with self._guard():
            self.close()
            self._path.parent.mkdir(parents=True, exist_ok=True)
            temp = self._path.with_suffix(
                self._path.suffix + ".compact"
            )
            count = 0
            with open(temp, "wb") as handle:
                for seq, payload in enumerate(payloads):
                    handle.write(_frame(seq, payload))
                    count += 1
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, self._path)
            fsync_directory(self._path.parent)
            self._next_seq = count
        return count

    def size_bytes(self) -> int:
        """Current on-disk size (0 when the file does not exist)."""
        try:
            return self._path.stat().st_size
        except FileNotFoundError:
            return 0

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({str(self._path)!r}, fsync={self._fsync!r}, "
            f"next_seq={self._next_seq})"
        )


def fsync_directory(directory) -> None:
    """fsync a directory so renames/creations inside it survive
    power loss.

    ``os.replace`` orders the data against the rename on most
    filesystems, but the rename itself is directory metadata — on a
    filesystem without ordered metadata journaling it can be lost (or
    reordered against a sibling rename) unless the directory entry is
    flushed too.  Platforms that cannot fsync a directory (Windows)
    skip silently: this is hardening, not a correctness dependency of
    replay.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except (OSError, AttributeError):
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def require_directory(root) -> Path:
    """Validate ``root`` as a state directory path and create it.

    Refuses a path that exists but is not a directory — silently
    treating a regular file as a state root would shadow (and on
    compaction destroy) whatever the operator pointed at.
    """
    path = Path(root)
    if path.exists() and not path.is_dir():
        raise StateStoreError(
            f"state path {str(path)!r} exists and is not a directory"
        )
    path.mkdir(parents=True, exist_ok=True)
    return path
