"""Durable state: write-ahead ε ledgers, dataset logs, result store.

Everything that must survive a crash for the service's DP guarantee
to hold lives here.  The design principle is **write-ahead in the
safe direction**: an ε debit is journaled (and fsynced) *before* the
noisy answer is released, so a crash at any instant can over-count
spent budget but never under-count it — budget is forfeited, privacy
is not.

* :mod:`repro.store.wal` — the CRC-framed, torn-tail-tolerant WAL
  primitive with batched fsync (group commit).
* :mod:`repro.store.ledger` — durable per-tenant ε debits.
* :mod:`repro.store.logstore` — per-dataset ingest persistence with
  snapshot-version checkpoints.
* :mod:`repro.store.results` — released results keyed by
  ``(tenant, dataset, snapshot_version)`` for warm restarts/audits.
* :mod:`repro.store.state` — the :class:`StateStore` facade owning
  the ``--state-dir`` layout and the recovery report.

See ``docs/operations.md`` for the deployment and crash-recovery
runbook, and ``docs/privacy-accounting.md`` for why durability is
part of the privacy argument.
"""

from repro.store.ledger import (
    LedgerJournal,
    SharedLedgerJournal,
    read_spent_totals,
)
from repro.store.logstore import DatasetLogStore
from repro.store.results import ResultStore
from repro.store.state import RecoveryReport, StateStore
from repro.store.wal import FileLock, ReplayResult, WriteAheadLog

__all__ = [
    "DatasetLogStore",
    "FileLock",
    "LedgerJournal",
    "RecoveryReport",
    "ReplayResult",
    "ResultStore",
    "SharedLedgerJournal",
    "StateStore",
    "WriteAheadLog",
    "read_spent_totals",
]
