"""The durable state store: one directory, three write-ahead stores.

:class:`StateStore` is the facade the service (and the ``store`` CLI)
talks to.  It owns a ``--state-dir`` with this layout::

    <state-dir>/
    ├── ledger.wal                    ε debits (write-ahead)
    ├── ledger.snapshot.json          compacted ledger state
    ├── results.wal                   released result payloads
    └── logs/
        ├── <dataset>.wal             ingested deltas, one per batch
        └── <dataset>.checkpoint.json compacted delta state

Everything in the directory is rebuildable from the WALs alone; the
snapshot/checkpoint files only bound replay time.  The directory can
be copied while the service runs (files are append-only between
compactions) and inspected offline with
``python -m repro.experiments.cli store inspect --state-dir DIR``.

Why the ledger is the load-bearing piece: the DP guarantee is
sequential composition over *spent* ε, so the one invariant recovery
must never violate is **journaled spent ≥ released spent** — see
:mod:`repro.store.ledger` and ``docs/operations.md``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import StateStoreError
from repro.store.ledger import LedgerJournal, SharedLedgerJournal
from repro.store.logstore import DatasetLogStore, sanitize_dataset_name
from repro.store.results import ResultStore
from repro.store.wal import FileLock, require_directory

__all__ = ["StateStore", "RecoveryReport"]

#: Sentinel distinguishing "not specified" from an explicit ``None``
#: (which :class:`~repro.store.logstore.DatasetLogStore` takes as
#: "disable automatic checkpointing").
_UNSET = object()


class RecoveryReport:
    """What a restart recovered from a state directory.

    Surfaced on ``GET /healthz`` (``persistence.recovery``) so an
    operator can confirm, without reading logs, that the ledgers and
    data versions a restarted service serves are the pre-crash ones.
    Dataset entries appear as sessions are (re)built, since dataset
    replay is lazy.
    """

    def __init__(self) -> None:
        #: Tenants whose journaled debits were restored, with spent ε.
        self.tenants: Dict[str, float] = {}
        #: Datasets replayed into warm sessions, with their versions.
        self.datasets: Dict[str, int] = {}
        #: Released results rehydrated from the result store.
        self.results = 0
        #: Torn trailing WAL records dropped across all stores.
        self.torn_records = 0

    def note_dataset(self, dataset: str, version: int) -> None:
        """Record one dataset's replay (called at session build)."""
        self.datasets[dataset] = int(version)

    def to_wire(self) -> Dict[str, object]:
        """The ``/healthz`` payload fragment."""
        return {
            "tenants": {
                tenant: spent
                for tenant, spent in sorted(self.tenants.items())
            },
            "datasets": dict(sorted(self.datasets.items())),
            "results": self.results,
            "torn_records": self.torn_records,
        }

    def __repr__(self) -> str:
        return (
            f"RecoveryReport(tenants={len(self.tenants)}, "
            f"datasets={len(self.datasets)}, results={self.results}, "
            f"torn={self.torn_records})"
        )


class StateStore:
    """All durable state for one service instance (see module docs).

    Parameters
    ----------
    root:
        The state directory (created if missing; must not be a file).
    fsync:
        WAL fsync policy for every store —
        one of :data:`~repro.store.wal.FSYNC_POLICIES`.  ``"batch"``
        (default) is the production setting: appends buffer and the
        pre-release/pre-acknowledge barriers make them durable.
    checkpoint_interval:
        Ingest batches between automatic per-dataset checkpoint folds;
        ``None`` disables automatic checkpointing, omitting it keeps
        the per-dataset default (64).
    shared:
        ``True`` when several worker *processes* serve this directory
        at once (the cluster of :mod:`repro.service.cluster`).  The
        ledger becomes a :class:`~repro.store.ledger.SharedLedgerJournal`
        (flock-serialized, cluster-atomic admission) and the result /
        dataset WALs serialize their appends and replay repair on a
        shared ``store.lock``; :meth:`compact` is refused (offline
        only).  The default ``False`` keeps the single-writer fast
        path byte-for-byte as before.
    """

    def __init__(
        self,
        root,
        fsync: str = "batch",
        checkpoint_interval=_UNSET,
        shared: bool = False,
    ) -> None:
        self.root = require_directory(root)
        self._fsync = fsync
        self._checkpoint_interval = checkpoint_interval
        self.shared = bool(shared)
        self._store_lock = (
            FileLock(self.root / "store.lock") if self.shared else None
        )
        if self.shared:
            self.ledger = SharedLedgerJournal(self.root, fsync=fsync)
        else:
            self.ledger = LedgerJournal(self.root, fsync=fsync)
        self.results = ResultStore(
            self.root, fsync=fsync, lock=self._store_lock
        )
        self._dataset_logs: Dict[str, DatasetLogStore] = {}
        self._stems: Dict[str, str] = {}
        self.recovery = RecoveryReport()
        for tenant_id in self.ledger.tenant_ids():
            self.recovery.tenants[tenant_id] = self.ledger.spent(
                tenant_id
            )
        self.recovery.results = len(self.results)
        self.recovery.torn_records = (
            self.ledger.torn_records + self.results.torn_records
        )

    def dataset_log(self, dataset: str) -> DatasetLogStore:
        """The (lazily opened) append store for one dataset.

        Filename stems are sanitized, which is not injective — two
        datasets colliding on one stem would interleave version
        records in a single WAL and serve each other's data after a
        restart, so a collision is refused as a config error.
        """
        store = self._dataset_logs.get(dataset)
        if store is None:
            stem = sanitize_dataset_name(dataset)
            claimed = self._stems.get(stem)
            if claimed is not None and claimed != dataset:
                raise StateStoreError(
                    f"datasets {claimed!r} and {dataset!r} both "
                    f"persist as {stem!r}; rename one of them"
                )
            kwargs = {}
            if self._checkpoint_interval is not _UNSET:
                kwargs["checkpoint_interval"] = self._checkpoint_interval
            store = DatasetLogStore(
                self.root, dataset, fsync=self._fsync,
                lock=self._store_lock, **kwargs
            )
            self._stems[stem] = dataset
            self._dataset_logs[dataset] = store
            self.recovery.torn_records += store.torn_records
        return store

    def barrier(self) -> None:
        """One durability barrier over the ledger and result WALs.

        This is the fsync the hot release path pays: the ε debit
        (appended before mining) and the result record (appended
        after) both become durable here, immediately before the noisy
        answer goes on the wire.  Overlapping releases share it —
        whichever barrier runs first covers everything buffered.
        """
        self.ledger.sync()
        self.results.sync()

    def compact(self) -> Dict[str, object]:
        """Fold every WAL into its snapshot/checkpoint; returns the
        per-store summaries (the ``store compact`` CLI output).

        Also opens (and compacts) any dataset logs present on disk
        that no session has touched yet, so an offline ``store
        compact`` covers the whole directory.  Refused on a shared
        store: compaction renames WALs out from under other workers'
        append handles — stop the cluster and compact offline.
        """
        if self.shared:
            raise StateStoreError(
                "cannot compact a cluster-shared state directory "
                "while workers may be writing; stop the cluster and "
                "run 'store compact' offline"
            )
        for store in self._scan_dataset_logs():
            self._dataset_logs.setdefault(store.dataset, store)
        return {
            "ledger": self.ledger.compact(),
            "results": self.results.compact(),
            "datasets": [
                store.compact()
                for _, store in sorted(self._dataset_logs.items())
            ],
        }

    def _scan_dataset_logs(self) -> List[DatasetLogStore]:
        """Open stores for dataset logs found on disk but not in
        memory (offline inspect/compact over a copied directory).

        Each log's files record the dataset's *original* name (the
        filename stem is a lossy sanitization), so the scan recovers
        real names instead of guessing — a later live
        :meth:`dataset_log` for the same dataset reuses the store
        rather than tripping the collision check against its own
        stem.
        """
        from repro.store.logstore import LOGS_SUBDIR, stored_dataset_name

        found: List[DatasetLogStore] = []
        logs_dir = self.root / LOGS_SUBDIR
        if not logs_dir.is_dir():
            return found
        stems = {
            path.name[: -len(".wal")]
            for path in logs_dir.glob("*.wal")
        } | {
            path.name[: -len(".checkpoint.json")]
            for path in logs_dir.glob("*.checkpoint.json")
        }
        for stem in sorted(stems):
            if stem in self._stems:
                continue
            name = stored_dataset_name(self.root, stem) or stem
            if name not in self._dataset_logs:
                found.append(self.dataset_log(name))
        return found

    def inspect(self) -> Dict[str, object]:
        """One JSON-serializable view of everything in the directory
        (the ``store inspect`` CLI output)."""
        for store in self._scan_dataset_logs():
            self._dataset_logs.setdefault(store.dataset, store)
        return {
            "state_dir": str(self.root),
            "fsync": self._fsync,
            "ledger": self.ledger.stats(),
            "results": self.results.stats(),
            "datasets": {
                name: store.stats()
                for name, store in sorted(self._dataset_logs.items())
            },
        }

    def close(self) -> None:
        """Barrier and close every underlying WAL handle."""
        self.ledger.close()
        self.results.close()
        for store in self._dataset_logs.values():
            store.close()

    def __enter__(self) -> "StateStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"StateStore({str(self.root)!r}, fsync={self._fsync!r})"
