"""Durable per-tenant ε ledgers: write-ahead debits + snapshots.

The privacy guarantee of the whole service rests on sequential
composition over each tenant's *spent* ε.  That number must survive
crashes: if a restart reset it to zero, a tenant could spend its
``epsilon_limit`` again, and the (Σεᵢ)-DP bound the ledger exists to
enforce would be void.

:class:`LedgerJournal` makes the ledger durable with exactly one
invariant — **spent ε on disk is always ≥ ε behind released answers**:

* every debit is appended to the WAL *before* the noisy answer is
  released (the caller appends via :meth:`debit`, then calls
  :meth:`sync` before handing the answer out);
* a crash between the WAL append and the release therefore *over*-
  counts (budget forfeited, answer never published) — the safe
  direction — and can never under-count;
* recovery replays the snapshot plus the WAL and the rebuilt spent
  value is what admission checks compare against.

Compaction folds the WAL into ``ledger.snapshot.json`` (written
atomically) and truncates the WAL, bounding replay time for
long-lived deployments without changing any recovered value.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Dict, List, Tuple

from repro.errors import StateStoreError, ValidationError
from repro.store.wal import WriteAheadLog, fsync_directory

__all__ = ["LedgerJournal"]

#: WAL filename inside the state directory.
LEDGER_WAL = "ledger.wal"

#: Compacted snapshot filename (atomic-replace target).
LEDGER_SNAPSHOT = "ledger.snapshot.json"


class LedgerJournal:
    """Durable record of every tenant's ε debits.

    Parameters
    ----------
    directory:
        The state directory; the journal owns ``ledger.wal`` and
        ``ledger.snapshot.json`` inside it.
    fsync:
        Passed to the underlying :class:`~repro.store.wal.WriteAheadLog`
        (``"batch"`` by default: debits buffer, the pre-release
        barrier makes them durable).

    The journal keeps an in-memory aggregation (per-tenant entry
    lists) that is always exactly what replaying the files would
    produce, so live admission checks and post-crash recovery read
    the same value through the same code path.
    """

    def __init__(self, directory, fsync: str = "batch") -> None:
        self._directory = Path(directory)
        self._snapshot_path = self._directory / LEDGER_SNAPSHOT
        self._wal = WriteAheadLog(
            self._directory / LEDGER_WAL, fsync=fsync
        )
        self._entries: Dict[str, List[Tuple[str, float]]] = {}
        #: Running per-tenant totals, kept in lockstep with
        #: ``_entries`` so admission checks are O(1) instead of
        #: re-summing a lifetime of debits per request.
        self._totals: Dict[str, float] = {}
        self._torn_records = 0
        self._load()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _load(self) -> None:
        if self._snapshot_path.exists():
            try:
                with open(
                    self._snapshot_path, "r", encoding="utf-8"
                ) as handle:
                    snapshot = json.load(handle)
            except (OSError, json.JSONDecodeError) as error:
                raise StateStoreError(
                    f"unreadable ledger snapshot "
                    f"{str(self._snapshot_path)!r}: {error}"
                )
            for tenant, entries in snapshot.get("tenants", {}).items():
                self._entries[tenant] = [
                    (str(entry["label"]), float(entry["epsilon"]))
                    for entry in entries
                ]
        replay = self._wal.replay()
        self._torn_records = replay.torn_records
        for record in replay:
            if record.get("type") != "debit":
                continue
            self._entries.setdefault(str(record["tenant"]), []).append(
                (str(record.get("label", "")), float(record["epsilon"]))
            )
        self._totals = {
            tenant: math.fsum(epsilon for _, epsilon in entries)
            for tenant, entries in self._entries.items()
        }

    @property
    def torn_records(self) -> int:
        """Damaged trailing WAL records dropped during recovery."""
        return self._torn_records

    # ------------------------------------------------------------------
    # Live accounting
    # ------------------------------------------------------------------
    def debit(
        self, tenant_id: str, epsilon: float, label: str = ""
    ) -> None:
        """Record one ε debit (write-ahead; durable at next barrier).

        Appends to the WAL *and* the in-memory aggregation, so
        :meth:`spent` reflects the debit immediately — the caller must
        still :meth:`sync` before releasing the corresponding noisy
        answer.
        """
        if not tenant_id:
            raise ValidationError("debit needs a non-empty tenant id")
        if not (epsilon > 0) or math.isinf(epsilon):
            raise ValidationError(
                f"debit epsilon must be positive and finite, "
                f"got {epsilon!r}"
            )
        self._wal.append(
            {
                "type": "debit",
                "tenant": str(tenant_id),
                "epsilon": float(epsilon),
                "label": str(label),
            }
        )
        tenant_id = str(tenant_id)
        self._entries.setdefault(tenant_id, []).append(
            (str(label), float(epsilon))
        )
        self._totals[tenant_id] = self._totals.get(
            tenant_id, 0.0
        ) + float(epsilon)

    def sync(self) -> None:
        """Durability barrier — call before releasing a noisy answer."""
        self._wal.sync()

    def spent(self, tenant_id: str) -> float:
        """Journaled ε spent by ``tenant_id`` (0.0 if never seen).

        This is *the* spent value: admission checks compare against
        it live, and recovery rebuilds it from disk, so the two paths
        cannot diverge.  O(1): a running total maintained per debit,
        exactly re-derived (``math.fsum``) at every load.
        """
        return self._totals.get(tenant_id, 0.0)

    def entries(self, tenant_id: str) -> List[Tuple[str, float]]:
        """The ``(label, epsilon)`` debit history for one tenant."""
        return list(self._entries.get(tenant_id, []))

    def tenant_ids(self) -> List[str]:
        """Every tenant with at least one journaled debit."""
        return list(self._entries)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> Dict[str, object]:
        """Fold the WAL into the snapshot file; returns a summary.

        The snapshot is written to a temp file, fsynced, and renamed
        into place *before* the WAL is truncated, so a crash at any
        point leaves a state that replays to the same ledger.
        """
        wal_bytes_before = self._wal.size_bytes()
        snapshot = {
            "tenants": {
                tenant: [
                    {"label": label, "epsilon": epsilon}
                    for label, epsilon in entries
                ]
                for tenant, entries in self._entries.items()
            }
        }
        self._directory.mkdir(parents=True, exist_ok=True)
        temp = self._snapshot_path.with_suffix(".json.tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self._snapshot_path)
        # Flush the rename before truncating the WAL: power loss must
        # never surface the empty WAL alongside the *old* snapshot.
        fsync_directory(self._directory)
        self._wal.rewrite(())
        return {
            "tenants": len(self._entries),
            "wal_bytes_before": wal_bytes_before,
            "wal_bytes_after": self._wal.size_bytes(),
        }

    def close(self) -> None:
        """Barrier and close the underlying WAL handle."""
        self._wal.close()

    def stats(self) -> Dict[str, object]:
        """JSON-serializable journal telemetry (``store inspect``)."""
        return {
            "tenants": {
                tenant: {
                    "spent": self.spent(tenant),
                    "debits": len(entries),
                }
                for tenant, entries in sorted(self._entries.items())
            },
            "wal_bytes": self._wal.size_bytes(),
            "torn_records": self._torn_records,
            "fsyncs": self._wal.syncs,
        }

    def __repr__(self) -> str:
        return (
            f"LedgerJournal({str(self._directory)!r}, "
            f"tenants={len(self._entries)})"
        )
