"""Durable per-tenant ε ledgers: write-ahead debits + snapshots.

The privacy guarantee of the whole service rests on sequential
composition over each tenant's *spent* ε.  That number must survive
crashes: if a restart reset it to zero, a tenant could spend its
``epsilon_limit`` again, and the (Σεᵢ)-DP bound the ledger exists to
enforce would be void.

:class:`LedgerJournal` makes the ledger durable with exactly one
invariant — **spent ε on disk is always ≥ ε behind released answers**:

* every debit is appended to the WAL *before* the noisy answer is
  released (the caller appends via :meth:`debit`, then calls
  :meth:`sync` before handing the answer out);
* a crash between the WAL append and the release therefore *over*-
  counts (budget forfeited, answer never published) — the safe
  direction — and can never under-count;
* recovery replays the snapshot plus the WAL and the rebuilt spent
  value is what admission checks compare against.

Compaction folds the WAL into ``ledger.snapshot.json`` (written
atomically) and truncates the WAL, bounding replay time for
long-lived deployments without changing any recovered value.

Cluster sharing: :class:`SharedLedgerJournal` lets N worker
*processes* debit one ledger WAL concurrently.  Every mutation and
every torn-tail repair runs under one ``flock`` file lock
(``ledger.lock``), and :meth:`~SharedLedgerJournal.debit_within_limit`
makes the admission check-and-debit atomic cluster-wide — two workers
racing the last ε of a tenant's limit cannot both win.
:func:`read_spent_totals` is the matching read-only audit path (the
soak harness's invariant checker).
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Dict, List, Tuple

from repro.errors import (
    BudgetExceededError,
    StateStoreError,
    ValidationError,
)
from repro.store.wal import (
    FileLock,
    WriteAheadLog,
    _unframe,
    fsync_directory,
)

__all__ = [
    "LedgerJournal",
    "SharedLedgerJournal",
    "read_spent_totals",
]

#: WAL filename inside the state directory.
LEDGER_WAL = "ledger.wal"

#: Compacted snapshot filename (atomic-replace target).
LEDGER_SNAPSHOT = "ledger.snapshot.json"

#: Lock file serializing cluster-shared ledger access.
LEDGER_LOCK = "ledger.lock"

#: Relative tolerance for limit checks, matching
#: :class:`~repro.dp.budget.PrivacyBudget` and the tenant registry.
_REL_TOL = 1e-9


class LedgerJournal:
    """Durable record of every tenant's ε debits.

    Parameters
    ----------
    directory:
        The state directory; the journal owns ``ledger.wal`` and
        ``ledger.snapshot.json`` inside it.
    fsync:
        Passed to the underlying :class:`~repro.store.wal.WriteAheadLog`
        (``"batch"`` by default: debits buffer, the pre-release
        barrier makes them durable).

    The journal keeps an in-memory aggregation (per-tenant entry
    lists) that is always exactly what replaying the files would
    produce, so live admission checks and post-crash recovery read
    the same value through the same code path.
    """

    def __init__(self, directory, fsync: str = "batch") -> None:
        self._directory = Path(directory)
        self._snapshot_path = self._directory / LEDGER_SNAPSHOT
        self._wal = WriteAheadLog(
            self._directory / LEDGER_WAL, fsync=fsync
        )
        self._entries: Dict[str, List[Tuple[str, float]]] = {}
        #: Running per-tenant totals, kept in lockstep with
        #: ``_entries`` so admission checks are O(1) instead of
        #: re-summing a lifetime of debits per request.
        self._totals: Dict[str, float] = {}
        self._torn_records = 0
        self._load()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _load(self) -> None:
        if self._snapshot_path.exists():
            try:
                with open(
                    self._snapshot_path, "r", encoding="utf-8"
                ) as handle:
                    snapshot = json.load(handle)
            except (OSError, json.JSONDecodeError) as error:
                raise StateStoreError(
                    f"unreadable ledger snapshot "
                    f"{str(self._snapshot_path)!r}: {error}"
                )
            for tenant, entries in snapshot.get("tenants", {}).items():
                self._entries[tenant] = [
                    (str(entry["label"]), float(entry["epsilon"]))
                    for entry in entries
                ]
        replay = self._wal.replay()
        self._torn_records = replay.torn_records
        for record in replay:
            if record.get("type") != "debit":
                continue
            self._entries.setdefault(str(record["tenant"]), []).append(
                (str(record.get("label", "")), float(record["epsilon"]))
            )
        self._totals = {
            tenant: math.fsum(epsilon for _, epsilon in entries)
            for tenant, entries in self._entries.items()
        }

    @property
    def torn_records(self) -> int:
        """Damaged trailing WAL records dropped during recovery."""
        return self._torn_records

    # ------------------------------------------------------------------
    # Live accounting
    # ------------------------------------------------------------------
    def debit(
        self, tenant_id: str, epsilon: float, label: str = ""
    ) -> None:
        """Record one ε debit (write-ahead; durable at next barrier).

        Appends to the WAL *and* the in-memory aggregation, so
        :meth:`spent` reflects the debit immediately — the caller must
        still :meth:`sync` before releasing the corresponding noisy
        answer.
        """
        if not tenant_id:
            raise ValidationError("debit needs a non-empty tenant id")
        if not (epsilon > 0) or math.isinf(epsilon):
            raise ValidationError(
                f"debit epsilon must be positive and finite, "
                f"got {epsilon!r}"
            )
        self._wal.append(
            {
                "type": "debit",
                "tenant": str(tenant_id),
                "epsilon": float(epsilon),
                "label": str(label),
            }
        )
        tenant_id = str(tenant_id)
        self._entries.setdefault(tenant_id, []).append(
            (str(label), float(epsilon))
        )
        self._totals[tenant_id] = self._totals.get(
            tenant_id, 0.0
        ) + float(epsilon)

    def _check_within_limit(
        self, tenant_id: str, epsilon: float, limit: float
    ) -> None:
        """Raise :class:`~repro.errors.BudgetExceededError` if the
        debit would push the tenant past ``limit``."""
        spent = self._totals.get(str(tenant_id), 0.0)
        remaining = max(0.0, float(limit) - spent)
        if epsilon > remaining + _REL_TOL * float(limit):
            raise BudgetExceededError(epsilon, remaining)

    def debit_within_limit(
        self, tenant_id: str, epsilon: float, limit: float,
        label: str = "",
    ) -> None:
        """Check ``limit`` against the journaled total, then debit.

        The admission primitive the service's write-ahead hook calls:
        check and debit happen against the same journal state, so the
        journal itself enforces the per-tenant cap rather than
        trusting each caller's cached view.  In this single-process
        journal the two steps cannot interleave with anything;
        :class:`SharedLedgerJournal` overrides this to make the pair
        atomic across worker processes.
        """
        self._check_within_limit(tenant_id, epsilon, limit)
        self.debit(tenant_id, epsilon, label)

    def sync(self) -> None:
        """Durability barrier — call before releasing a noisy answer."""
        self._wal.sync()

    def spent(self, tenant_id: str) -> float:
        """Journaled ε spent by ``tenant_id`` (0.0 if never seen).

        This is *the* spent value: admission checks compare against
        it live, and recovery rebuilds it from disk, so the two paths
        cannot diverge.  O(1): a running total maintained per debit,
        exactly re-derived (``math.fsum``) at every load.
        """
        return self._totals.get(tenant_id, 0.0)

    def entries(self, tenant_id: str) -> List[Tuple[str, float]]:
        """The ``(label, epsilon)`` debit history for one tenant."""
        return list(self._entries.get(tenant_id, []))

    def tenant_ids(self) -> List[str]:
        """Every tenant with at least one journaled debit."""
        return list(self._entries)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> Dict[str, object]:
        """Fold the WAL into the snapshot file; returns a summary.

        The snapshot is written to a temp file, fsynced, and renamed
        into place *before* the WAL is truncated, so a crash at any
        point leaves a state that replays to the same ledger.
        """
        wal_bytes_before = self._wal.size_bytes()
        snapshot = {
            "tenants": {
                tenant: [
                    {"label": label, "epsilon": epsilon}
                    for label, epsilon in entries
                ]
                for tenant, entries in self._entries.items()
            }
        }
        self._directory.mkdir(parents=True, exist_ok=True)
        temp = self._snapshot_path.with_suffix(".json.tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self._snapshot_path)
        # Flush the rename before truncating the WAL: power loss must
        # never surface the empty WAL alongside the *old* snapshot.
        fsync_directory(self._directory)
        self._wal.rewrite(())
        return {
            "tenants": len(self._entries),
            "wal_bytes_before": wal_bytes_before,
            "wal_bytes_after": self._wal.size_bytes(),
        }

    def close(self) -> None:
        """Barrier and close the underlying WAL handle."""
        self._wal.close()

    def stats(self) -> Dict[str, object]:
        """JSON-serializable journal telemetry (``store inspect``)."""
        return {
            "tenants": {
                tenant: {
                    "spent": self._totals.get(tenant, 0.0),
                    "debits": len(entries),
                }
                for tenant, entries in sorted(self._entries.items())
            },
            "wal_bytes": self._wal.size_bytes(),
            "torn_records": self._torn_records,
            "fsyncs": self._wal.syncs,
        }

    def __repr__(self) -> str:
        return (
            f"LedgerJournal({str(self._directory)!r}, "
            f"tenants={len(self._entries)})"
        )


class SharedLedgerJournal(LedgerJournal):
    """A ledger journal safe for N worker *processes* on one WAL.

    The cluster's single point of ε truth.  Three things change
    relative to the single-process base class, all serialized on one
    ``flock`` file lock (``ledger.lock``):

    * **Tail-following refresh** — before any read or write the
      journal folds in records other workers appended since its last
      look (an offset-tracked incremental read, not a full replay).
    * **Locked torn-tail repair** — a partial line can only belong to
      a *dead* writer (live appends complete inside the lock), so the
      refresh truncates it safely; the unlocked base-class behavior
      would let a restarting worker chop off debits live workers had
      already acknowledged.
    * **Atomic admission** — :meth:`debit_within_limit` runs
      refresh → check → append as one critical section, so the
      per-tenant ``epsilon_limit`` holds cluster-wide even when two
      workers race for the last of a tenant's budget.

    :meth:`compact` is refused: rewriting the WAL moves it to a new
    inode while other workers hold ``O_APPEND`` handles to the old
    one, silently losing their debits.  Compact offline (cluster
    stopped) with the regular :class:`LedgerJournal` instead; the
    refresh detects the shrunken file and reloads.
    """

    def __init__(self, directory, fsync: str = "batch") -> None:
        self._lock = FileLock(Path(directory) / LEDGER_LOCK)
        with self._lock.held():
            super().__init__(directory, fsync=fsync)
            self._offset = self._wal.size_bytes()

    # ------------------------------------------------------------------
    # Cross-process refresh (caller holds the lock)
    # ------------------------------------------------------------------
    def _reload_locked(self) -> None:
        """Full reload after the WAL shrank (offline compaction)."""
        self._wal.close()
        self._entries = {}
        self._totals = {}
        self._load()
        self._offset = self._wal.size_bytes()

    def _refresh_locked(self) -> None:
        """Fold in records other workers appended since our last look.

        Caller holds the lock.  Reads only the new byte range; a
        damaged or partial tail belongs to a dead writer (nobody can
        be mid-append while we hold the lock) and is truncated off —
        the locked repair that makes crash recovery safe with live
        writers.
        """
        size = self._wal.size_bytes()
        if size < self._offset:
            self._reload_locked()
            return
        if size == self._offset:
            return
        with open(self._wal.path, "rb") as handle:
            handle.seek(self._offset)
            data = handle.read()
        consumed = 0
        repair_at = None
        while True:
            newline = data.find(b"\n", consumed)
            if newline < 0:
                if consumed < len(data):
                    repair_at = consumed  # dead writer's partial line
                break
            parsed = _unframe(data[consumed:newline])
            if parsed is None:
                repair_at = consumed
                break
            _, payload = parsed
            if payload.get("type") == "debit":
                tenant = str(payload["tenant"])
                epsilon = float(payload["epsilon"])
                self._entries.setdefault(tenant, []).append(
                    (str(payload.get("label", "")), epsilon)
                )
                self._totals[tenant] = self._totals.get(
                    tenant, 0.0
                ) + epsilon
            consumed = newline + 1
        if repair_at is not None:
            self._torn_records += 1
            self._wal.close()
            with open(self._wal.path, "rb+") as handle:
                handle.truncate(self._offset + repair_at)
                handle.flush()
                os.fsync(handle.fileno())
            self._offset += repair_at
        else:
            self._offset += consumed

    # ------------------------------------------------------------------
    # Locked overrides
    # ------------------------------------------------------------------
    def debit(
        self, tenant_id: str, epsilon: float, label: str = ""
    ) -> None:
        """Record one debit, serialized against every other worker."""
        with self._lock.held():
            self._refresh_locked()
            super().debit(tenant_id, epsilon, label)
            self._offset = self._wal.size_bytes()

    def debit_within_limit(
        self, tenant_id: str, epsilon: float, limit: float,
        label: str = "",
    ) -> None:
        """Atomic cluster-wide check-and-debit (see class docstring)."""
        with self._lock.held():
            self._refresh_locked()
            self._check_within_limit(tenant_id, epsilon, limit)
            super().debit(tenant_id, epsilon, label)
            self._offset = self._wal.size_bytes()

    def spent(self, tenant_id: str) -> float:
        """Cluster-wide journaled spent ε (refreshes first)."""
        with self._lock.held():
            self._refresh_locked()
        return super().spent(tenant_id)

    def entries(self, tenant_id: str) -> List[Tuple[str, float]]:
        """Cluster-wide debit history for one tenant (refreshes first)."""
        with self._lock.held():
            self._refresh_locked()
        return super().entries(tenant_id)

    def tenant_ids(self) -> List[str]:
        """Every tenant any worker has debited (refreshes first)."""
        with self._lock.held():
            self._refresh_locked()
        return super().tenant_ids()

    def stats(self) -> Dict[str, object]:
        """Cluster-wide journal telemetry (refreshes first)."""
        with self._lock.held():
            self._refresh_locked()
        return super().stats()

    def compact(self) -> Dict[str, object]:
        """Refused: see the class docstring (compact offline)."""
        raise StateStoreError(
            "a shared ledger journal cannot compact while workers may "
            "be writing; stop the cluster and run "
            "'store compact' offline"
        )

    def __repr__(self) -> str:
        return (
            f"SharedLedgerJournal({str(self._directory)!r}, "
            f"tenants={len(self._entries)})"
        )


def read_spent_totals(directory) -> Dict[str, float]:
    """Audit read of cluster-wide journaled spent ε per tenant.

    Parses ``ledger.snapshot.json`` plus ``ledger.wal`` directly —
    under the shared ``flock`` so it serializes with live debits, but
    strictly read-only (never truncates, never appends, keeps no
    state).  This is the invariant checker's view: after any fault,
    ``read_spent_totals(dir)[tenant]`` must be ≥ the ε behind every
    answer that tenant has actually received.
    """
    root = Path(directory)
    collected: Dict[str, List[float]] = {}
    with FileLock(root / LEDGER_LOCK).held():
        snapshot_path = root / LEDGER_SNAPSHOT
        if snapshot_path.exists():
            with open(snapshot_path, "r", encoding="utf-8") as handle:
                snapshot = json.load(handle)
            for tenant, items in snapshot.get("tenants", {}).items():
                collected.setdefault(str(tenant), []).extend(
                    float(item["epsilon"]) for item in items
                )
        wal_path = root / LEDGER_WAL
        if wal_path.exists():
            with open(wal_path, "rb") as handle:
                lines = handle.read().split(b"\n")
            if lines and lines[-1] == b"":
                lines.pop()
            for line in lines:
                parsed = _unframe(line)
                if parsed is None:
                    break  # torn tail: nothing after it was acked
                _, payload = parsed
                if payload.get("type") != "debit":
                    continue
                collected.setdefault(
                    str(payload["tenant"]), []
                ).append(float(payload["epsilon"]))
    return {
        tenant: math.fsum(values)
        for tenant, values in collected.items()
    }
