"""Durable streaming ingestion: per-dataset append WALs + checkpoints.

The streaming layer (:mod:`repro.datasets.stream`) versions a
dataset's data states: the base snapshot is version 0 and every
ingested batch advances the version by one.  Those versions are part
of the *public* serving contract — every release pins and reports the
snapshot version it was computed on — so a restart must come back at
the **same** version with the **same** data, or released results stop
being attributable.

:class:`DatasetLogStore` records exactly the information the loader
cannot reproduce: the appended deltas.  The base dataset always comes
from the dataset loader (it is either a registry dataset or the
operator's own file — re-persisting it would duplicate the source of
truth), and the store journals one WAL record per ingest batch::

    {"type": "append", "version": 3, "transactions": [[...], ...]}

The store holds **no row data in memory** — the warm session's
backend already owns a copy of everything ingested, and duplicating a
long feed here would double resident memory without bound.  Live
state is just the version watermark; :meth:`replay` (recovery) and
:meth:`compact` re-read the checkpoint + WAL from disk on demand.

Checkpoints fold the WAL into a single JSON file every
``checkpoint_interval`` appends, bounding replay cost for long feeds.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import StateStoreError, ValidationError
from repro.store.wal import WriteAheadLog, fsync_directory

__all__ = [
    "DatasetLogStore",
    "sanitize_dataset_name",
    "stored_dataset_name",
]

#: Subdirectory of the state root holding dataset logs.
LOGS_SUBDIR = "logs"

#: Default appends between automatic checkpoints.
DEFAULT_CHECKPOINT_INTERVAL = 64


def stored_dataset_name(directory, stem: str) -> Optional[str]:
    """Recover the original dataset name a log's files recorded.

    Sanitization is lossy, so the checkpoint and every WAL record
    carry the dataset's real name; an offline scan over a state
    directory reads it back here instead of guessing from the
    filename stem.  Returns ``None`` when the files predate the field
    or hold nothing readable (callers fall back to the stem).
    """
    logs_dir = Path(directory) / LOGS_SUBDIR
    checkpoint = logs_dir / f"{stem}.checkpoint.json"
    if checkpoint.exists():
        try:
            with open(checkpoint, "r", encoding="utf-8") as handle:
                name = json.load(handle).get("dataset")
            if isinstance(name, str) and name:
                return name
        except (OSError, json.JSONDecodeError):
            pass
    wal_path = logs_dir / f"{stem}.wal"
    if wal_path.exists():
        for record in WriteAheadLog(wal_path).replay():
            name = record.get("dataset")
            if isinstance(name, str) and name:
                return name
    return None


def sanitize_dataset_name(dataset: str) -> str:
    """Filesystem-safe filename stem for a dataset name.

    Dataset names come from operator config and may contain path
    separators or other hostile characters; everything outside
    ``[A-Za-z0-9._-]`` becomes ``_`` so a name can never escape the
    ``logs/`` directory.  The mapping is not injective — the
    :class:`~repro.store.state.StateStore` facade rejects two live
    datasets whose names collide on the same stem.
    """
    if not dataset:
        raise ValidationError("dataset name must be non-empty")
    return "".join(
        ch if ch.isalnum() or ch in "._-" else "_" for ch in dataset
    )


class DatasetLogStore:
    """Append-persistence for one dataset's ingest stream.

    Parameters
    ----------
    directory:
        The state root; this store owns
        ``logs/<dataset>.wal`` and ``logs/<dataset>.checkpoint.json``.
    dataset:
        The dataset name (sanitized for the filesystem).
    fsync:
        WAL fsync policy; an ingest calls :meth:`sync` before the
        service acknowledges the append.
    checkpoint_interval:
        Minimum appends between automatic WAL-into-checkpoint folds;
        a fold additionally waits until the WAL has grown to the
        checkpoint's size, keeping the rewrite cost amortized O(1)
        per row (see ``_should_checkpoint``).  ``None`` disables
        automatic checkpointing (``compact`` still works on demand).
    lock:
        Optional :class:`~repro.store.wal.FileLock` serializing WAL
        appends and replay against other worker processes sharing the
        state directory (cluster mode; dataset affinity keeps live
        appenders unique per dataset, the lock protects boot-time
        replay racing a failover owner's tail append).
    """

    def __init__(
        self,
        directory,
        dataset: str,
        fsync: str = "batch",
        checkpoint_interval: Optional[int] = DEFAULT_CHECKPOINT_INTERVAL,
        lock=None,
    ) -> None:
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValidationError(
                f"checkpoint_interval must be >= 1 or None, "
                f"got {checkpoint_interval}"
            )
        self.dataset = dataset
        stem = sanitize_dataset_name(dataset)
        logs_dir = Path(directory) / LOGS_SUBDIR
        self._wal = WriteAheadLog(
            logs_dir / f"{stem}.wal", fsync=fsync, lock=lock
        )
        self._checkpoint_path = logs_dir / f"{stem}.checkpoint.json"
        self._checkpoint_interval = checkpoint_interval
        self._version = 0
        self._wal_appends = 0
        self._torn_records = 0
        self._load()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _read_checkpoint(self) -> Tuple[int, List[List[int]]]:
        """``(version, rows)`` from the checkpoint file (0, [] if
        absent)."""
        if not self._checkpoint_path.exists():
            return 0, []
        try:
            with open(
                self._checkpoint_path, "r", encoding="utf-8"
            ) as handle:
                checkpoint = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise StateStoreError(
                f"unreadable dataset checkpoint "
                f"{str(self._checkpoint_path)!r}: {error}"
            )
        return (
            int(checkpoint.get("version", 0)),
            [list(row) for row in checkpoint.get("transactions", [])],
        )

    def _scan(
        self, collect: bool
    ) -> Tuple[int, List[List[int]], int, int]:
        """One pass over checkpoint + WAL.

        Returns ``(version, rows, torn_records, wal_appends)``; the
        rows list stays empty unless ``collect`` (the load path only
        needs the watermark, recovery wants the data too).
        """
        version, rows = self._read_checkpoint()
        if not collect:
            rows = []
        replay = self._wal.replay()
        appends = 0
        for record in replay:
            if record.get("type") != "append":
                continue
            record_version = int(record["version"])
            if record_version <= version and appends == 0:
                # A WAL record the checkpoint already folded in (the
                # crash window of compact()); replaying it would
                # double-append.
                continue
            if record_version != version + 1:
                raise StateStoreError(
                    f"dataset log for {self.dataset!r} jumps from "
                    f"version {version} to {record_version}; the "
                    f"store is inconsistent"
                )
            version = record_version
            appends += 1
            if collect:
                rows.extend(
                    [list(row) for row in record["transactions"]]
                )
        return version, rows, replay.torn_records, appends

    def _load(self) -> None:
        self._version, _, self._torn_records, self._wal_appends = (
            self._scan(collect=False)
        )

    @property
    def version(self) -> int:
        """The latest recoverable snapshot version (0 = base only)."""
        return self._version

    @property
    def torn_records(self) -> int:
        """Damaged trailing WAL records dropped during recovery."""
        return self._torn_records

    def replay(self) -> Tuple[int, List[List[int]]]:
        """The recovery payload: ``(version, flattened rows)``.

        ``rows`` is every appended transaction since the base
        snapshot, in ingest order, re-read from disk; the caller
        extends its warm backend once with all of them and restores
        ``version`` directly (the per-batch boundaries carry no
        serving semantics beyond the final version number).
        """
        version, rows, _, _ = self._scan(collect=True)
        return version, rows

    # ------------------------------------------------------------------
    # Live appends
    # ------------------------------------------------------------------
    def record_append(
        self, version: int, transactions: List[List[int]]
    ) -> None:
        """Journal one ingested batch that produced ``version``.

        Write-ahead relative to both the serving session *and* the
        client acknowledgement: the service journals the validated
        batch, applies it to the warm session, then calls
        :meth:`sync` before answering.  Versions must advance by
        exactly one — anything else means the caller and the store
        disagree about the data's history.
        """
        if version != self._version + 1:
            raise StateStoreError(
                f"append for {self.dataset!r} carries version "
                f"{version}, store is at {self._version}"
            )
        if not transactions:
            raise ValidationError(
                "cannot record an empty append (versions must advance "
                "the data)"
            )
        rows = [[int(item) for item in row] for row in transactions]
        self._wal.append(
            {
                "type": "append",
                "dataset": self.dataset,
                "version": version,
                "transactions": rows,
            }
        )
        self._version = version
        self._wal_appends += 1
        if self._should_checkpoint():
            self.compact()

    def _should_checkpoint(self) -> bool:
        """Amortized auto-checkpoint trigger.

        A fold rewrites the *entire* appended history, so folding on
        a fixed append count alone would cost O(N²) disk work over a
        long feed.  Requiring the WAL to have grown to at least the
        checkpoint's size makes folds geometric in the history size —
        amortized O(1) per appended row — while the append-count
        floor still keeps short feeds' restart replays cheap.
        """
        if self._checkpoint_interval is None:
            return False
        if self._wal_appends < self._checkpoint_interval:
            return False
        try:
            checkpoint_bytes = self._checkpoint_path.stat().st_size
        except FileNotFoundError:
            checkpoint_bytes = 0
        return self._wal.size_bytes() >= checkpoint_bytes

    def sync(self) -> None:
        """Durability barrier — call before acknowledging an ingest."""
        self._wal.sync()

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> Dict[str, object]:
        """Fold the WAL into the checkpoint file; returns a summary.

        The checkpoint (flattened rows + final version) is written
        atomically *before* the WAL truncates; a crash in the window
        between the two leaves WAL records the next load recognizes
        as already folded (their versions are ≤ the checkpoint's) and
        skips.
        """
        wal_bytes_before = self._wal.size_bytes()
        version, rows = self.replay()
        self._checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
        temp = self._checkpoint_path.with_suffix(".json.tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "dataset": self.dataset,
                    "version": version,
                    "transactions": rows,
                },
                handle,
            )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self._checkpoint_path)
        # Flush the rename before truncating the WAL: power loss must
        # never surface the empty WAL alongside the *old* checkpoint.
        fsync_directory(self._checkpoint_path.parent)
        self._wal.rewrite(())
        self._wal_appends = 0
        return {
            "dataset": self.dataset,
            "version": version,
            "rows": len(rows),
            "wal_bytes_before": wal_bytes_before,
            "wal_bytes_after": self._wal.size_bytes(),
        }

    def close(self) -> None:
        """Barrier and close the underlying WAL handle."""
        self._wal.close()

    def stats(self) -> Dict[str, object]:
        """JSON-serializable store telemetry (``store inspect``)."""
        version, rows = self.replay()
        return {
            "dataset": self.dataset,
            "version": version,
            "appended_rows": len(rows),
            "wal_bytes": self._wal.size_bytes(),
            "checkpointed": self._checkpoint_path.exists(),
            "torn_records": self._torn_records,
        }

    def __repr__(self) -> str:
        return (
            f"DatasetLogStore({self.dataset!r}, version={self._version})"
        )
