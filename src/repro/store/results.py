"""Durable store of released results, keyed by (tenant, dataset,
snapshot_version).

Everything the service has already released is public: a noisy result
was paid for with ε at release time, and *re-reading* it is free
post-processing under differential privacy.  Persisting released
payloads therefore costs no privacy and buys two operational
properties:

* **warm restarts** — after a crash the service restores each
  session's release counters and can answer "what did I already
  publish for this tenant on this snapshot?" without recounting (or,
  worse, without being tempted to re-run a mechanism and spend fresh
  ε to reconstruct an answer that was already bought);
* **auditability** — the store is the operator's record tying every
  published output to the tenant that requested it, the ε it cost,
  and the exact data version it was computed on.

Records are appended to one WAL *after* the debit record (the debit
is the safety-critical one); a crash that loses a trailing result
record loses only a cache entry, never accounting.

Memory model: the **full** history lives in the WAL on disk; in
memory the store keeps exact running aggregates (release counts and ε
sums per dataset — O(1) per record, never evicted) plus a bounded
per-tenant window of the most recent payloads
(:data:`RESULT_RETENTION`) for ``GET /v1/results``.  A service that
has released millions of answers does not hold millions of payloads
resident.

Ordering: every record carries a monotonically increasing
``seq`` assigned at :meth:`ResultStore.record` time and embedded *in
the record payload* — deliberately not the WAL frame number, which
:meth:`~repro.store.wal.WriteAheadLog.rewrite` renumbers from zero on
compaction.  ``results_for`` sorts its window by this sequence, so a
client's release history keeps its original order even across a
mid-run compaction or a restart over a compacted WAL.

The store also feeds the **reuse plane**
(:mod:`repro.pipeline.reuse`): each tenant gets its own
:class:`~repro.pipeline.reuse.ReuseIndex` over its stored releases —
per-tenant by construction, so reuse can never cross a tenant
boundary — rebuilt for free from the same WAL replay that fills the
window, which is how stored answers stay reusable across restarts.
"""

from __future__ import annotations

from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional

from repro.errors import ValidationError
from repro.pipeline.reuse import ReuseDecision, ReuseIndex
from repro.store.wal import WriteAheadLog

__all__ = ["ResultStore", "RESULT_RETENTION"]

#: WAL filename inside the state directory.
RESULTS_WAL = "results.wal"

#: Most-recent released payloads kept in memory per tenant (the
#: window ``results_for`` serves).  Older payloads remain in the WAL
#: — bounded retention caps resident memory, not the durable record.
RESULT_RETENTION = 1024


class ResultStore:
    """Append-only store of released result payloads.

    Parameters
    ----------
    directory:
        The state root; the store owns ``results.wal`` inside it.
    fsync:
        WAL fsync policy.  Results ride the same pre-release barrier
        as ε debits (one fsync covers both), so ``"batch"`` is right.
    retention:
        In-memory most-recent window per tenant (see module
        docstring); aggregates stay exact regardless.
    lock:
        Optional :class:`~repro.store.wal.FileLock` serializing WAL
        appends and replay against other worker processes sharing the
        state directory (cluster mode).
    """

    def __init__(
        self, directory, fsync: str = "batch",
        retention: int = RESULT_RETENTION, lock=None,
    ) -> None:
        if retention < 1:
            raise ValidationError(
                f"retention must be >= 1, got {retention}"
            )
        self._wal = WriteAheadLog(
            Path(directory) / RESULTS_WAL, fsync=fsync, lock=lock
        )
        self._retention = retention
        #: Per-tenant most-recent entries, oldest first, bounded.
        self._by_tenant: Dict[str, Deque[Dict[str, Any]]] = {}
        #: Per-tenant reuse indexes over stored releases.
        self._reuse: Dict[str, ReuseIndex] = {}
        #: Exact running aggregates over the *full* history.
        self._counts: Dict[str, int] = {}
        self._epsilon: Dict[str, float] = {}
        self._count = 0
        self._torn_records = 0
        #: Next record-level sequence number (survives compaction —
        #: see the module docstring's ordering note).
        self._next_seq = 0
        self._load()

    def _load(self) -> None:
        replay = self._wal.replay()
        self._torn_records = replay.torn_records
        for position, record in enumerate(replay):
            if record.get("type") != "result":
                continue
            # Records written before sequences existed fall back to
            # their replay position, which preserves their pre-upgrade
            # order (position order *was* the order back then).
            seq = record.get("seq")
            if not isinstance(seq, int) or isinstance(seq, bool):
                seq = position
            self._remember(
                str(record["tenant"]),
                str(record["dataset"]),
                int(record["snapshot_version"]),
                dict(record["payload"]),
                seq=seq,
            )

    def _remember(
        self, tenant: str, dataset: str, version: int,
        payload: Dict[str, Any], seq: int,
    ) -> None:
        window = self._by_tenant.get(tenant)
        if window is None:
            window = self._by_tenant[tenant] = deque(
                maxlen=self._retention
            )
        window.append(
            {
                "seq": seq,
                "dataset": dataset,
                "snapshot_version": version,
                "payload": payload,
            }
        )
        index = self._reuse.get(tenant)
        if index is None:
            index = self._reuse[tenant] = ReuseIndex()
        index.add(dataset, version, payload)
        self._counts[dataset] = self._counts.get(dataset, 0) + 1
        epsilon = payload.get("epsilon", 0.0)
        if isinstance(epsilon, (int, float)) and not isinstance(
            epsilon, bool
        ):
            self._epsilon[dataset] = self._epsilon.get(
                dataset, 0.0
            ) + float(epsilon)
        self._count += 1
        self._next_seq = max(self._next_seq, seq + 1)

    @property
    def torn_records(self) -> int:
        """Damaged trailing WAL records dropped during recovery."""
        return self._torn_records

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Recording and lookup
    # ------------------------------------------------------------------
    def record(
        self,
        tenant: str,
        dataset: str,
        snapshot_version: Optional[int],
        payload: Dict[str, Any],
    ) -> None:
        """Persist one released payload under its serving key.

        ``snapshot_version`` may be ``None`` for releases over a
        static database (stored as version 0).  Durable at the next
        barrier — the caller's pre-release :meth:`sync` covers it.
        """
        if not tenant or not dataset:
            raise ValidationError(
                "result records need non-empty tenant and dataset"
            )
        version = int(snapshot_version or 0)
        seq = self._next_seq
        self._wal.append(
            {
                "type": "result",
                "seq": seq,
                "tenant": str(tenant),
                "dataset": str(dataset),
                "snapshot_version": version,
                "payload": dict(payload),
            }
        )
        self._remember(
            str(tenant), str(dataset), version, dict(payload), seq=seq
        )

    def sync(self) -> None:
        """Durability barrier (shared with the ledger's, typically)."""
        self._wal.sync()

    def get(
        self, tenant: str, dataset: str, snapshot_version: int
    ) -> List[Dict[str, Any]]:
        """Retained payloads for one exact (tenant, dataset, version)."""
        version = int(snapshot_version)
        return [
            entry["payload"]
            for entry in self._by_tenant.get(tenant, ())
            if entry["dataset"] == dataset
            and entry["snapshot_version"] == version
        ]

    def results_for(
        self, tenant: str, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """The tenant's retained release history, oldest first.

        Each entry carries ``dataset`` / ``snapshot_version`` /
        ``payload`` so a client can re-read its published history
        (free post-processing) after a restart.  Serves the bounded
        in-memory window (the ``retention`` most recent releases);
        ``limit`` trims to the newest ``limit`` of those.

        Sorted by each record's embedded release sequence, not WAL
        position: a compaction can rewrite the WAL mid-run, and a
        store reloaded over the compacted file must present the same
        order clients saw before (see module docstring).
        """
        window = sorted(
            self._by_tenant.get(tenant, ()),
            key=lambda entry: entry.get("seq", 0),
        )
        if limit is not None and limit >= 0:
            window = window[len(window) - min(limit, len(window)):]
        return window

    def release_counts(self) -> Dict[str, int]:
        """Per-dataset released-result counts (session rehydration).

        An O(1) copy of a running aggregate — safe to call from any
        thread (a dict copy is atomic under the GIL) and exact over
        the full history, not just the retained window.
        """
        return dict(self._counts)

    def epsilon_by_dataset(self) -> Dict[str, float]:
        """Summed released ε per dataset (session ledger rehydration).

        Running aggregate of the ``epsilon`` field each wire payload
        carries (payloads without one contribute zero); same O(1) /
        full-history semantics as :meth:`release_counts`.
        """
        return dict(self._epsilon)

    # ------------------------------------------------------------------
    # Reuse plane
    # ------------------------------------------------------------------
    def reuse_lookup(
        self,
        tenant: str,
        dataset: str,
        snapshot_version: int,
        k: int,
        epsilon: float,
    ) -> ReuseDecision:
        """Can a stored release of *this tenant* answer (k, ε)?

        Scoped per tenant by construction — each tenant's index only
        ever sees that tenant's stored payloads — so a hit can never
        leak another tenant's release.  Unknown tenants get a plain
        miss, indistinguishable from an empty index.
        """
        index = self._reuse.get(tenant)
        if index is None:
            return ReuseDecision(
                hit=False,
                reason=(
                    f"no stored release for dataset {dataset!r} at "
                    f"snapshot {int(snapshot_version)}"
                ),
            )
        return index.lookup(dataset, snapshot_version, k, epsilon)

    def invalidate_reuse(self, dataset: str, version: int) -> int:
        """Drop reuse entries for ``dataset`` older than ``version``.

        Called after ingestion advances a dataset's snapshot; stale
        releases stay in the WAL (they remain the audit record and are
        still re-readable) but stop being reuse sources.  Returns the
        total entries dropped across all tenants.
        """
        dropped = 0
        for index in self._reuse.values():
            dropped += index.invalidate_before(dataset, version)
        return dropped

    def reuse_stats(self) -> Dict[str, object]:
        """Aggregate reuse-index telemetry across tenants."""
        entries = 0
        keys = 0
        invalidated = 0
        for index in self._reuse.values():
            snapshot = index.stats()
            entries += int(snapshot["entries"])
            keys += int(snapshot["keys"])
            invalidated += int(snapshot["invalidated"])
        return {
            "tenants": len(self._reuse),
            "entries": entries,
            "keys": keys,
            "invalidated": invalidated,
        }

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def compact(self) -> Dict[str, object]:
        """Rewrite the WAL without torn tails; returns a summary.

        Reads the full history back from disk (the in-memory window
        is bounded and must not become the durable record), so this
        is an offline/maintenance operation, not a hot-path one.
        """
        wal_bytes_before = self._wal.size_bytes()
        records = list(self._wal.replay())
        self._wal.rewrite(records)
        return {
            "results": self._count,
            "wal_bytes_before": wal_bytes_before,
            "wal_bytes_after": self._wal.size_bytes(),
        }

    def close(self) -> None:
        """Barrier and close the underlying WAL handle."""
        self._wal.close()

    def stats(self) -> Dict[str, object]:
        """JSON-serializable store telemetry (``store inspect``)."""
        return {
            "results": self._count,
            "by_dataset": self.release_counts(),
            "wal_bytes": self._wal.size_bytes(),
            "torn_records": self._torn_records,
            "reuse": self.reuse_stats(),
        }

    def __repr__(self) -> str:
        return f"ResultStore(results={self._count})"
