"""Exception hierarchy for the :mod:`repro` library.

All errors raised intentionally by the library derive from
:class:`ReproError`, so callers can catch a single base class.  More
specific subclasses exist for the two failure domains that matter in
practice: malformed inputs (:class:`ValidationError` and friends) and
privacy-budget accounting (:class:`BudgetError`).

Wire format
-----------
Every class carries a stable ``wire_code`` string so network layers
(:mod:`repro.service`) can map exceptions to machine-readable error
payloads without string-matching messages.  :func:`error_to_wire`
builds the payload; :func:`wire_code_for` returns just the code.
Codes are part of the service API contract — change them only with a
deprecation path.
"""

from __future__ import annotations

from typing import Any, Dict


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""

    #: Stable machine-readable identifier used in service error
    #: payloads (see :func:`error_to_wire`).
    wire_code = "internal_error"


class ValidationError(ReproError, ValueError):
    """An argument or input dataset failed validation.

    Also derives from :class:`ValueError` so that generic callers that
    expect standard-library semantics keep working.
    """

    wire_code = "validation_error"


class DatasetFormatError(ValidationError):
    """A dataset file (e.g. FIMI ``.dat``) could not be parsed.

    Carries the offending ``source`` (file name or stream label) and
    one-based ``line`` when the parser knows them, so batch tooling
    can point at the broken record without string-matching messages.
    """

    wire_code = "dataset_format_error"

    def __init__(
        self,
        message: str,
        source: "Any" = None,
        line: "Any" = None,
    ) -> None:
        self.source = None if source is None else str(source)
        self.line = None if line is None else int(line)
        super().__init__(message)


class DatasetTruncatedError(DatasetFormatError):
    """A dataset stream ended mid-record (torn download, gzip member
    cut short, partial final chunk).

    Distinct from :class:`DatasetFormatError` because truncation is
    *retryable* — re-fetch the file — whereas a malformed token means
    the producer is wrong.  Loaders must raise this instead of
    silently keeping the prefix that happened to parse: a truncated
    log that loads "successfully" mis-counts every support from then
    on.
    """

    wire_code = "dataset_truncated"


class BudgetError(ReproError):
    """Base class for privacy-budget accounting failures."""

    wire_code = "budget_error"


class BudgetExceededError(BudgetError):
    """A mechanism tried to consume more budget than remains.

    Raised by :class:`repro.dp.budget.PrivacyBudget` when a ``spend``
    request would push the total consumption above the budget's ε.
    """

    wire_code = "budget_exceeded"

    def __init__(self, requested: float, remaining: float) -> None:
        self.requested = float(requested)
        self.remaining = float(remaining)
        super().__init__(
            f"requested epsilon {requested:g} exceeds remaining budget "
            f"{remaining:g}"
        )


class EmptySelectionError(ValidationError):
    """A selection mechanism was asked to choose from an empty domain."""

    wire_code = "empty_selection"


class UnknownPlannerError(ValidationError):
    """A release or plan request named a budget planner that does not
    exist.

    Raised by :func:`repro.pipeline.planner.resolve_planner` (and
    mapped to HTTP 400 with wire code ``unknown_planner``) so clients
    can distinguish a typo'd planner name from other validation
    failures and retry with one of ``known``.
    """

    wire_code = "unknown_planner"

    def __init__(self, planner: str, known=()) -> None:
        self.planner = str(planner)
        self.known = tuple(known)
        hint = f"; known planners: {list(self.known)}" if known else ""
        super().__init__(f"unknown planner {planner!r}{hint}")


class InvalidFractionsError(ValidationError):
    """A budget split was asked for with malformed fractions.

    Carries the offending ``fractions`` tuple and the ``reason`` so
    callers (the planner layer, the service) can report precisely
    which entry broke the split instead of string-matching messages.
    """

    wire_code = "validation_error"

    def __init__(self, fractions, reason: str) -> None:
        self.fractions = tuple(fractions)
        self.reason = str(reason)
        super().__init__(
            f"invalid budget fractions {self.fractions!r}: {reason}"
        )


class UnknownTenantError(ValidationError):
    """A service request named a tenant the registry does not know."""

    wire_code = "unknown_tenant"

    def __init__(self, tenant_id: str) -> None:
        self.tenant_id = str(tenant_id)
        super().__init__(f"unknown tenant {tenant_id!r}")


class IngestNotAllowedError(ReproError):
    """A tenant without ingest rights tried to append transactions.

    Raised (and mapped to HTTP 403) when a tenant whose registry entry
    sets ``"ingest": false`` calls ``POST /v1/ingest`` — read-only
    analysts may release over a dataset but not feed it.
    """

    wire_code = "ingest_forbidden"

    def __init__(self, tenant_id: str) -> None:
        self.tenant_id = str(tenant_id)
        super().__init__(
            f"tenant {tenant_id!r} is not allowed to ingest into its "
            f"dataset (configured read-only)"
        )


class StateStoreError(ReproError):
    """The durable state store is unusable or inconsistent.

    Raised by :mod:`repro.store` when the ``--state-dir`` layout is
    damaged beyond what write-ahead replay can tolerate — e.g. the
    path is not a directory, a checkpoint file is unreadable, or a
    replayed dataset log disagrees with the version it recorded.
    Torn WAL *tails* are NOT this error: those are expected after a
    crash and are dropped (and counted) during recovery.
    """

    wire_code = "state_store_error"


class TornSegmentError(StateStoreError):
    """A spilled shard segment failed its header/CRC check on reopen.

    Raised by :mod:`repro.engine.mmap` when a memory-mapped shard
    file under the state dir is missing, short, or fails checksum
    verification — the signature of a crash mid-spill or disk
    corruption.  Carries the zero-based ``segments`` indices so the
    caller can rebuild *only* those shards from the source chunks
    instead of respilling the whole dataset.
    """

    wire_code = "torn_segment"

    def __init__(self, directory: "Any", segments, detail: str = "") -> None:
        self.directory = str(directory)
        self.segments = tuple(int(index) for index in segments)
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"torn shard segment(s) {list(self.segments)} under "
            f"{self.directory}{suffix}; rebuild them from the source "
            f"chunks (MmapShardStore.rebuild_segment)"
        )


class WorkerPoolError(ReproError):
    """The multiprocessing counting pool died mid-query.

    Raised by :mod:`repro.engine.parallel` when a worker process
    crashes (OOM-killed, segfault, ``SIGKILL``) while a query is in
    flight.  The answer for that query is lost — never partially
    merged — and the owning :class:`~repro.engine.sharded
    .ShardedBackend` discards the broken pool so the *next* query
    starts a fresh one.  Callers can therefore treat this as a clean,
    retryable failure.
    """

    wire_code = "worker_pool_error"


class OverloadedError(ReproError):
    """The service's admission controller rejected a request.

    Raised (and mapped to HTTP 429) when accepting another release
    would exceed the configured in-flight bound.
    """

    wire_code = "overloaded"

    def __init__(self, in_flight: int, limit: int) -> None:
        self.in_flight = int(in_flight)
        self.limit = int(limit)
        super().__init__(
            f"{in_flight} releases in flight >= limit {limit}; retry later"
        )


class WorkerUnavailableError(ReproError):
    """The cluster router lost the worker handling a request.

    Raised (and mapped to HTTP 503 ``worker_unavailable``) by
    :mod:`repro.service.router` when the worker process that owned a
    request dies before answering.  Safe reads (``GET``) are retried
    on surviving workers before this surfaces; spending requests
    (``POST``) are **never** retried — a retry could double-charge ε —
    so the client sees this error and must decide, knowing the debit
    may or may not have been journaled (check ``GET /v1/budget``; the
    invariant direction guarantees at worst an over-count, never a
    free release).
    """

    wire_code = "worker_unavailable"

    def __init__(self, detail: str = "") -> None:
        self.detail = str(detail)
        suffix = f": {detail}" if detail else ""
        super().__init__(
            f"the worker serving this request is unavailable{suffix}"
        )


def wire_code_for(error: BaseException) -> str:
    """The stable wire code for ``error`` (``internal_error`` for
    anything outside the :class:`ReproError` hierarchy)."""
    return getattr(error, "wire_code", ReproError.wire_code)


def error_to_wire(error: BaseException) -> Dict[str, Any]:
    """Serialize ``error`` into the service's JSON error payload.

    The payload always has ``error`` (the wire code) and ``message``;
    typed exceptions contribute their structured fields so clients can
    react without parsing messages (e.g. ``remaining`` on a
    :class:`BudgetExceededError` tells an analyst how much ε is left).
    """
    payload: Dict[str, Any] = {
        "error": wire_code_for(error),
        "message": str(error),
    }
    if isinstance(error, BudgetExceededError):
        payload["requested"] = error.requested
        payload["remaining"] = error.remaining
    if isinstance(error, (UnknownTenantError, IngestNotAllowedError)):
        payload["tenant"] = error.tenant_id
    if isinstance(error, UnknownPlannerError):
        payload["planner"] = error.planner
        payload["known"] = list(error.known)
    if isinstance(error, OverloadedError):
        payload["in_flight"] = error.in_flight
        payload["limit"] = error.limit
    if isinstance(error, DatasetFormatError):
        if error.source is not None:
            payload["source"] = error.source
        if error.line is not None:
            payload["line"] = error.line
    if isinstance(error, TornSegmentError):
        payload["directory"] = error.directory
        payload["segments"] = list(error.segments)
    return payload
