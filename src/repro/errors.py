"""Exception hierarchy for the :mod:`repro` library.

All errors raised intentionally by the library derive from
:class:`ReproError`, so callers can catch a single base class.  More
specific subclasses exist for the two failure domains that matter in
practice: malformed inputs (:class:`ValidationError` and friends) and
privacy-budget accounting (:class:`BudgetError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument or input dataset failed validation.

    Also derives from :class:`ValueError` so that generic callers that
    expect standard-library semantics keep working.
    """


class DatasetFormatError(ValidationError):
    """A dataset file (e.g. FIMI ``.dat``) could not be parsed."""


class BudgetError(ReproError):
    """Base class for privacy-budget accounting failures."""


class BudgetExceededError(BudgetError):
    """A mechanism tried to consume more budget than remains.

    Raised by :class:`repro.dp.budget.PrivacyBudget` when a ``spend``
    request would push the total consumption above the budget's ε.
    """

    def __init__(self, requested: float, remaining: float) -> None:
        self.requested = float(requested)
        self.remaining = float(remaining)
        super().__init__(
            f"requested epsilon {requested:g} exceeds remaining budget "
            f"{remaining:g}"
        )


class EmptySelectionError(ValidationError):
    """A selection mechanism was asked to choose from an empty domain."""
