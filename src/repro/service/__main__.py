"""``python -m repro.service`` — run the PrivBasis network service.

Examples::

    python -m repro.service                         # demo tenants
    python -m repro.service --port 9000 --warm
    python -m repro.service --tenants tenants.json

The tenants file is a JSON object mapping tenant ids to
``{"dataset": <registry name>, "epsilon_limit": <float>}``; without
one, two demo tenants (``alice``/``bob`` on ``mushroom``) are served.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from repro.service.app import DEFAULT_MAX_INFLIGHT, PrivBasisService
from repro.service.registry import TenantRegistry


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.service`` argument parser (reused by the CLI)."""
    parser = argparse.ArgumentParser(
        prog="repro.service",
        description="Multi-tenant PrivBasis release service.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    parser.add_argument(
        "--port", type=int, default=8008,
        help="bind port (0 for ephemeral)",
    )
    parser.add_argument(
        "--tenants", metavar="FILE", default=None,
        help="JSON tenant config; defaults to the two demo tenants",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=DEFAULT_MAX_INFLIGHT,
        help="admission bound on concurrent releases (429 beyond)",
    )
    parser.add_argument(
        "--warm", action="store_true",
        help="pre-build every tenant dataset's session before serving",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="run N worker processes behind a routing front door "
             "(requires --state-dir: workers coordinate ε admission "
             "through the shared durable ledger); 0 (default) serves "
             "from a single process",
    )
    parser.add_argument(
        "--state-dir", metavar="DIR", default=None,
        help="durable state directory (write-ahead ε ledgers, ingest "
             "logs, released results); restart with the same DIR to "
             "recover pre-crash state — omit for in-memory only",
    )
    parser.add_argument(
        "--fsync", choices=["batch", "always", "never"],
        default="batch",
        help="WAL fsync policy for --state-dir (default: batch — one "
             "barrier per release; 'never' is for benchmarks only)",
    )
    parser.add_argument(
        "--parallel", choices=["bitmap", "threads", "processes"],
        default="bitmap",
        help="counting plane: 'bitmap' (default single-process "
             "backend), or a sharded backend in 'threads' or "
             "'processes' mode (multi-core over shared-memory shard "
             "segments; falls back to threads where shared memory is "
             "unavailable)",
    )
    parser.add_argument(
        "--shard-workers", type=int, default=None, metavar="N",
        help="worker count for --parallel threads/processes "
             "(default: min(shard count, cpu count))",
    )
    parser.add_argument(
        "--shard-size", type=int, default=None, metavar="ROWS",
        help="transactions per shard for --parallel threads/processes "
             "(default: engine DEFAULT_SHARD_SIZE)",
    )
    parser.add_argument(
        "--data-plane", choices=["memory", "mmap"], default="memory",
        help="where shard data lives: 'memory' (default) keeps every "
             "dataset RAM-resident; 'mmap' spills transactions to "
             "memory-mapped segment files and serves queries through "
             "an out-of-core sharded backend (bit-identical releases, "
             "bounded resident memory)",
    )
    parser.add_argument(
        "--memory-budget-mb", type=int, default=None, metavar="MB",
        help="resident shard-cache budget for --data-plane mmap "
             "(default: engine default, 256 MiB per dataset)",
    )
    parser.add_argument(
        "--no-reuse", action="store_true",
        help="disable the cross-release reuse plane: every release "
             "runs the mechanism fresh instead of answering dominated "
             "(k, epsilon) requests from the tenant's stored releases "
             "at zero epsilon",
    )
    return parser


def backend_factory_for(arguments: argparse.Namespace):
    """``database -> CountingBackend`` factory from CLI flags.

    Returns ``None`` for the default bitmap plane (the service then
    builds its usual :class:`~repro.engine.bitmap.BitmapBackend`);
    otherwise each dataset gets its own sharded backend in the
    requested execution mode.  ``--data-plane mmap`` also returns
    ``None``: the service builds its own out-of-core sharded backend
    per dataset (a factory would fight it for ownership).
    """
    if arguments.parallel == "bitmap" or arguments.data_plane == "mmap":
        return None
    from repro.engine.sharded import DEFAULT_SHARD_SIZE, ShardedBackend

    mode = arguments.parallel
    shard_size = arguments.shard_size or DEFAULT_SHARD_SIZE

    def factory(database):
        return ShardedBackend(
            database,
            shard_size=shard_size,
            max_workers=arguments.shard_workers,
            mode=mode,
        )

    return factory


async def _run_cluster(arguments: argparse.Namespace) -> int:
    """Serve ``--workers N`` processes behind the cluster router."""
    import json

    from repro.service.cluster import ClusterConfig, PrivBasisCluster

    if arguments.tenants:
        with open(arguments.tenants, "r", encoding="utf-8") as handle:
            tenants = json.load(handle)
    else:
        tenants = {
            "alice": {"dataset": "mushroom", "epsilon_limit": 5.0},
            "bob": {"dataset": "mushroom", "epsilon_limit": 2.0},
        }
    config = ClusterConfig(
        tenants=tenants,
        state_dir=arguments.state_dir,
        num_workers=arguments.workers,
        fsync=arguments.fsync,
        max_inflight=arguments.max_inflight,
        parallel=arguments.parallel,
        shard_workers=arguments.shard_workers,
        shard_size=arguments.shard_size,
        data_plane=arguments.data_plane,
        memory_budget_mb=arguments.memory_budget_mb,
        reuse=not arguments.no_reuse,
    )
    cluster = PrivBasisCluster(config)
    host, port = await cluster.start(arguments.host, arguments.port)
    print(
        f"privbasis cluster on http://{host}:{port} "
        f"({arguments.workers} workers, shared state in "
        f"{arguments.state_dir}, fsync={arguments.fsync})"
    )
    try:
        await cluster.router.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await cluster.stop()
    return 0


async def _run(arguments: argparse.Namespace) -> int:
    if arguments.workers:
        if not arguments.state_dir:
            print(
                "--workers requires --state-dir (cluster workers "
                "coordinate ε admission through the shared ledger)",
                file=sys.stderr,
            )
            return 2
        return await _run_cluster(arguments)
    registry = (
        TenantRegistry.from_json_file(arguments.tenants)
        if arguments.tenants
        else TenantRegistry.demo()
    )
    service = PrivBasisService(
        registry,
        backend_factory=backend_factory_for(arguments),
        max_inflight=arguments.max_inflight,
        state_dir=arguments.state_dir,
        fsync=arguments.fsync,
        data_plane=arguments.data_plane,
        memory_budget_mb=arguments.memory_budget_mb,
        data_plane_mode=(
            "processes" if arguments.parallel == "processes" else "threads"
        ),
        shard_size=arguments.shard_size,
        shard_workers=arguments.shard_workers,
        reuse=not arguments.no_reuse,
    )
    if arguments.no_reuse:
        print("reuse plane: disabled (--no-reuse)")
    if arguments.data_plane == "mmap":
        print(
            "data plane: mmap (out-of-core shard segments"
            + (
                f", budget {arguments.memory_budget_mb} MiB"
                if arguments.memory_budget_mb
                else ""
            )
            + ")"
        )
    if arguments.parallel != "bitmap":
        print(
            f"counting plane: sharded/{arguments.parallel}"
            + (
                f" ({arguments.shard_workers} workers)"
                if arguments.shard_workers
                else ""
            )
        )
    if arguments.state_dir:
        recovered = service.store.recovery
        print(
            f"durable state in {arguments.state_dir} "
            f"(fsync={arguments.fsync}): recovered "
            f"{len(recovered.tenants)} tenant ledger(s), "
            f"{recovered.results} stored result(s)"
            + (
                f", dropped {recovered.torn_records} torn record(s)"
                if recovered.torn_records
                else ""
            )
        )
    if arguments.warm:
        print("warming sessions:", ", ".join(registry.datasets()))
        await service.warm_all()
    host, port = await service.start(arguments.host, arguments.port)
    print(
        f"privbasis service on http://{host}:{port} "
        f"({len(registry)} tenants: {', '.join(registry.tenant_ids())})"
    )
    print("endpoints: POST /v1/release, POST /v1/release_batch, "
          "POST /v1/ingest, GET /v1/snapshot, GET /v1/budget, "
          "GET /v1/results, GET /healthz, GET /metrics")
    try:
        await service.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await service.stop()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and serve until interrupted."""
    arguments = build_parser().parse_args(argv)
    try:
        return asyncio.run(_run(arguments))
    except KeyboardInterrupt:
        print("\nshutting down")
        return 0


if __name__ == "__main__":
    sys.exit(main())
