"""The multi-tenant PrivBasis service (asyncio JSON-over-HTTP).

One :class:`PrivBasisService` fronts one
:class:`~repro.engine.session.PrivBasisSession` per dataset:

* **Sessions are per-dataset, shared across tenants.**  Everything a
  session caches is exact and non-private, so sharing it leaks nothing
  between tenants; cold-start construction is deduplicated through a
  :class:`~repro.service.coalesce.Coalescer` so a thundering herd on a
  cold dataset builds its bitmaps once.
* **Budgets are per-tenant, never shared.**  Every release spends from
  the requesting tenant's :class:`~repro.dp.budget.PrivacyBudget`
  before any noise is drawn; overdrafts map to HTTP 403 with a
  structured ``budget_exceeded`` payload.
* **Noise is per-release, never shared.**  Requests are seed-less by
  contract (:mod:`repro.service.protocol`) and every release draws
  from a fresh OS-seeded generator, so even byte-identical coalesced
  requests return distinct outputs.
* **Admission is bounded.**  At most ``max_inflight`` releases are in
  flight (including time queued on the per-dataset lock); beyond that
  the service answers 429 immediately instead of queueing unboundedly.

* **Ingestion is serialized with releases, never with noise.**
  ``POST /v1/ingest`` appends transactions to a tenant's dataset
  through the warm session's incremental ``extend`` path, under the
  same per-dataset lock releases use — so every release sees one
  consistent snapshot and reports its version on the wire.  A cold
  dataset hit by concurrent ingests/releases still builds once: both
  paths acquire the session through the coalescer.  Tenants whose
  config sets ``"ingest": false`` get HTTP 403 ``ingest_forbidden``.

* **Plans are free.**  ``GET /v1/plan`` prices a release — per-stage ε
  under the requested :class:`~repro.pipeline.planner.BudgetPlanner` —
  from public parameters only: no tenant budget is spent, no session
  is built, no data is read.  Releases may opt into a per-stage
  execution trace (``"trace": true``) and every served release feeds
  the per-stage counters ``/metrics`` reports under ``pipeline``.

* **Stored releases are reused before data is touched.**  When a
  plain ``(k', ε')`` request is strictly dominated by a release the
  *same tenant* already bought on the *same snapshot* (``k' ≤ k``,
  ``ε' ≤ ε``, not byte-identical — see :mod:`repro.pipeline.reuse`),
  the service answers by truncating the stored payload: pure
  post-processing, charged exactly ε = 0, zero backend queries.
  Byte-identical repeats always run fresh (the seed-less contract
  above promises distinct noise), as do requests naming a ``planner``
  or ``noise`` override.  ``/v1/plan`` prices a reuse hit at 0 and
  ``/metrics`` counts hits, misses, and ε saved; ``--no-reuse``
  (``reuse=False``) opts a deployment out entirely.

* **State is durable when ``state_dir`` is set.**  Every ε debit is
  journaled write-ahead (durable *before* the noisy answer leaves the
  process), every ingest batch is logged with its snapshot version,
  and every released payload is stored under
  ``(tenant, dataset, snapshot_version)``.  A restart with the same
  ``state_dir`` restores the tenants' spent budgets, replays each
  dataset to its pre-crash version, rehydrates serving counters and
  the released-result history (``GET /v1/results``), and reports what
  it recovered on ``/healthz``.  Without ``state_dir`` the service
  runs fully in-memory, as before.  See ``docs/operations.md``.

Endpoints: ``POST /v1/release``, ``POST /v1/release_batch``,
``POST /v1/ingest``, ``GET /v1/plan?tenant=…&k=…&epsilon=…``,
``GET /v1/snapshot?tenant=…``, ``GET /v1/budget?tenant=…``,
``GET /v1/results?tenant=…``, ``GET /healthz``, ``GET /metrics``.
"""

from __future__ import annotations

import asyncio
import functools
import time
import traceback
from contextlib import asynccontextmanager
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.engine.session import PrivBasisSession
from repro.errors import (
    BudgetExceededError,
    IngestNotAllowedError,
    OverloadedError,
    ReproError,
    UnknownTenantError,
    ValidationError,
    WorkerUnavailableError,
    error_to_wire,
)
from repro.pipeline.plan import build_plan
from repro.pipeline.planner import AutoPlanner, TraceHistory
from repro.pipeline.reuse import ReuseDecision, ReuseIndex, top_k_truncate
from repro.service import http
from repro.service.coalesce import Coalescer
from repro.service.metrics import (
    ReuseMetrics,
    ServiceMetrics,
    StageMetrics,
)
from repro.service.protocol import (
    parse_batch_request,
    parse_ingest_request,
    parse_plan_query,
    parse_release_request,
    result_to_wire,
)
from repro.service.registry import Tenant, TenantRegistry

__all__ = ["PrivBasisService", "DEFAULT_MAX_INFLIGHT"]

#: Default bound on concurrently admitted releases.
DEFAULT_MAX_INFLIGHT = 8

#: The routes the service answers; metrics label anything else
#: "unknown" so a path-spraying client cannot grow per-route state
#: without bound.
ROUTES = frozenset(
    {"/healthz", "/metrics", "/v1/budget", "/v1/ingest", "/v1/plan",
     "/v1/release", "/v1/release_batch", "/v1/results", "/v1/snapshot"}
)


def _fresh_rng():
    """A fresh OS-entropy generator for exactly one release.

    The wire contract promises every release its own randomness; a
    dedicated generator per request makes that literal — no stream is
    shared across releases, tenants, or the session's own default rng.
    """
    import numpy as np

    return np.random.default_rng()


def _status_for(error: ReproError) -> int:
    """Map a repro exception onto its HTTP status."""
    if isinstance(error, UnknownTenantError):
        return 404
    if isinstance(error, (BudgetExceededError, IngestNotAllowedError)):
        return 403
    if isinstance(error, OverloadedError):
        return 429
    if isinstance(error, WorkerUnavailableError):
        return 503
    if isinstance(error, ValidationError):
        return 400
    return 500


class PrivBasisService:
    """Serve DP releases for the tenants in ``registry``.

    Parameters
    ----------
    registry:
        The tenants to serve and their dataset bindings / ε limits.
    dataset_loader:
        ``name -> TransactionDatabase``; defaults to
        :func:`repro.datasets.registry.load_dataset`.  Tests inject
        small synthetic databases here.
    backend_factory:
        Optional ``database -> CountingBackend`` override (e.g. a
        :class:`~repro.engine.sharded.ShardedBackend` for huge
        datasets); the session wraps it in its caching layer.
    max_inflight:
        Admission bound on concurrent releases; excess requests get
        HTTP 429 without queueing.
    state_dir:
        Optional durable state directory.  When set, the service
        opens a :class:`~repro.store.state.StateStore` there, restores
        every tenant's journaled ε debits into its ledger (installing
        the write-ahead hook for future spends), replays each
        dataset's ingest log when its session is built, and persists
        debits / ingests / released results as it serves.  ``None``
        (default) keeps all state in memory.
    fsync:
        WAL fsync policy for the state store (ignored without
        ``state_dir``): ``"batch"`` (default; debits buffer and one
        barrier per release makes them durable), ``"always"``, or
        ``"never"`` (benchmarks only — crashes may then under-count).
    shared_state:
        ``True`` when other worker processes serve the same
        ``state_dir`` concurrently (cluster mode): the store opens its
        ledger in flock-serialized shared mode so ε admission is
        atomic cluster-wide.  Requires ``state_dir``.
    data_plane:
        ``"memory"`` (default) keeps every dataset's shards in RAM;
        ``"mmap"`` spills each dataset to memory-mapped segment files
        (under ``<state_dir>/shards/…``, or the system temp dir
        without a state dir) and serves queries through a
        budget-bounded shard cache — the out-of-core plane.  Counting
        results are bit-identical either way.  Mutually exclusive
        with ``backend_factory``.
    memory_budget_mb:
        Resident-shard budget per dataset for ``data_plane="mmap"``
        (default: the engine's
        :data:`~repro.engine.mmap.DEFAULT_MEMORY_BUDGET_BYTES`).
    data_plane_mode:
        Execution mode of the mmap plane's sharded backend:
        ``"threads"`` (default) or ``"processes"``.
    shard_size, shard_workers:
        Shard rows / worker count for the mmap plane (same meaning as
        the ``--shard-size`` / ``--shard-workers`` flags).
    reuse:
        ``True`` (default) serves dominated plain requests from the
        tenant's stored releases at ε = 0 (see the module docstring's
        reuse bullet); ``False`` (``--no-reuse``) runs every release
        fresh.  With ``state_dir`` set, reuse sources survive restarts
        (the result store rebuilds its per-tenant indexes from the
        WAL); without it the indexes live in memory.
    """

    def __init__(
        self,
        registry: TenantRegistry,
        dataset_loader: Optional[Callable[[str], Any]] = None,
        backend_factory: Optional[Callable[[Any], Any]] = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        state_dir: Optional[str] = None,
        fsync: str = "batch",
        shared_state: bool = False,
        data_plane: str = "memory",
        memory_budget_mb: Optional[int] = None,
        data_plane_mode: str = "threads",
        shard_size: Optional[int] = None,
        shard_workers: Optional[int] = None,
        reuse: bool = True,
    ) -> None:
        if max_inflight < 1:
            raise ValidationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if data_plane not in ("memory", "mmap"):
            raise ValidationError(
                f"data_plane must be 'memory' or 'mmap', "
                f"got {data_plane!r}"
            )
        if data_plane == "mmap" and backend_factory is not None:
            raise ValidationError(
                "data_plane='mmap' builds its own sharded backend per "
                "dataset; drop backend_factory or use data_plane_mode"
            )
        if data_plane_mode not in ("threads", "processes"):
            raise ValidationError(
                f"data_plane_mode must be 'threads' or 'processes', "
                f"got {data_plane_mode!r}"
            )
        if memory_budget_mb is not None and memory_budget_mb < 1:
            raise ValidationError(
                f"memory_budget_mb must be >= 1, got {memory_budget_mb}"
            )
        self._data_plane = data_plane
        self._memory_budget_mb = memory_budget_mb
        self._data_plane_mode = data_plane_mode
        self._shard_size = shard_size
        self._shard_workers = shard_workers
        if dataset_loader is None:
            from repro.datasets.registry import (
                load_dataset,
                registered_names,
            )

            # With the built-in loader the resolvable names are known
            # up front — fail at startup on a typo'd tenant config
            # instead of on the first request.  Custom loaders own
            # their namespace and skip this check.  ``registered_names``
            # covers the classic in-memory datasets *and* the
            # disk-backed synthetic tiers.
            known = set(registered_names())
            unknown = [
                name for name in registry.datasets() if name not in known
            ]
            if unknown:
                raise ValidationError(
                    f"tenant config references datasets the built-in "
                    f"registry does not know: {unknown}; available: "
                    f"{sorted(known)}"
                )
            dataset_loader = load_dataset
        self._registry = registry
        self._loader = dataset_loader
        self._backend_factory = backend_factory
        self._max_inflight = int(max_inflight)
        self._in_flight = 0
        self._store = None
        self._dataset_stores: Dict[str, Any] = {}
        if shared_state and state_dir is None:
            raise ValidationError(
                "shared_state requires a state_dir: cluster workers "
                "coordinate through the durable ledger"
            )
        if state_dir is not None:
            from repro.store.state import StateStore

            # Opening the store replays the ledger journal; attaching
            # it restores each tenant's spent history and makes every
            # future spend write-ahead.  This happens before any
            # request can be served, so there is no window where a
            # recovered tenant could overspend.
            self._store = StateStore(
                state_dir, fsync=fsync, shared=shared_state
            )
            registry.attach_journal(self._store.ledger)
        self._coalescer = Coalescer()
        self._sessions: Dict[str, PrivBasisSession] = {}
        self._release_locks: Dict[str, asyncio.Lock] = {}
        self._metrics = ServiceMetrics()
        self._stage_metrics = StageMetrics()
        self._reuse_enabled = bool(reuse)
        self._reuse_metrics = ReuseMetrics(enabled=self._reuse_enabled)
        #: In-memory per-tenant reuse indexes — only used without a
        #: state store (with one, the result store owns the indexes
        #: and rebuilds them from the WAL on restart).
        self._reuse_indexes: Dict[str, ReuseIndex] = {}
        #: Per-dataset release-trace history feeding AutoPlanner.
        self._trace_histories: Dict[str, TraceHistory] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._started_at = time.monotonic()

    # -- introspection ---------------------------------------------------
    @property
    def registry(self) -> TenantRegistry:
        return self._registry

    @property
    def in_flight(self) -> int:
        """Releases currently admitted (admission-control gauge)."""
        return self._in_flight

    def session_for(self, dataset: str) -> Optional[PrivBasisSession]:
        """The warm session for ``dataset``, if one was built."""
        return self._sessions.get(dataset)

    @property
    def store(self):
        """The :class:`~repro.store.state.StateStore`, or ``None``
        when the service runs in-memory."""
        return self._store

    # -- out-of-core data plane ------------------------------------------
    def _build_mmap_backend(self, dataset: str, database):
        """Spill ``database`` into mmap shard segments, return a backend.

        Each session build spills into a *fresh* per-build directory
        (``<state-dir>/shards/<dataset>/<pid>-<token>/`` when
        persistence is on, a tempdir otherwise).  A fresh spill per
        build is deliberate: WAL replay re-applies ingested deltas
        through ``session.restore`` → ``backend.extend``, so reusing a
        previous build's segments would double-apply them; and cluster
        workers each build their own session, so a shared directory
        would race.  Restart durability of the *format* is exercised
        directly at the engine layer (``MmapShardStore.open``).
        """
        import os
        import re
        import secrets
        import tempfile
        from pathlib import Path

        from repro.engine.mmap import MmapShardStore
        from repro.engine.sharded import ShardedBackend

        safe = re.sub(r"[^A-Za-z0-9._-]+", "_", dataset) or "dataset"
        root = (
            Path(self._store.root) / "shards"
            if self._store is not None
            else Path(tempfile.gettempdir()) / "repro-shards"
        )
        directory = root / safe / f"{os.getpid()}-{secrets.token_hex(4)}"
        budget = (
            self._memory_budget_mb * 1024 * 1024
            if self._memory_budget_mb is not None
            else None
        )
        store = MmapShardStore.create(
            directory,
            num_items=database.num_items,
            rows_per_segment=self._shard_size,
            memory_budget_bytes=budget,
        )
        try:
            step = store.rows_per_segment
            rows = database.rows
            # Feed the spill in segment-sized chunks so peak resident
            # extra memory during the build is one segment, not the
            # whole dataset twice.
            for start in range(0, len(rows), step):
                store.append_rows(rows[start:start + step])
            store.flush()
        except BaseException:
            store.close()
            raise
        return ShardedBackend.from_store(
            store,
            max_workers=self._shard_workers,
            mode=self._data_plane_mode,
        )

    # -- session lifecycle (coalesced cold starts) -----------------------
    async def _build_session(self, dataset: str) -> PrivBasisSession:
        loop = asyncio.get_running_loop()
        # Snapshot the rehydration counters on the event loop thread:
        # the result store's aggregates are mutated loop-side by
        # _persist_release, and reading them from the executor while
        # another dataset's release records could race the dicts.
        restore_releases = restore_epsilon = None
        if self._store is not None:
            restore_releases = self._store.results.release_counts().get(
                dataset, 0
            )
            restore_epsilon = self._store.results.epsilon_by_dataset().get(
                dataset, 0.0
            )

        def build() -> PrivBasisSession:
            database = self._loader(dataset)
            if self._data_plane == "mmap":
                # The session is built from the backend alone: its
                # database view comes lazily out of the mmap store,
                # and the loaded in-memory copy is garbage once the
                # spill completes.
                backend = self._build_mmap_backend(dataset, database)
                del database
                session = PrivBasisSession(backend)
            else:
                backend = (
                    self._backend_factory(database)
                    if self._backend_factory is not None
                    else None
                )
                session = PrivBasisSession(database, backend=backend)
            session.warm_up()
            if self._store is not None:
                # Warm restore: replay every ingested batch recorded
                # for this dataset through the warm backend's O(Δ)
                # extend path and restore the pre-crash snapshot
                # version, then rehydrate the serving counters from
                # the released-result store — the session comes back
                # exactly where the crash left it, without recounting
                # or respending.
                log_store = self._store.dataset_log(dataset)
                version, rows = log_store.replay()
                session.restore(
                    delta=rows if rows else None,
                    snapshot_version=version,
                    num_releases=restore_releases,
                    epsilon_spent=restore_epsilon,
                )
                self._dataset_stores[dataset] = log_store
                self._store.recovery.note_dataset(dataset, version)
            return session

        session = await loop.run_in_executor(None, build)
        self._sessions[dataset] = session
        return session

    async def get_session(self, dataset: str) -> PrivBasisSession:
        """The dataset's shared session; cold builds are coalesced."""
        return await self._coalescer.get(
            dataset, functools.partial(self._build_session, dataset)
        )

    async def warm_all(self) -> None:
        """Pre-build sessions for every dataset tenants reference."""
        await asyncio.gather(
            *(self.get_session(name) for name in self._registry.datasets())
        )

    # -- admission control ----------------------------------------------
    def _admit(self, weight: int = 1) -> None:
        """Claim ``weight`` in-flight slots or raise 429.

        A batch is weighted by its request count, so ``max_inflight``
        bounds *releases*, not HTTP requests — a batch cannot smuggle
        in more concurrent mining work than the limit allows (which
        also means a batch larger than ``max_inflight`` is always
        refused; raise the limit to serve bigger batches).
        """
        if self._in_flight + weight > self._max_inflight:
            raise OverloadedError(self._in_flight, self._max_inflight)
        self._in_flight += weight

    def _release_slot(self, weight: int = 1) -> None:
        self._in_flight -= weight

    def _lock_for(self, dataset: str) -> asyncio.Lock:
        lock = self._release_locks.get(dataset)
        if lock is None:
            lock = self._release_locks[dataset] = asyncio.Lock()
        return lock

    # -- reuse plane ------------------------------------------------------
    def _history_for(self, dataset: str) -> TraceHistory:
        """The dataset's accumulated release-branch history."""
        history = self._trace_histories.get(dataset)
        if history is None:
            history = self._trace_histories[dataset] = TraceHistory()
        return history

    def _bind_auto(self, request: Dict[str, Any], dataset: str) -> None:
        """Give an unbound AutoPlanner this dataset's trace history."""
        planner = request.get("planner")
        if isinstance(planner, AutoPlanner) and planner.history is None:
            planner.bind(self._history_for(dataset))

    def _reuse_lookup(
        self, tenant: Tenant, snapshot_version: int, k: int,
        epsilon: float,
    ) -> ReuseDecision:
        """Per-tenant reuse decision (store-backed or in-memory)."""
        if self._store is not None:
            return self._store.results.reuse_lookup(
                tenant.tenant_id, tenant.dataset, snapshot_version,
                k, epsilon,
            )
        index = self._reuse_indexes.get(tenant.tenant_id)
        if index is None:
            return ReuseDecision(
                hit=False,
                reason=(
                    f"no stored release for dataset "
                    f"{tenant.dataset!r} at snapshot "
                    f"{int(snapshot_version)}"
                ),
            )
        return index.lookup(tenant.dataset, snapshot_version, k, epsilon)

    def _remember_reuse(self, tenant: Tenant, result: Any) -> None:
        """Index one fresh release as a future reuse source.

        Only the in-memory path does work: with a state store,
        :meth:`_persist_release` already feeds the result store's
        per-tenant index as a side effect of recording the payload.
        """
        if not self._reuse_enabled or self._store is not None:
            return
        index = self._reuse_indexes.get(tenant.tenant_id)
        if index is None:
            index = self._reuse_indexes[tenant.tenant_id] = ReuseIndex()
        index.add(
            tenant.dataset, result.snapshot_version or 0,
            result_to_wire(result),
        )

    def _invalidate_reuse(self, dataset: str, version: int) -> None:
        """Drop reuse sources made stale by an ingest to ``dataset``."""
        if not self._reuse_enabled:
            return
        if self._store is not None:
            self._store.results.invalidate_reuse(dataset, version)
            return
        for index in self._reuse_indexes.values():
            index.invalidate_before(dataset, version)

    # -- release serving -------------------------------------------------
    def _tenant_for(self, body: Mapping[str, Any]) -> Tenant:
        tenant_id = body.get("tenant") if isinstance(body, Mapping) else None
        if not isinstance(tenant_id, str) or not tenant_id:
            raise ValidationError(
                "request needs a 'tenant' string identifying the caller"
            )
        return self._registry.get(tenant_id)

    async def _run_locked(self, dataset: str, call: Callable[[], Any]) -> Any:
        """Run blocking mining work off-loop, serialized per dataset.

        The lock keeps concurrent releases from mutating one session's
        caches from two executor threads at once; releases against
        *different* datasets still run in parallel.
        """
        loop = asyncio.get_running_loop()
        async with self._lock_for(dataset):
            return await loop.run_in_executor(None, call)

    def _persist_release(self, tenant: Tenant, result: Any) -> None:
        """Append one released payload to the result WAL (no fsync).

        Runs on the event loop thread, like the ε-debit append inside
        :meth:`Tenant.charge` — keeping all appends loop-side is what
        lets :meth:`_barrier` run on a worker thread without racing
        them (the WAL's durability watermark only ever advances to
        appends observed before the fsync).
        """
        if self._store is None:
            return
        self._store.results.record(
            tenant.tenant_id,
            tenant.dataset,
            result.snapshot_version,
            result_to_wire(result),
        )

    async def _barrier(self) -> None:
        """Durability barrier before a response goes on the wire.

        One fsync covers the write-ahead ε debit (appended at charge
        time) and the stored result payload.  It runs in the executor
        so a slow disk stalls only this response, not the event loop;
        overlapping releases whose records an earlier barrier already
        covered skip theirs entirely (group commit).
        """
        if self._store is None:
            return
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._store.barrier)

    async def handle_release(
        self, body: Mapping[str, Any]
    ) -> Dict[str, Any]:
        """``POST /v1/release`` — one ε-DP release for one tenant."""
        tenant = self._tenant_for(body)
        request = parse_release_request(body)
        include_trace = request.pop("trace", False)
        self._admit()
        try:
            session = await self.get_session(tenant.dataset)
            self._bind_auto(request, tenant.dataset)
            reuse_block: Optional[Dict[str, Any]] = None
            if (
                self._reuse_enabled
                and "planner" not in request
                and "noise" not in request
            ):
                # Reuse-first: a dominated plain request is answered
                # by truncating the tenant's stored release — pure
                # post-processing, so no charge, no lock, no data
                # touched, no noise drawn.  The lookup reads the live
                # snapshot version; entries can only ever be from the
                # same tenant (indexes are per-tenant by construction).
                decision = self._reuse_lookup(
                    tenant, session.snapshot_version,
                    request["k"], request["epsilon"],
                )
                if decision.hit:
                    payload = top_k_truncate(
                        decision.source.payload,
                        request["k"], request["epsilon"],
                    )
                    self._reuse_metrics.hit(request["epsilon"])
                    return {
                        "tenant": tenant.tenant_id,
                        "dataset": tenant.dataset,
                        **payload,
                        "reuse": {
                            "hit": True,
                            "epsilon_charged": 0.0,
                            "epsilon_saved": request["epsilon"],
                            "source": decision.source.describe(),
                        },
                    }
                reuse_block = {"hit": False, "reason": decision.reason}
                self._reuse_metrics.miss()
            # Charge on the event loop thread *before* any noise is
            # drawn: spends are serialized (no budget race) and a
            # failed release after the charge errs on the safe side —
            # budget is forfeited, never refunded.  With a state
            # store attached the charge is write-ahead (the debit hits
            # the WAL before the in-memory ledger).
            tenant.charge(
                request["epsilon"],
                label=f"release k={request['k']}",
            )
            result = await self._run_locked(
                tenant.dataset,
                functools.partial(
                    session.release, rng=_fresh_rng(), **request
                ),
            )
        finally:
            self._release_slot()
        self._stage_metrics.record(result.trace)
        self._history_for(tenant.dataset).observe(result.trace)
        self._remember_reuse(tenant, result)
        self._persist_release(tenant, result)
        await self._barrier()
        response = {
            "tenant": tenant.tenant_id,
            "dataset": tenant.dataset,
            **result_to_wire(result, include_trace=include_trace),
        }
        if reuse_block is not None:
            response["reuse"] = reuse_block
        return response

    async def handle_release_batch(
        self, body: Mapping[str, Any]
    ) -> Dict[str, Any]:
        """``POST /v1/release_batch`` — all-or-nothing multi-release."""
        tenant = self._tenant_for(body)
        requests = parse_batch_request(body)
        trace_flags = [
            request.pop("trace", False) for request in requests
        ]
        total = sum(request["epsilon"] for request in requests)
        self._admit(weight=len(requests))
        try:
            session = await self.get_session(tenant.dataset)
            for request in requests:
                self._bind_auto(request, tenant.dataset)
            # All-or-nothing admission against the journaled spent
            # value (tenant.remaining), so a freshly recovered ledger
            # and a long-running one refuse an oversized batch through
            # the same check.
            if total > tenant.remaining:
                raise BudgetExceededError(total, tenant.remaining)
            for index, request in enumerate(requests):
                tenant.charge(
                    request["epsilon"],
                    label=f"batch[{index}] k={request['k']}",
                )
            seeded = [
                {**request, "rng": _fresh_rng()} for request in requests
            ]
            results = await self._run_locked(
                tenant.dataset,
                functools.partial(session.release_batch, seeded),
            )
        finally:
            self._release_slot(weight=len(requests))
        for result in results:
            self._stage_metrics.record(result.trace)
            self._history_for(tenant.dataset).observe(result.trace)
            self._remember_reuse(tenant, result)
            self._persist_release(tenant, result)
        await self._barrier()
        return {
            "tenant": tenant.tenant_id,
            "dataset": tenant.dataset,
            "results": [
                result_to_wire(result, include_trace=include_trace)
                for result, include_trace in zip(results, trace_flags)
            ],
        }

    async def handle_ingest(
        self, body: Mapping[str, Any]
    ) -> Dict[str, Any]:
        """``POST /v1/ingest`` — append transactions to a dataset.

        The append goes through the warm session's incremental
        ``extend`` path under the dataset's release lock, so it is
        serialized with in-flight releases (each of which pins the
        snapshot version it ran on) and a cold dataset is still built
        exactly once via the coalescer.  No ε is charged: ingestion
        changes which exact data later mechanisms read, it publishes
        nothing.
        """
        tenant = self._tenant_for(body)
        if not tenant.ingest:
            raise IngestNotAllowedError(tenant.tenant_id)
        transactions = parse_ingest_request(body)
        self._admit()
        try:
            session = await self.get_session(tenant.dataset)

            def append() -> Tuple[int, int]:
                log_store = self._dataset_stores.get(tenant.dataset)
                if log_store is None:
                    version = session.ingest(transactions)
                else:
                    # Journal-before-apply, under the dataset's
                    # release lock (this closure runs inside it).
                    # The batch is fully validated first — building
                    # the delta checks vocabulary bounds — so a bad
                    # batch answers 400 with neither store nor
                    # session touched; after that, journal and apply
                    # cannot diverge: if the WAL append fails the
                    # session was never advanced, and a crash before
                    # the sync barrier loses only an unacknowledged
                    # batch from both sides at once.
                    from repro.datasets.transactions import (
                        TransactionDatabase,
                    )

                    delta = TransactionDatabase(
                        transactions,
                        num_items=session.database.num_items,
                    )
                    log_store.record_append(
                        session.snapshot_version + 1, transactions
                    )
                    version = session.ingest(delta)
                    log_store.sync()
                return version, session.database.num_transactions

            version, total = await self._run_locked(
                tenant.dataset, append
            )
        finally:
            self._release_slot()
        # Releases stored on older snapshots stop being reuse sources
        # the moment the data moves; correctness never depends on this
        # (lookups key on the live snapshot version, which the ingest
        # just advanced), it only frees the stale entries.
        self._invalidate_reuse(tenant.dataset, version)
        return {
            "tenant": tenant.tenant_id,
            "dataset": tenant.dataset,
            "snapshot_version": version,
            "num_transactions": total,
            "appended": len(transactions),
        }

    async def handle_snapshot(self, tenant_id: str) -> Dict[str, Any]:
        """``GET /v1/snapshot?tenant=…`` — the dataset's data state.

        Reports the snapshot version and size the tenant's dataset
        currently serves.  A cold dataset is built (coalesced) rather
        than guessed at, and the read takes the dataset's lock so a
        concurrent ingest can never produce a torn version/size pair
        — the answer is always the version the next release would pin.
        """
        if not tenant_id:
            raise ValidationError(
                "snapshot queries need a ?tenant=<id> parameter"
            )
        tenant = self._registry.get(tenant_id)
        session = await self.get_session(tenant.dataset)
        async with self._lock_for(tenant.dataset):
            return {
                "tenant": tenant.tenant_id,
                "dataset": tenant.dataset,
                "snapshot_version": session.snapshot_version,
                "num_transactions": session.database.num_transactions,
                "num_items": session.database.num_items,
                "num_releases": session.num_releases,
            }

    def handle_plan(self, query: Mapping[str, str]) -> Dict[str, Any]:
        """``GET /v1/plan`` — dry-run ε pricing for a release.

        Prices the staged pipeline under the requested planner from
        public parameters only: the handler never builds a session,
        never touches the dataset, and spends nothing from the
        tenant's ledger — it only *reads* the ledger to report whether
        the quoted release would fit the remaining budget.  Analysts
        can therefore shop for (k, ε, planner) combinations for free
        before committing budget to a real release.
        """
        tenant_id = query.get("tenant", "")
        if not tenant_id:
            raise ValidationError(
                "plan queries need a ?tenant=<id> parameter"
            )
        tenant = self._registry.get(tenant_id)
        params = parse_plan_query(query)
        planner = params["planner"]
        if isinstance(planner, AutoPlanner) and planner.history is None:
            planner.bind(self._history_for(tenant.dataset))
        plan = build_plan(
            params["k"], params["epsilon"], planner=planner
        )
        remaining = tenant.remaining
        response = {
            "tenant": tenant.tenant_id,
            "dataset": tenant.dataset,
            "remaining": remaining,
            "affordable": params["epsilon"] <= remaining * (1 + 1e-9),
            **plan.describe(),
        }
        if self._reuse_enabled:
            # Price the reuse path too — a hit would cost exactly 0.
            # Only a warm session knows the live snapshot version; a
            # cold dataset stays un-priced rather than building a
            # session inside a handler documented as data-free.
            session = self._sessions.get(tenant.dataset)
            if session is None:
                response["reuse"] = {
                    "available": False,
                    "reason": (
                        "dataset not warm: reuse is priced against "
                        "stored releases on the live snapshot"
                    ),
                }
            else:
                decision = self._reuse_lookup(
                    tenant, session.snapshot_version,
                    params["k"], params["epsilon"],
                )
                if decision.hit:
                    response["reuse"] = {
                        "available": True,
                        "epsilon": 0.0,
                        "source": decision.source.describe(),
                    }
                else:
                    response["reuse"] = {
                        "available": False,
                        "reason": decision.reason,
                    }
        return response

    def handle_budget(self, tenant_id: str) -> Dict[str, Any]:
        """``GET /v1/budget?tenant=…`` — the tenant's ledger snapshot."""
        if not tenant_id:
            raise ValidationError(
                "budget queries need a ?tenant=<id> parameter"
            )
        return self._registry.get(tenant_id).snapshot()

    def handle_results(self, query: Mapping[str, str]) -> Dict[str, Any]:
        """``GET /v1/results?tenant=…[&limit=N]`` — the tenant's
        stored releases.

        Re-reads what the tenant already paid ε for — published noisy
        payloads keyed by ``(dataset, snapshot_version)`` — which is
        free post-processing under DP, so no budget is touched.
        Serves the store's bounded most-recent window (the full
        history stays in the WAL); ``limit`` further trims to the
        newest N.  Only meaningful with persistence: without a state
        store the endpoint answers 400 rather than pretending an
        empty history is a durable one.
        """
        tenant_id = query.get("tenant", "")
        if not tenant_id:
            raise ValidationError(
                "results queries need a ?tenant=<id> parameter"
            )
        tenant = self._registry.get(tenant_id)
        if self._store is None:
            raise ValidationError(
                "the service runs without --state-dir; released "
                "results are not persisted"
            )
        limit = None
        if "limit" in query:
            try:
                limit = int(query["limit"])
            except ValueError:
                limit = -1
            if limit < 1:
                raise ValidationError(
                    f"?limit= must be a positive integer, "
                    f"got {query['limit']!r}"
                )
        return {
            "tenant": tenant.tenant_id,
            "dataset": tenant.dataset,
            "results": self._store.results.results_for(
                tenant.tenant_id, limit=limit
            ),
        }

    def handle_healthz(self) -> Dict[str, Any]:
        """``GET /healthz`` — liveness, warm sessions, and (with a
        state store) what the last restart recovered."""
        persistence: Dict[str, Any] = {"enabled": self._store is not None}
        if self._store is not None:
            persistence["state_dir"] = str(self._store.root)
            persistence["recovery"] = self._store.recovery.to_wire()
        data_plane: Dict[str, Any] = {"plane": self._data_plane}
        if self._data_plane == "mmap":
            from repro.engine.mmap import process_resident_bytes

            resident = process_resident_bytes()
            if resident is not None:
                data_plane["process_resident_bytes"] = resident
            spilled = 0
            datasets: Dict[str, Any] = {}
            for name, session in sorted(self._sessions.items()):
                plane_stats = session.stats().get("data_plane")
                if plane_stats is not None:
                    datasets[name] = plane_stats
                    spilled += int(plane_stats.get("spilled_bytes", 0))
            data_plane["spilled_bytes"] = spilled
            data_plane["datasets"] = datasets
            if self._memory_budget_mb is not None:
                data_plane["memory_budget_bytes"] = (
                    self._memory_budget_mb * 1024 * 1024
                )
        return {
            "status": "ok",
            "datasets": self._registry.datasets(),
            "warm": sorted(self._sessions),
            "tenants": len(self._registry),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "persistence": persistence,
            "data_plane": data_plane,
        }

    def handle_metrics(self) -> Dict[str, Any]:
        """``GET /metrics`` — HTTP, pipeline, coalescer, and cache
        telemetry."""
        snapshot = {
            "http": self._metrics.snapshot(),
            "in_flight": self._in_flight,
            "max_inflight": self._max_inflight,
            "pipeline": self._stage_metrics.snapshot(),
            "reuse": self._reuse_metrics.snapshot(),
            "coalescer": self._coalescer.stats(),
            "datasets": {
                name: session.stats()
                for name, session in sorted(self._sessions.items())
            },
        }
        if self._store is not None:
            snapshot["store"] = {
                "ledger": self._store.ledger.stats(),
                "results": self._store.results.stats(),
            }
        return snapshot

    # -- HTTP plumbing ---------------------------------------------------
    async def dispatch(
        self, request: http.HTTPRequest
    ) -> Tuple[int, Dict[str, Any]]:
        """Route one parsed request; never raises for expected errors."""
        try:
            if request.path == "/healthz" and request.method == "GET":
                return 200, self.handle_healthz()
            if request.path == "/metrics" and request.method == "GET":
                return 200, self.handle_metrics()
            if request.path == "/v1/budget" and request.method == "GET":
                return 200, self.handle_budget(
                    request.query.get("tenant", "")
                )
            if request.path == "/v1/results" and request.method == "GET":
                return 200, self.handle_results(request.query)
            if request.path == "/v1/plan" and request.method == "GET":
                return 200, self.handle_plan(request.query)
            if request.path == "/v1/snapshot" and request.method == "GET":
                return 200, await self.handle_snapshot(
                    request.query.get("tenant", "")
                )
            if request.path == "/v1/ingest" and request.method == "POST":
                body = request.json()
                if not isinstance(body, Mapping):
                    raise ValidationError("request body must be an object")
                return 200, await self.handle_ingest(body)
            if request.path == "/v1/release" and request.method == "POST":
                body = request.json()
                if not isinstance(body, Mapping):
                    raise ValidationError("request body must be an object")
                return 200, await self.handle_release(body)
            if (
                request.path == "/v1/release_batch"
                and request.method == "POST"
            ):
                body = request.json()
                if not isinstance(body, Mapping):
                    raise ValidationError("request body must be an object")
                return 200, await self.handle_release_batch(body)
        except http.ProtocolError as error:
            return error.status, {
                "error": "protocol_error",
                "message": str(error),
            }
        except ReproError as error:
            return _status_for(error), error_to_wire(error)
        except Exception as error:  # noqa: BLE001 — boundary catch-all
            # A bug (or a loader failure) must answer as a JSON 500,
            # not kill the connection with an opaque reset.
            traceback.print_exc()
            return 500, {
                "error": "internal_error",
                "message": f"{type(error).__name__}: {error}",
            }
        if request.path in ROUTES:
            return 405, {
                "error": "method_not_allowed",
                "message": f"{request.method} not allowed on {request.path}",
            }
        return 404, {
            "error": "not_found",
            "message": f"no route for {request.path}",
        }

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await http.read_request(reader)
                except http.ProtocolError as error:
                    http.write_response(
                        writer,
                        error.status,
                        {"error": "protocol_error", "message": str(error)},
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                started = time.monotonic()
                status, payload = await self.dispatch(request)
                latency_ms = (time.monotonic() - started) * 1000.0
                route = (
                    request.path if request.path in ROUTES else "unknown"
                )
                self._metrics.record(route, status, latency_ms)
                http.write_response(
                    writer, status, payload, keep_alive=request.keep_alive
                )
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            # stop() cancels idle keep-alive connections; finish the
            # task normally or asyncio.streams' done-callback logs the
            # cancellation as an unhandled exception.
            pass
        finally:
            writer.close()
            try:
                await asyncio.shield(writer.wait_closed())
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def start(
        self, host: str = "127.0.0.1", port: int = 8008
    ) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``.

        Pass ``port=0`` to bind an ephemeral port (tests/benchmarks).
        """
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def stop(self) -> None:
        """Stop accepting connections and close the listener.

        Open keep-alive connections are cancelled and awaited so no
        half-closed sockets or orphan tasks outlive the service, and
        every warm session is closed — which tears down worker pools
        and unlinks shared-memory shard segments when the backend
        factory built process-mode sharded backends.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        self._connections.clear()
        for session in self._sessions.values():
            session.close()
        if self._store is not None:
            # Barrier + close every WAL handle.  Purely tidy-up: the
            # durability contract never depends on a clean shutdown
            # (that is the whole point), and the store reopens handles
            # lazily if the service is started again.
            self._store.close()

    @asynccontextmanager
    async def serving(self, host: str = "127.0.0.1", port: int = 0):
        """``async with service.serving() as (host, port): …``"""
        bound = await self.start(host, port)
        try:
            yield bound
        finally:
            await self.stop()

    async def serve_forever(self) -> None:
        """Block serving until cancelled (the CLI entrypoint's loop)."""
        if self._server is None:
            raise ValidationError("call start() before serve_forever()")
        await self._server.serve_forever()
