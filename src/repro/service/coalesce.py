"""Single-flight request coalescing for cold-start work.

When two tenants hit the same cold dataset concurrently, the expensive
dataset-derived state (loading transactions, building the bitmap
backend, the item-support scan) should be built **once** and shared —
it is exact, non-private, and identical for every request.  The noise
each release adds on top is drawn per request downstream and is never
coalesced; see ``docs/privacy-accounting.md`` for why this split keeps
coalescing privacy-neutral.

:class:`Coalescer` implements the classic single-flight pattern over
asyncio: the first caller for a key starts the factory and parks an
``asyncio.Future`` under the key; concurrent callers for the same key
await that same future.  Results stay cached so later callers get the
warm object directly; failures are *not* cached — the future is
removed so the next caller retries the factory.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Hashable

__all__ = ["Coalescer"]


class Coalescer:
    """Deduplicate concurrent async factory calls per key.

    Not thread-safe: all calls must come from one event loop, which is
    how the service uses it (releases run in executor threads, but
    session acquisition always happens on the loop).
    """

    def __init__(self) -> None:
        self._futures: Dict[Hashable, "asyncio.Future[Any]"] = {}
        #: Factory invocations actually started (cold starts).
        self.started = 0
        #: Calls that piggybacked on an *in-flight* factory — the
        #: signature of two cold requests sharing one warm-up.
        self.coalesced = 0
        #: Calls served from an already-finished future (warm hits).
        self.hits = 0

    def __len__(self) -> int:
        return len(self._futures)

    async def get(
        self,
        key: Hashable,
        factory: Callable[[], Awaitable[Any]],
    ) -> Any:
        """Return the (possibly shared) result of ``factory`` for ``key``.

        Exactly one factory runs per key at a time; its failure is
        propagated to every waiter and then forgotten, so a transient
        error does not poison the key forever.
        """
        future = self._futures.get(key)
        if future is not None:
            if future.done():
                self.hits += 1
            else:
                self.coalesced += 1
            return await asyncio.shield(future)
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._futures[key] = future
        self.started += 1
        try:
            result = await factory()
        except BaseException as error:  # noqa: BLE001 — must unpark waiters
            self._futures.pop(key, None)
            future.set_exception(error)
            # Waiters consume the exception via the future; if nobody
            # is waiting, mark it retrieved so the loop does not log
            # an "exception was never retrieved" warning.
            future.exception()
            raise
        future.set_result(result)
        return result

    def discard(self, key: Hashable) -> None:
        """Forget a finished key (e.g. to force a rebuild in tests)."""
        future = self._futures.get(key)
        if future is not None and future.done():
            del self._futures[key]

    def stats(self) -> Dict[str, int]:
        """Cold starts / in-flight shared waits / warm hits."""
        return {
            "started": self.started,
            "coalesced": self.coalesced,
            "hits": self.hits,
        }
