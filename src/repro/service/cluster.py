"""Multi-process PrivBasis cluster: N worker services + one router.

:class:`PrivBasisCluster` runs ``num_workers`` copies of
:class:`~repro.service.app.PrivBasisService` as **spawned** OS
processes, all opened on the *same* ``--state-dir`` in shared mode,
fronted by one :class:`~repro.service.router.ClusterRouter`.  The
pieces compose into one logical service:

* **ε admission is cluster-wide.**  Every worker's registry hook goes
  through the shared ledger's flock-serialized
  :meth:`~repro.store.ledger.SharedLedgerJournal.debit_within_limit`,
  so two workers racing a tenant's last ε serialize on the ledger
  file lock — exactly one wins, the other answers 403.
* **Datasets have a single live owner.**  The router's rendezvous
  hashing sends all of a dataset's traffic to one worker, which
  serializes ingests/releases on its per-dataset lock and coalesces
  cold builds; ownership moves only when that worker dies.
* **Workers are crash-only.**  The supervisor restarts a dead (or
  router-marked-down) worker as a *fresh* process, which recovers its
  state from the store exactly like a single-process restart would —
  journaled debits, replayed ingest logs, rehydrated results.  A
  worker never rejoins routing with stale in-memory state.

Fault injection for tests and the soak benchmark goes through
:meth:`PrivBasisCluster.kill_worker` (``SIGKILL`` — no cleanup, the
honest crash).  See ``docs/operations.md`` for the deployment runbook.
"""

from __future__ import annotations

import asyncio
import importlib
import multiprocessing
import time
from contextlib import asynccontextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.errors import (
    ReproError,
    ValidationError,
    WorkerUnavailableError,
)
from repro.service.router import ClusterRouter

__all__ = [
    "ClusterConfig",
    "PrivBasisCluster",
    "resolve_loader_spec",
]

#: How long a spawning worker gets to report its bound port before the
#: supervisor gives up on it (spawn + imports + store recovery).
WORKER_BOOT_TIMEOUT = 60.0

#: Supervisor poll interval for dead / marked-down workers.
MONITOR_INTERVAL = 0.25

_PARALLEL_MODES = ("bitmap", "threads", "processes")


def resolve_loader_spec(spec: str):
    """Resolve a ``"package.module:function"`` dataset-loader spec.

    Spawned workers cannot be handed a closure (it will not pickle),
    so cluster configs name their loader by import path instead; each
    worker process imports and resolves it at startup.  Dotted
    attribute paths after the colon are followed, mirroring
    ``setuptools`` entry-point syntax.
    """
    module_name, separator, attribute = str(spec).partition(":")
    if not separator or not module_name or not attribute:
        raise ValidationError(
            f"loader spec must look like 'package.module:function', "
            f"got {spec!r}"
        )
    try:
        target: Any = importlib.import_module(module_name)
        for part in attribute.split("."):
            target = getattr(target, part)
    except (ImportError, AttributeError) as error:
        raise ValidationError(
            f"cannot resolve loader spec {spec!r}: {error}"
        )
    if not callable(target):
        raise ValidationError(
            f"loader spec {spec!r} resolves to non-callable {target!r}"
        )
    return target


@dataclass(frozen=True)
class ClusterConfig:
    """Everything a worker process needs to serve — and nothing that
    cannot cross a ``spawn`` boundary (the whole object is pickled).

    Attributes
    ----------
    tenants:
        The :meth:`~repro.service.registry.TenantRegistry.from_mapping`
        shape: ``{tenant_id: {"dataset": …, "epsilon_limit": …}}``.
        Every worker builds its own registry from this, so all workers
        enforce identical limits against the shared ledger.
    state_dir:
        The shared durable state directory — **required**: cluster
        workers coordinate ε admission and recovery through it.
    num_workers:
        Worker process count.
    fsync:
        WAL fsync policy, as for a single service.
    loader_spec:
        Optional ``"package.module:function"`` dataset loader
        (:func:`resolve_loader_spec`); ``None`` uses the built-in
        dataset registry.
    max_inflight:
        Per-worker admission bound on concurrent releases.
    parallel, shard_workers, shard_size:
        Per-worker counting plane, as for ``python -m repro.service``
        (``"bitmap"`` default, or a sharded backend in ``"threads"`` /
        ``"processes"`` mode).
    data_plane, memory_budget_mb:
        ``"memory"`` (default) keeps worker datasets RAM-resident;
        ``"mmap"`` has each worker spill its datasets into
        memory-mapped shard segments under the shared state dir
        (unique per-build directories, so workers never race) and
        serve out-of-core with the given resident-cache budget.
    reuse:
        Per-worker reuse plane toggle (``--no-reuse`` sets this
        ``False``).  Each worker looks up reuse sources in the shared
        result store it itself replayed at startup; hits are pure
        post-processing, so workers answering from different replay
        points is safe — at worst a worker misses and runs fresh.
    """

    tenants: Mapping[str, Mapping[str, object]]
    state_dir: str
    num_workers: int = 2
    fsync: str = "batch"
    loader_spec: Optional[str] = None
    max_inflight: int = 8
    parallel: str = "bitmap"
    shard_workers: Optional[int] = None
    shard_size: Optional[int] = None
    data_plane: str = "memory"
    memory_budget_mb: Optional[int] = None
    reuse: bool = True

    def validate(self) -> None:
        """Fail fast on a config no worker could start from."""
        if not self.state_dir:
            raise ValidationError(
                "cluster workers need a state_dir: ε admission is "
                "coordinated through the shared durable ledger"
            )
        if self.num_workers < 1:
            raise ValidationError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.parallel not in _PARALLEL_MODES:
            raise ValidationError(
                f"parallel must be one of {_PARALLEL_MODES}, "
                f"got {self.parallel!r}"
            )
        if self.data_plane not in ("memory", "mmap"):
            raise ValidationError(
                f"data_plane must be 'memory' or 'mmap', "
                f"got {self.data_plane!r}"
            )
        if self.memory_budget_mb is not None and self.memory_budget_mb < 1:
            raise ValidationError(
                f"memory_budget_mb must be >= 1, "
                f"got {self.memory_budget_mb}"
            )
        if not isinstance(self.tenants, Mapping) or not self.tenants:
            raise ValidationError(
                "cluster config needs a non-empty tenants mapping"
            )
        if self.loader_spec is not None:
            spec = str(self.loader_spec)
            module_name, separator, attribute = spec.partition(":")
            if not separator or not module_name or not attribute:
                raise ValidationError(
                    f"loader spec must look like "
                    f"'package.module:function', got {spec!r}"
                )

    def tenant_datasets(self) -> Dict[str, str]:
        """``{tenant_id: dataset}`` — what the router hashes on."""
        return {
            str(tenant): str(entry.get("dataset", ""))
            for tenant, entry in self.tenants.items()
            if isinstance(entry, Mapping)
        }


def _backend_factory_for(config: ClusterConfig):
    """The worker-side ``database -> CountingBackend`` factory.

    ``data_plane="mmap"`` returns ``None``: the worker's service
    builds its own out-of-core sharded backend per dataset.
    """
    if config.parallel == "bitmap" or config.data_plane == "mmap":
        return None
    from repro.engine.sharded import DEFAULT_SHARD_SIZE, ShardedBackend

    mode = config.parallel
    shard_size = config.shard_size or DEFAULT_SHARD_SIZE
    shard_workers = config.shard_workers

    def factory(database):
        return ShardedBackend(
            database,
            shard_size=shard_size,
            max_workers=shard_workers,
            mode=mode,
        )

    return factory


async def _worker_serve(index: int, config: ClusterConfig, conn) -> None:
    """Build and run one worker service, reporting its port (or a
    startup error) through the pipe before settling into serving."""
    try:
        from repro.service.app import PrivBasisService
        from repro.service.registry import TenantRegistry

        registry = TenantRegistry.from_mapping(config.tenants)
        loader = (
            resolve_loader_spec(config.loader_spec)
            if config.loader_spec is not None
            else None
        )
        service = PrivBasisService(
            registry,
            dataset_loader=loader,
            backend_factory=_backend_factory_for(config),
            max_inflight=config.max_inflight,
            state_dir=config.state_dir,
            fsync=config.fsync,
            shared_state=True,
            data_plane=config.data_plane,
            memory_budget_mb=config.memory_budget_mb,
            data_plane_mode=(
                "processes" if config.parallel == "processes"
                else "threads"
            ),
            shard_size=config.shard_size,
            shard_workers=config.shard_workers,
            reuse=config.reuse,
        )
        _host, port = await service.start("127.0.0.1", 0)
    except Exception as error:  # noqa: BLE001 — crosses the pipe
        conn.send(("error", f"{type(error).__name__}: {error}"))
        conn.close()
        return
    conn.send(("ok", port))
    conn.close()
    await service.serve_forever()


def _worker_main(index: int, config: ClusterConfig, conn) -> None:
    """Spawn entrypoint for one worker process.

    Module-level (and handed only picklable arguments) so the
    ``spawn`` start method can import and call it.  The worker is
    crash-only: it never runs shutdown cleanup — the supervisor
    terminates it, and durability never depends on a clean exit.
    """
    try:
        asyncio.run(_worker_serve(index, config, conn))
    except KeyboardInterrupt:
        pass


class PrivBasisCluster:
    """Supervise N worker processes behind one router.

    ``await start()`` spawns every worker, waits for each to report
    its ephemeral port, registers them with the router, binds the
    router's listener, and starts the monitor task.  From then on the
    monitor restarts any worker that died (or that the router marked
    down after a failed proxy) as a fresh process — recovery is the
    store's job, not the supervisor's.

    Use :meth:`serving` in tests and benchmarks::

        cluster = PrivBasisCluster(config)
        async with cluster.serving() as (host, port):
            ...  # drive it with ServiceClient(host, port, ...)
    """

    def __init__(self, config: ClusterConfig) -> None:
        config.validate()
        self._config = config
        self._context = multiprocessing.get_context("spawn")
        self._processes: Dict[int, multiprocessing.process.BaseProcess] = {}
        self._restarts = 0
        self._stopping = False
        self._monitor_task: Optional[asyncio.Task] = None
        self._router = ClusterRouter(
            config.tenant_datasets(), info=self._cluster_info
        )

    # -- introspection ---------------------------------------------------
    @property
    def router(self) -> ClusterRouter:
        """The cluster's front door (clients connect to its port)."""
        return self._router

    @property
    def restarts(self) -> int:
        """Workers restarted by the monitor since :meth:`start`."""
        return self._restarts

    def worker_pid(self, index: int) -> Optional[int]:
        """The OS pid of worker ``index`` (``None`` before spawn)."""
        process = self._processes.get(index)
        return process.pid if process is not None else None

    def _cluster_info(self) -> Dict[str, Any]:
        return {
            "cluster": {
                "num_workers": self._config.num_workers,
                "restarts": self._restarts,
                "pids": {
                    str(index): process.pid
                    for index, process in sorted(self._processes.items())
                },
            }
        }

    # -- worker lifecycle ------------------------------------------------
    async def _spawn_worker(self, index: int) -> None:
        """Spawn worker ``index`` and register it once it reports in.

        Raises :class:`~repro.errors.WorkerUnavailableError` if the
        process dies before binding and
        :class:`~repro.errors.ValidationError` if it reports a
        startup error (bad config fails loudly, not in a retry loop).
        """
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_worker_main,
            args=(index, self._config, child_conn),
            name=f"privbasis-worker-{index}",
            # Workers in 'processes' counting mode spawn their own
            # pool children, which daemonic processes may not do.
            daemon=self._config.parallel != "processes",
        )
        process.start()
        child_conn.close()

        def await_handshake() -> Tuple[str, Any]:
            deadline = time.monotonic() + WORKER_BOOT_TIMEOUT
            while time.monotonic() < deadline:
                try:
                    if parent_conn.poll(0.2):
                        return parent_conn.recv()
                except (EOFError, OSError):
                    break
                if not process.is_alive():
                    break
            process.join(timeout=1)
            if process.is_alive():
                raise WorkerUnavailableError(
                    f"worker {index} did not report a port within "
                    f"{WORKER_BOOT_TIMEOUT:g}s"
                )
            raise WorkerUnavailableError(
                f"worker {index} died during startup"
            )

        loop = asyncio.get_running_loop()
        try:
            tag, value = await loop.run_in_executor(
                None, await_handshake
            )
        except (WorkerUnavailableError, asyncio.CancelledError):
            # Covers stop() cancelling the monitor mid-respawn: the
            # half-born worker must not be orphaned.
            if process.is_alive():
                process.kill()
            process.join(timeout=5)
            parent_conn.close()
            raise
        parent_conn.close()
        if tag == "error":
            if process.is_alive():
                process.kill()
            process.join(timeout=5)
            raise ValidationError(
                f"worker {index} failed to start: {value}"
            )
        self._processes[index] = process
        self._router.set_worker(index, "127.0.0.1", int(value))

    def kill_worker(self, index: int) -> None:
        """``SIGKILL`` worker ``index`` — fault injection.

        No cleanup runs in the worker (that is the point): in-flight
        requests on it fail per the router's retry/503 semantics, and
        the monitor respawns a fresh process that recovers from the
        shared store.
        """
        process = self._processes.get(index)
        if process is not None and process.is_alive():
            process.kill()

    async def _monitor(self) -> None:
        """Restart dead or marked-down workers until :meth:`stop`."""
        while not self._stopping:
            await asyncio.sleep(MONITOR_INTERVAL)
            if self._stopping:
                return
            for index in range(self._config.num_workers):
                process = self._processes.get(index)
                dead = process is None or not process.is_alive()
                if not dead and index not in self._router.down_indexes():
                    continue
                # A marked-down-but-alive worker is killed rather than
                # re-registered: it left routing because a proxy to it
                # failed, and only a fresh process (which recovers
                # from the store) may rejoin — never stale memory.
                if process is not None:
                    if process.is_alive():
                        process.kill()
                    process.join(timeout=5)
                self._router.mark_down(index)
                try:
                    await self._spawn_worker(index)
                except ReproError:
                    continue  # retry on the next monitor tick
                self._restarts += 1

    # -- lifecycle -------------------------------------------------------
    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Spawn all workers, bind the router, start the monitor.

        Returns the router's bound ``(host, port)``.
        """
        for index in range(self._config.num_workers):
            await self._spawn_worker(index)
        bound = await self._router.start(host, port)
        self._monitor_task = asyncio.ensure_future(self._monitor())
        return bound

    async def stop(self) -> None:
        """Stop the monitor, the router, and every worker process."""
        self._stopping = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
            self._monitor_task = None
        await self._router.stop()
        for process in self._processes.values():
            if process.is_alive():
                process.terminate()
        for process in self._processes.values():
            process.join(timeout=10)
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
        self._processes.clear()

    @asynccontextmanager
    async def serving(self, host: str = "127.0.0.1", port: int = 0):
        """``async with cluster.serving() as (host, port): …``"""
        bound = await self.start(host, port)
        try:
            yield bound
        finally:
            await self.stop()
