"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

Just enough of RFC 9112 for a JSON API: request-line + headers +
``Content-Length`` bodies, keep-alive connections, and JSON responses.
No chunked encoding, no TLS, no compression — this is an internal
service protocol, and every limit (header size, body size) is explicit
so a misbehaving client cannot balloon server memory.

Shared by the server (:mod:`repro.service.app`) and the async client
(:mod:`repro.service.client`) so the two cannot drift apart.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

__all__ = [
    "HTTPRequest",
    "ProtocolError",
    "read_raw_response",
    "read_request",
    "read_response",
    "write_raw_request",
    "write_raw_response",
    "write_response",
]

#: Hard limits on inbound framing.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1 * 1024 * 1024

#: Client-side cap on *response* bodies.  Much larger than the inbound
#: request cap: the server is trusted, and a wide release (k up to
#: ``protocol.MAX_K``) or a long-lived ``/metrics`` payload legitimately
#: exceeds the 1 MiB request bound.
MAX_RESPONSE_BYTES = 64 * 1024 * 1024

_STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """Malformed or over-limit HTTP framing (connection is dropped)."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(message)


@dataclass
class HTTPRequest:
    """One parsed inbound request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    query: Dict[str, str] = field(default_factory=dict)

    @property
    def keep_alive(self) -> bool:
        """Whether the client asked to reuse the connection."""
        connection = self.headers.get("connection", "keep-alive")
        return connection.lower() != "close"  # RFC 9110: case-insensitive

    def json(self) -> object:
        """Decode the body as JSON (:class:`ProtocolError` on failure)."""
        if not self.body:
            raise ProtocolError(400, "request body must be JSON")
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(400, f"invalid JSON body: {error}")


async def _read_line(reader: asyncio.StreamReader, limit: int) -> bytes:
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return b""  # clean EOF between requests
        raise ProtocolError(400, "truncated request")
    except asyncio.LimitOverrunError:
        raise ProtocolError(413, "request line or header too long")
    if len(line) > limit:
        raise ProtocolError(413, "request line or header too long")
    return line[:-2]


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[HTTPRequest]:
    """Parse one request; ``None`` on clean EOF (client closed)."""
    request_line = await _read_line(reader, MAX_REQUEST_LINE)
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, f"malformed request line: {parts!r}")
    method, target, _version = parts
    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(split.query).items()
    }
    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await _read_line(reader, MAX_HEADER_BYTES)
        if not line:
            break
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise ProtocolError(413, "headers too large")
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise ProtocolError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError(400, "invalid Content-Length")
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise ProtocolError(400, "truncated body")
    elif "transfer-encoding" in headers:
        raise ProtocolError(400, "chunked bodies are not supported")
    return HTTPRequest(
        method=method.upper(),
        path=split.path,
        headers=headers,
        body=body,
        query=query,
    )


def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: object,
    keep_alive: bool = True,
) -> None:
    """Serialize ``payload`` as a JSON response onto ``writer``."""
    body = json.dumps(payload, separators=(",", ":")).encode()
    reason = _STATUS_REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        f"\r\n"
    )
    writer.write(head.encode("latin-1") + body)


def write_request(
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    payload: Optional[object] = None,
) -> None:
    """Serialize one client request (JSON body optional)."""
    body = (
        b""
        if payload is None
        else json.dumps(payload, separators=(",", ":")).encode()
    )
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: privbasis\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: keep-alive\r\n"
        f"\r\n"
    )
    writer.write(head.encode("latin-1") + body)


async def read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, object]:
    """Parse one response into ``(status, decoded JSON payload)``."""
    status, body = await read_raw_response(reader)
    payload = json.loads(body) if body else None
    return status, payload


def write_raw_request(
    writer: asyncio.StreamWriter,
    method: str,
    target: str,
    body: bytes = b"",
) -> None:
    """Forward one request with an already-serialized body.

    The router's proxy path: it re-frames the request (its own
    ``Content-Length``/keep-alive headers) but never re-encodes the
    JSON body, so what a worker parses is byte-for-byte what the
    client sent.  ``target`` carries the path *and* query string.
    """
    head = (
        f"{method} {target} HTTP/1.1\r\n"
        f"Host: privbasis\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: keep-alive\r\n"
        f"\r\n"
    )
    writer.write(head.encode("latin-1") + body)


async def read_raw_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, bytes]:
    """Parse one response into ``(status, raw body bytes)``.

    The router forwards worker responses without decoding them;
    :func:`read_response` layers JSON decoding on top for clients.
    """
    status_line = await _read_line(reader, MAX_REQUEST_LINE)
    if not status_line:
        raise ProtocolError(400, "server closed the connection")
    parts = status_line.decode("latin-1").split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ProtocolError(400, f"malformed status line: {status_line!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    while True:
        line = await _read_line(reader, MAX_HEADER_BYTES)
        if not line:
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    if length > MAX_RESPONSE_BYTES:
        raise ProtocolError(413, "response body too large")
    body = await reader.readexactly(length) if length else b""
    return status, body


def write_raw_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    keep_alive: bool = True,
) -> None:
    """Relay an already-serialized JSON body as a response.

    The router's reply path — the worker's payload goes back to the
    client byte-for-byte under the router's own framing.
    """
    reason = _STATUS_REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        f"\r\n"
    )
    writer.write(head.encode("latin-1") + body)
