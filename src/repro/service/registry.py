"""Tenant registry: API tenants, their datasets, and their ε ledgers.

A *tenant* is one analyst (or downstream application) the data holder
serves.  Each tenant is bound to exactly one named dataset from
:mod:`repro.datasets.registry` and owns a
:class:`~repro.dp.budget.PrivacyBudget` ledger capped at its
``epsilon_limit`` — the per-tenant privacy contract the service
enforces with HTTP 403 once exhausted.

Tenants sharing a dataset share the *exact* counting substrate (one
:class:`~repro.engine.session.PrivBasisSession` per dataset, built via
the coalescer) but never share budgets or randomness: ledgers are
per-tenant, noise is per-release.

Streaming: each tenant additionally carries an ``ingest`` permission
(default ``True``) gating ``POST /v1/ingest``; a read-only analyst
tenant (``"ingest": false``) can release and read snapshots but not
append — appends answer HTTP 403 ``ingest_forbidden``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

from repro.dp.budget import PrivacyBudget
from repro.errors import (
    BudgetExceededError,
    UnknownTenantError,
    ValidationError,
)

if TYPE_CHECKING:  # service → store is a runtime-optional dependency
    from repro.store.ledger import LedgerJournal

__all__ = ["Tenant", "TenantRegistry"]

#: Relative tolerance for admission checks, matching the ledger's.
_REL_TOL = 1e-9


@dataclass
class Tenant:
    """One API tenant: identity, dataset binding, ε ledger, and the
    ingest permission gating ``POST /v1/ingest``.

    ``ingest`` defaults to ``True`` (the data holder's feed and demo
    setups append freely); set ``"ingest": false`` in the config to
    make an analyst tenant read-only — it can still release and read
    snapshots, but appending answers HTTP 403 ``ingest_forbidden``.
    """

    tenant_id: str
    dataset: str
    epsilon_limit: float
    ingest: bool = True
    ledger: PrivacyBudget = field(init=False)
    _journal: Optional["LedgerJournal"] = field(
        init=False, default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.tenant_id or not isinstance(self.tenant_id, str):
            raise ValidationError(
                f"tenant_id must be a non-empty string, "
                f"got {self.tenant_id!r}"
            )
        if not (self.epsilon_limit > 0):
            raise ValidationError(
                f"epsilon_limit for tenant {self.tenant_id!r} must be "
                f"positive, got {self.epsilon_limit!r}"
            )
        self.ledger = PrivacyBudget(float(self.epsilon_limit))

    # -- durable accounting ---------------------------------------------
    def attach_journal(self, journal: "LedgerJournal") -> None:
        """Bind this tenant's ledger to a durable journal.

        Two effects, in order: every debit the journal already holds
        for this tenant is *restored* into the in-memory ledger (the
        recovery path), then the ledger's write-ahead hook is
        installed so every future :meth:`charge` reaches the journal
        before it reaches memory (the live path).  From here on
        :attr:`spent` reads the journaled value, so both paths answer
        admission checks from the same number.

        The hook goes through the journal's atomic
        :meth:`~repro.store.ledger.LedgerJournal.debit_within_limit`,
        so ``epsilon_limit`` is enforced by the journal itself at the
        instant of the debit.  For a single process that merely
        re-verifies what :meth:`charge` already checked; on a
        cluster-shared journal it is the *binding* check — the one
        place two workers racing a tenant's last ε get serialized.
        """
        restored = journal.entries(self.tenant_id)
        if restored:
            self.ledger.restore_entries(restored)
        tenant_id = self.tenant_id
        limit = float(self.epsilon_limit)
        self.ledger.attach_journal(
            lambda label, epsilon: journal.debit_within_limit(
                tenant_id, epsilon, limit, label
            )
        )
        self._journal = journal

    @property
    def spent(self) -> float:
        """ε consumed so far — the **journaled** value when a durable
        journal is attached, the in-memory ledger otherwise.

        This is the single spent figure every admission check reads.
        Comparing against the journal (not an in-memory snapshot)
        means a freshly recovered service and a long-running one
        enforce ``epsilon_limit`` through the same code path, and the
        two sources cannot silently diverge.
        """
        if self._journal is not None:
            return self._journal.spent(self.tenant_id)
        return self.ledger.spent

    @property
    def remaining(self) -> float:
        """Budget still available under ``epsilon_limit``; never
        negative (a recovered over-count simply clamps to zero)."""
        return max(0.0, float(self.epsilon_limit) - self.spent)

    def charge(self, epsilon: float, label: str = "") -> float:
        """Spend ``epsilon`` against this tenant's durable ledger.

        The exhausted-budget check compares against :attr:`spent`
        (journaled when durable) *before* the ledger records
        anything; the ledger's own overdraft check then re-verifies
        against its in-memory state, which journal attachment keeps
        in lockstep.  With a journal attached the debit is
        write-ahead: it reaches the WAL before the in-memory entry
        exists, and the caller must run the store's durability
        barrier before releasing the corresponding noisy answer.
        """
        if not (epsilon > 0):
            raise ValidationError(
                f"epsilon must be positive, got {epsilon!r}"
            )
        tolerance = _REL_TOL * float(self.epsilon_limit)
        if epsilon > self.remaining + tolerance:
            raise BudgetExceededError(epsilon, self.remaining)
        return self.ledger.spend(epsilon, label=label)

    def snapshot(self) -> Dict[str, object]:
        """The ``/v1/budget`` payload for this tenant.

        With a durable journal attached the ledger section is built
        from the *journal* (same shape as the in-memory
        :meth:`~repro.dp.budget.PrivacyBudget.snapshot`): for one
        process the two are in lockstep, but on a cluster-shared
        journal only the journal sees debits other workers made, and
        a budget read must never show a tenant less spent than the
        cluster has recorded.
        """
        if self._journal is not None:
            ledger_view: Dict[str, object] = {
                "epsilon": float(self.epsilon_limit),
                "spent": self.spent,
                "remaining": self.remaining,
                "entries": [
                    {"label": label, "epsilon": epsilon}
                    for label, epsilon in self._journal.entries(
                        self.tenant_id
                    )
                ],
            }
        else:
            ledger_view = self.ledger.snapshot()
        return {
            "tenant": self.tenant_id,
            "dataset": self.dataset,
            "epsilon_limit": self.epsilon_limit,
            "ingest": self.ingest,
            "ledger": ledger_view,
        }


class TenantRegistry:
    """Maps tenant ids to :class:`Tenant` records.

    Construct directly from :class:`Tenant` objects, from a plain
    mapping (:meth:`from_mapping`) or from a JSON config file
    (:meth:`from_json_file`) — the shape the ``python -m repro.service``
    entrypoint reads.
    """

    def __init__(self, tenants: Optional[List[Tenant]] = None) -> None:
        self._tenants: Dict[str, Tenant] = {}
        for tenant in tenants or []:
            self.add(tenant)

    def add(self, tenant: Tenant) -> None:
        """Register ``tenant`` (duplicate ids are a config error).

        Dataset names are *not* validated here: which names resolve is
        the dataset loader's business, and the service accepts custom
        loaders.  :class:`~repro.service.app.PrivBasisService` checks
        names against the built-in registry at startup when it uses
        the default loader, so CLI typos still fail fast.
        """
        if tenant.tenant_id in self._tenants:
            raise ValidationError(
                f"duplicate tenant id {tenant.tenant_id!r}"
            )
        if not tenant.dataset or not isinstance(tenant.dataset, str):
            raise ValidationError(
                f"tenant {tenant.tenant_id!r} needs a non-empty dataset "
                f"name, got {tenant.dataset!r}"
            )
        self._tenants[tenant.tenant_id] = tenant

    def get(self, tenant_id: str) -> Tenant:
        """Look up a tenant (:class:`UnknownTenantError` if absent)."""
        tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise UnknownTenantError(tenant_id)
        return tenant

    def __len__(self) -> int:
        return len(self._tenants)

    def __iter__(self):
        return iter(self._tenants.values())

    def tenant_ids(self) -> List[str]:
        """All registered tenant ids, in registration order."""
        return list(self._tenants)

    def attach_journal(self, journal: "LedgerJournal") -> None:
        """Bind every tenant's ledger to a durable journal.

        Call once at service startup, before any release is served:
        each tenant's journaled debit history is restored and future
        spends become write-ahead (see :meth:`Tenant.attach_journal`).
        Journal entries for tenants no longer in the config are left
        in the journal untouched — history is never dropped just
        because a tenant was removed.
        """
        for tenant in self._tenants.values():
            tenant.attach_journal(journal)

    def datasets(self) -> List[str]:
        """Distinct datasets referenced by tenants (session pre-warm)."""
        seen: Dict[str, None] = {}
        for tenant in self._tenants.values():
            seen.setdefault(tenant.dataset, None)
        return list(seen)

    @classmethod
    def from_mapping(
        cls, config: Mapping[str, Mapping[str, object]]
    ) -> "TenantRegistry":
        """Build from ``{tenant_id: {"dataset": ..., "epsilon_limit": ...}}``."""
        registry = cls()
        for tenant_id, entry in config.items():
            if not isinstance(entry, Mapping):
                raise ValidationError(
                    f"tenant {tenant_id!r} config must be an object, "
                    f"got {entry!r}"
                )
            unknown = set(entry) - {"dataset", "epsilon_limit", "ingest"}
            if unknown:
                raise ValidationError(
                    f"tenant {tenant_id!r} has unknown config keys "
                    f"{sorted(unknown)}"
                )
            try:
                dataset = str(entry["dataset"])
                epsilon_limit = float(entry["epsilon_limit"])  # type: ignore[arg-type]
            except (KeyError, TypeError, ValueError):
                raise ValidationError(
                    f"tenant {tenant_id!r} needs 'dataset' (str) and "
                    f"'epsilon_limit' (number), got {dict(entry)!r}"
                )
            ingest = entry.get("ingest", True)
            if not isinstance(ingest, bool):
                raise ValidationError(
                    f"tenant {tenant_id!r} 'ingest' must be a JSON "
                    f"boolean, got {ingest!r}"
                )
            registry.add(
                Tenant(tenant_id, dataset, epsilon_limit, ingest=ingest)
            )
        if not len(registry):
            raise ValidationError("tenant config defines no tenants")
        return registry

    @classmethod
    def from_json_file(cls, path: str) -> "TenantRegistry":
        """Load :meth:`from_mapping` config from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            config = json.load(handle)
        if not isinstance(config, dict):
            raise ValidationError(
                f"tenant config file {path!r} must hold a JSON object"
            )
        return cls.from_mapping(config)

    @classmethod
    def demo(cls) -> "TenantRegistry":
        """Two demo tenants on ``mushroom`` (the README quickstart)."""
        return cls.from_mapping(
            {
                "alice": {"dataset": "mushroom", "epsilon_limit": 5.0},
                "bob": {"dataset": "mushroom", "epsilon_limit": 2.0},
            }
        )
