"""Multi-tenant network serving for PrivBasis releases.

This package puts a network boundary in front of the in-process
serving layer (:class:`~repro.engine.session.PrivBasisSession`): an
asyncio JSON-over-HTTP server (stdlib only) with per-tenant ε ledgers,
coalesced cold starts, bounded admission, and telemetry.  Start it
with ``python -m repro.service``; drive it with
:class:`~repro.service.client.ServiceClient` or plain ``curl``.

Layer map (see ``docs/architecture.md`` for the full picture)::

    HTTP client ──► service.app ──► engine.session ──► engine backends
                      │  per-tenant ε ledgers (dp.budget)
                      │  coalesced cold starts (service.coalesce)
                      └─ admission control + /metrics

Privacy posture: tenants share only *exact* counting state; budgets
are per-tenant and noise is drawn fresh per release (requests are
seed-less by contract) — see ``docs/privacy-accounting.md``.

Streaming: ``POST /v1/ingest`` appends transactions through the warm
session's incremental ``extend`` path (serialized with releases per
dataset), ``GET /v1/snapshot`` reports the served data version, and
every release response carries the ``snapshot_version`` it was
computed on — see ``docs/streaming.md``.

Cluster mode: ``python -m repro.service --workers N --state-dir DIR``
runs N worker processes (:mod:`repro.service.cluster`) behind a
dataset-affinity router (:mod:`repro.service.router`), coordinating
ε admission through the shared write-ahead ledger — see
``docs/operations.md``.
"""

from repro.service.app import PrivBasisService
from repro.service.client import ServiceClient, ServiceHTTPError
from repro.service.cluster import ClusterConfig, PrivBasisCluster
from repro.service.coalesce import Coalescer
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.registry import Tenant, TenantRegistry
from repro.service.router import ClusterRouter

__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "Coalescer",
    "LatencyHistogram",
    "PrivBasisCluster",
    "PrivBasisService",
    "ServiceClient",
    "ServiceHTTPError",
    "ServiceMetrics",
    "Tenant",
    "TenantRegistry",
]
