"""Cluster front door: dataset-affinity routing over worker processes.

The :class:`ClusterRouter` is the single listener clients talk to when
the service runs as a multi-process cluster
(:mod:`repro.service.cluster`).  It speaks the same stdlib HTTP framing
as the workers (:mod:`repro.service.http`) and forwards request bodies
**byte-for-byte** — it never re-encodes JSON, never inspects payloads
beyond the ``tenant`` field it routes on, and never touches noise or ε.

Routing is **rendezvous hashing on the dataset**: each request's tenant
is mapped to its dataset (the router is handed the tenant→dataset
binding at construction) and the dataset's highest-scoring *healthy*
worker owns it.  Dataset affinity is what makes the cluster behave like
one service:

* a cold dataset hit by a thundering herd lands on one worker, whose
  in-process coalescer builds the session exactly once cluster-wide;
* ingests and releases for a dataset serialize on that worker's
  per-dataset lock, so snapshot versions stay linear;
* when a worker dies, rendezvous hashing moves only *its* datasets to
  survivors — the others keep their warm sessions.

Failure semantics are asymmetric by design (see
:class:`~repro.errors.WorkerUnavailableError`): a ``GET`` that loses
its worker is retried on the surviving owners (reads are free and
idempotent), while a ``POST`` that may have reached a worker is
**never** resent — a replayed release could charge a tenant's ε ledger
twice — and surfaces a structured 503 instead.  Because every debit is
journaled write-ahead in the shared ledger, the failed POST can at
worst *over*-count spent budget, never under-count it.

The router answers ``GET /healthz`` itself (cluster topology and
worker health) and fans ``GET /metrics`` out to every healthy worker,
returning ``{"workers": {index: payload}}``.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from contextlib import asynccontextmanager
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)
from urllib.parse import urlencode

from repro.errors import WorkerUnavailableError, error_to_wire
from repro.service import http

__all__ = ["ClusterRouter", "WorkerEndpoint"]

#: Keep-alive connections pooled per worker endpoint.  Beyond this the
#: router opens (and afterwards closes) fresh connections — the pool
#: bounds idle sockets, not concurrency.
POOL_LIMIT = 8


def _rendezvous_score(key: str, index: int) -> int:
    """The rendezvous (highest-random-weight) score of ``key`` on
    worker ``index`` — a 64-bit keyed hash; the healthy worker with
    the highest score owns the key."""
    digest = hashlib.blake2b(
        f"{key}|{index}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class WorkerEndpoint:
    """One worker's address plus a small keep-alive connection pool.

    Pooled connections are validated on checkout (``at_eof`` /
    ``is_closing`` means the worker closed or died since the last use)
    so a stale socket is discarded instead of failing a request —
    which matters most for POSTs, where a send-then-die looks like a
    real loss and must surface as 503.
    """

    def __init__(self, index: int, host: str, port: int) -> None:
        self.index = int(index)
        self.host = host
        self.port = int(port)
        self._pool: List[
            Tuple[asyncio.StreamReader, asyncio.StreamWriter]
        ] = []

    async def acquire(
        self,
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """A live connection to the worker (pooled or fresh).

        Raises ``OSError`` when the worker no longer accepts — the
        router treats that as the worker being gone.
        """
        while self._pool:
            reader, writer = self._pool.pop()
            if reader.at_eof() or writer.is_closing():
                writer.close()
                continue
            return reader, writer
        return await asyncio.open_connection(self.host, self.port)

    def release(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Return a healthy connection to the pool (or close it)."""
        if (
            not reader.at_eof()
            and not writer.is_closing()
            and len(self._pool) < POOL_LIMIT
        ):
            self._pool.append((reader, writer))
        else:
            writer.close()

    def close(self) -> None:
        """Drop every pooled connection (endpoint leaves routing)."""
        while self._pool:
            _reader, writer = self._pool.pop()
            writer.close()


class ClusterRouter:
    """Route client requests to worker processes by dataset affinity.

    Parameters
    ----------
    tenant_datasets:
        ``{tenant_id: dataset_name}`` — the binding the router hashes
        on.  Requests naming an unknown tenant are still routed
        (deterministically, by the tenant string) so the owning worker
        can answer its usual 404.
    info:
        Optional callable returning extra key/value pairs merged into
        the ``/healthz`` payload (the cluster supervisor reports its
        restart count through this).

    Lifecycle mirrors :class:`~repro.service.app.PrivBasisService`:
    :meth:`start` / :meth:`serve_forever` / :meth:`stop`, or the
    :meth:`serving` context manager.  Workers enter routing via
    :meth:`set_worker` and leave it only via :meth:`mark_down` — a
    marked-down worker never silently rejoins; the supervisor kills it
    and registers a *fresh* process, so no stale session state can
    re-enter the cluster.
    """

    def __init__(
        self,
        tenant_datasets: Mapping[str, str],
        info: Optional[Callable[[], Dict[str, Any]]] = None,
    ) -> None:
        self._tenant_datasets = {
            str(tenant): str(dataset)
            for tenant, dataset in tenant_datasets.items()
        }
        self._info = info
        self._workers: Dict[int, WorkerEndpoint] = {}
        self._down: Set[int] = set()
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._started_at = time.monotonic()
        self._proxied = 0
        self._unavailable = 0

    # -- membership ------------------------------------------------------
    def set_worker(self, index: int, host: str, port: int) -> None:
        """Register (or replace) worker ``index`` at ``host:port``.

        Replacing an endpoint closes the old pool first; the index is
        cleared from the down set — the supervisor calls this only
        with a freshly spawned process.
        """
        index = int(index)
        old = self._workers.pop(index, None)
        if old is not None:
            old.close()
        self._down.discard(index)
        self._workers[index] = WorkerEndpoint(index, host, port)

    def mark_down(self, index: int) -> None:
        """Remove worker ``index`` from routing (it stays down until
        the supervisor registers a fresh replacement)."""
        index = int(index)
        endpoint = self._workers.pop(index, None)
        if endpoint is not None:
            endpoint.close()
        self._down.add(index)

    def down_indexes(self) -> Set[int]:
        """Worker indexes currently excluded from routing — what the
        supervisor polls to know whom to kill and respawn."""
        return set(self._down)

    def healthy_count(self) -> int:
        """Workers currently in routing."""
        return len(self._workers)

    def owner_for(self, key: str) -> Optional[WorkerEndpoint]:
        """The healthy worker owning ``key`` (rendezvous hashing), or
        ``None`` when no worker is in routing."""
        best: Optional[WorkerEndpoint] = None
        best_score = -1
        for index, endpoint in self._workers.items():
            score = _rendezvous_score(key, index)
            if score > best_score:
                best, best_score = endpoint, score
        return best

    # -- routing ---------------------------------------------------------
    def _routing_key(self, request: http.HTTPRequest) -> str:
        """The affinity key for one request.

        Tenant from the query string (GETs) or the JSON body (POSTs),
        mapped to its dataset.  Unknown tenants hash by the raw tenant
        string, tenant-less requests by path — either way the choice
        is deterministic, which is all correctness needs (the worker
        answers the 404/400 itself).
        """
        tenant = request.query.get("tenant")
        if tenant is None and request.body:
            try:
                body = json.loads(request.body)
            except (UnicodeDecodeError, json.JSONDecodeError):
                body = None
            if isinstance(body, dict):
                value = body.get("tenant")
                if isinstance(value, str):
                    tenant = value
        if tenant:
            return self._tenant_datasets.get(tenant, tenant)
        return request.path

    @staticmethod
    def _target(request: http.HTTPRequest) -> str:
        """Rebuild the request target (path + query) for forwarding."""
        if request.query:
            return f"{request.path}?{urlencode(request.query)}"
        return request.path

    @staticmethod
    def _unavailable_body(detail: str) -> bytes:
        payload = error_to_wire(WorkerUnavailableError(detail))
        return json.dumps(payload, separators=(",", ":")).encode()

    async def _proxy(
        self, request: http.HTTPRequest
    ) -> Tuple[int, bytes]:
        """Forward one request to its owning worker.

        The retry ladder encodes the ε-safety asymmetry:

        * **connect failed** — nothing was sent; mark the worker down
          and re-route (safe for any method, including POST).
        * **send/receive failed** — the worker may have processed the
          request.  ``GET``s re-route to the surviving owner; a
          ``POST`` answers 503 ``worker_unavailable`` immediately,
          because replaying it could double-charge the tenant's
          ledger.

        Every failure marks a worker down, so the loop strictly
        shrinks the healthy set and terminates — at worst with a 503
        when no workers remain.
        """
        key = self._routing_key(request)
        target = self._target(request)
        while True:
            endpoint = self.owner_for(key)
            if endpoint is None:
                self._unavailable += 1
                return 503, self._unavailable_body(
                    "no healthy workers in routing"
                )
            try:
                reader, writer = await endpoint.acquire()
            except OSError:
                # Nothing was sent: the worker is gone (its ephemeral
                # port refuses).  Safe to re-route any method.
                self.mark_down(endpoint.index)
                continue
            try:
                http.write_raw_request(
                    writer, request.method, target, request.body
                )
                await writer.drain()
                status, body = await http.read_raw_response(reader)
            except (
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
                http.ProtocolError,
            ):
                writer.close()
                self.mark_down(endpoint.index)
                if request.method == "GET":
                    continue
                self._unavailable += 1
                return 503, self._unavailable_body(
                    f"worker {endpoint.index} died mid-request; not "
                    f"replaying a {request.method} (a replay could "
                    f"double-charge the tenant's budget)"
                )
            endpoint.release(reader, writer)
            self._proxied += 1
            return status, body

    # -- router-answered endpoints ---------------------------------------
    def health_payload(self) -> Dict[str, Any]:
        """The router's own ``GET /healthz`` answer: topology, not
        worker internals (each worker answers its own healthz)."""
        payload: Dict[str, Any] = {
            "status": "ok" if self._workers else "degraded",
            "role": "router",
            "workers": {
                str(index): {
                    "host": endpoint.host,
                    "port": endpoint.port,
                    "healthy": True,
                }
                for index, endpoint in sorted(self._workers.items())
            },
            "down": sorted(self._down),
            "proxied": self._proxied,
            "unavailable": self._unavailable,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
        }
        if self._info is not None:
            payload.update(self._info())
        return payload

    async def metrics_payload(self) -> Dict[str, Any]:
        """Fan ``GET /metrics`` out to every healthy worker.

        Returns ``{"workers": {index: metrics}}`` — callers that want
        a cluster-wide figure (e.g. how many cold-start builds ran)
        sum across the per-worker payloads.  A worker that fails the
        fan-out is marked down and reported as an error entry rather
        than failing the whole read.
        """

        async def fetch(endpoint: WorkerEndpoint) -> Tuple[str, Any]:
            try:
                reader, writer = await endpoint.acquire()
                http.write_raw_request(writer, "GET", "/metrics")
                await writer.drain()
                _status, body = await http.read_raw_response(reader)
            except (
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
                http.ProtocolError,
            ):
                self.mark_down(endpoint.index)
                return str(endpoint.index), {
                    "error": "worker_unavailable"
                }
            endpoint.release(reader, writer)
            return str(endpoint.index), json.loads(body)

        entries = await asyncio.gather(
            *(fetch(endpoint) for endpoint in list(self._workers.values()))
        )
        return {"role": "router", "workers": dict(entries)}

    # -- HTTP plumbing ---------------------------------------------------
    async def dispatch(
        self, request: http.HTTPRequest
    ) -> Tuple[int, bytes]:
        """Answer or forward one parsed request (body stays raw)."""
        if request.path == "/healthz" and request.method == "GET":
            body = json.dumps(
                self.health_payload(), separators=(",", ":")
            ).encode()
            return 200, body
        if request.path == "/metrics" and request.method == "GET":
            payload = await self.metrics_payload()
            return 200, json.dumps(
                payload, separators=(",", ":")
            ).encode()
        return await self._proxy(request)

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await http.read_request(reader)
                except http.ProtocolError as error:
                    http.write_response(
                        writer,
                        error.status,
                        {"error": "protocol_error", "message": str(error)},
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                status, body = await self.dispatch(request)
                http.write_raw_response(
                    writer, status, body, keep_alive=request.keep_alive
                )
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # stop() cancels idle keep-alive connections
        finally:
            writer.close()
            try:
                await asyncio.shield(writer.wait_closed())
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Bind and start routing; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def serve_forever(self) -> None:
        """Block routing until cancelled (the CLI entrypoint's loop)."""
        if self._server is None:
            raise RuntimeError("call start() before serve_forever()")
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the listener, open connections, and worker pools."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        self._connections.clear()
        for endpoint in self._workers.values():
            endpoint.close()

    @asynccontextmanager
    async def serving(self, host: str = "127.0.0.1", port: int = 0):
        """``async with router.serving() as (host, port): …``"""
        bound = await self.start(host, port)
        try:
            yield bound
        finally:
            await self.stop()
