"""Wire format for the PrivBasis service (JSON request/response bodies).

Request validation lives here so the HTTP layer stays transport-only
and the same checks protect every entry point (single release, batch,
and the in-process client used by benchmarks).

A deliberate contract choice: release requests are **seed-less**.  The
server draws fresh OS-seeded randomness per release; accepting a
client-supplied seed would let one tenant replay another's noise (or
their own, voiding the per-release ε guarantee), so ``seed`` / ``rng``
keys are rejected with ``validation_error`` rather than ignored.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.core.result import PrivateFIMResult
from repro.errors import ValidationError

__all__ = [
    "parse_release_request",
    "parse_batch_request",
    "result_to_wire",
]

#: Noise mechanisms a release request may name (privbasis ``noise=``).
ALLOWED_NOISE = ("laplace", "geometric")

#: Keys a release request may carry beyond ``tenant``.
_RELEASE_KEYS = {"k", "epsilon", "noise"}

#: Keys that are rejected outright (see module docstring).
_FORBIDDEN_KEYS = {"seed", "rng"}

#: Upper bound on k per request — protects the shared mining substrate
#: from a single tenant requesting an absurdly wide release.
MAX_K = 10_000

#: Upper bound on requests per batch.
MAX_BATCH = 256


def _require_mapping(body: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(body, Mapping):
        raise ValidationError(
            f"{what} must be a JSON object, got {type(body).__name__}"
        )
    return body


def parse_release_request(body: Any) -> Dict[str, Any]:
    """Validate one release body into ``privbasis`` keyword arguments.

    Returns ``{"k": int, "epsilon": float}`` plus ``noise`` when given.
    Raises :class:`~repro.errors.ValidationError` on anything
    malformed, including forbidden ``seed``/``rng`` keys.
    """
    body = _require_mapping(body, "release request")
    forbidden = _FORBIDDEN_KEYS & set(body)
    if forbidden:
        raise ValidationError(
            f"release requests are seed-less by design; remove "
            f"{sorted(forbidden)} (the server draws fresh randomness "
            f"per release)"
        )
    unknown = set(body) - _RELEASE_KEYS - {"tenant"}
    if unknown:
        raise ValidationError(
            f"unknown release request keys {sorted(unknown)}; "
            f"allowed: {sorted(_RELEASE_KEYS)}"
        )
    if "k" not in body or "epsilon" not in body:
        raise ValidationError("release request needs 'k' and 'epsilon'")
    # Exact JSON types, no coercion: int(2.7) would silently serve a
    # k=2 release the tenant did not ask for (and still charge it),
    # and JSON true would pass float() as 1.0.
    k = body["k"]
    if isinstance(k, bool) or not isinstance(k, int):
        raise ValidationError(f"k must be an integer, got {k!r}")
    if not 1 <= k <= MAX_K:
        raise ValidationError(f"k must be in [1, {MAX_K}], got {k!r}")
    epsilon = body["epsilon"]
    if isinstance(epsilon, bool) or not isinstance(epsilon, (int, float)):
        raise ValidationError(
            f"epsilon must be a number, got {epsilon!r}"
        )
    epsilon = float(epsilon)
    if not 0 < epsilon < float("inf"):
        raise ValidationError(
            f"epsilon must be positive and finite, got {body['epsilon']!r}"
        )
    request: Dict[str, Any] = {"k": k, "epsilon": epsilon}
    if "noise" in body:
        noise = body["noise"]
        if noise not in ALLOWED_NOISE:
            raise ValidationError(
                f"noise must be one of {list(ALLOWED_NOISE)}, got {noise!r}"
            )
        request["noise"] = noise
    return request


def parse_batch_request(body: Any) -> List[Dict[str, Any]]:
    """Validate a batch body's ``requests`` list (all-or-nothing).

    Every entry is validated before any is served, so a malformed
    request in the middle of a batch cannot leave earlier releases
    already charged.
    """
    body = _require_mapping(body, "batch request")
    requests = body.get("requests")
    if not isinstance(requests, list) or not requests:
        raise ValidationError(
            "batch request needs a non-empty 'requests' list"
        )
    if len(requests) > MAX_BATCH:
        raise ValidationError(
            f"batch size {len(requests)} exceeds the maximum {MAX_BATCH}"
        )
    return [parse_release_request(entry) for entry in requests]


def result_to_wire(result: PrivateFIMResult) -> Dict[str, Any]:
    """Serialize a release result into the response payload.

    Only the published statistics go on the wire: itemsets with their
    noisy counts/frequencies, plus ``k``/``epsilon``/``method`` echo.
    Diagnostics like the basis set or the budget ledger stay
    server-side — they are either derivable from the output or
    internal accounting, and the response contract should not depend
    on which pipeline produced the release.
    """
    return {
        "method": result.method,
        "k": result.k,
        "epsilon": result.epsilon,
        "itemsets": [
            {
                "items": list(entry.itemset),
                "noisy_count": entry.noisy_count,
                "noisy_frequency": entry.noisy_frequency,
            }
            for entry in result.itemsets
        ],
    }
