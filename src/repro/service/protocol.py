"""Wire format for the PrivBasis service (JSON request/response bodies).

Request validation lives here so the HTTP layer stays transport-only
and the same checks protect every entry point (single release, batch,
and the in-process client used by benchmarks).

A deliberate contract choice: release requests are **seed-less**.  The
server draws fresh OS-seeded randomness per release; accepting a
client-supplied seed would let one tenant replay another's noise (or
their own, voiding the per-release ε guarantee), so ``seed`` / ``rng``
keys are rejected with ``validation_error`` rather than ignored.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.core.result import PrivateFIMResult
from repro.errors import ValidationError
from repro.pipeline.planner import resolve_planner

__all__ = [
    "parse_release_request",
    "parse_batch_request",
    "parse_ingest_request",
    "parse_plan_query",
    "result_to_wire",
]

#: Noise mechanisms a release request may name (privbasis ``noise=``).
ALLOWED_NOISE = ("laplace", "geometric")

#: Keys a release request may carry beyond ``tenant``.
_RELEASE_KEYS = {"k", "epsilon", "noise", "planner", "trace"}

#: Keys that are rejected outright (see module docstring).
_FORBIDDEN_KEYS = {"seed", "rng"}

#: Upper bound on k per request — protects the shared mining substrate
#: from a single tenant requesting an absurdly wide release.
MAX_K = 10_000

#: Upper bound on requests per batch.
MAX_BATCH = 256

#: Upper bound on transactions per ingest request — bounds the work one
#: ``POST /v1/ingest`` can force onto the shared per-dataset lock;
#: bigger feeds split into multiple requests (the CLI batches for you).
MAX_INGEST_TRANSACTIONS = 10_000

#: Upper bound on items per ingested transaction (real baskets are
#: tens of items; thousands signals a malformed or adversarial feed).
MAX_TRANSACTION_ITEMS = 1_000


def _require_mapping(body: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(body, Mapping):
        raise ValidationError(
            f"{what} must be a JSON object, got {type(body).__name__}"
        )
    return body


def parse_release_request(body: Any) -> Dict[str, Any]:
    """Validate one release body into ``privbasis`` keyword arguments.

    Returns ``{"k": int, "epsilon": float}`` plus ``noise`` /
    ``planner`` / ``trace`` when given.  A ``planner`` value (a name
    like ``"adaptive"`` or ``{"name": "custom", "alphas": [...]}``) is
    resolved here — unknown names answer ``unknown_planner`` before
    any budget is charged or data touched.  ``trace: true`` opts the
    response into the per-stage execution trace.  Raises
    :class:`~repro.errors.ValidationError` on anything malformed,
    including forbidden ``seed``/``rng`` keys.
    """
    body = _require_mapping(body, "release request")
    forbidden = _FORBIDDEN_KEYS & set(body)
    if forbidden:
        raise ValidationError(
            f"release requests are seed-less by design; remove "
            f"{sorted(forbidden)} (the server draws fresh randomness "
            f"per release)"
        )
    unknown = set(body) - _RELEASE_KEYS - {"tenant"}
    if unknown:
        raise ValidationError(
            f"unknown release request keys {sorted(unknown)}; "
            f"allowed: {sorted(_RELEASE_KEYS)}"
        )
    if "k" not in body or "epsilon" not in body:
        raise ValidationError("release request needs 'k' and 'epsilon'")
    # Exact JSON types, no coercion: int(2.7) would silently serve a
    # k=2 release the tenant did not ask for (and still charge it),
    # and JSON true would pass float() as 1.0.
    k = body["k"]
    if isinstance(k, bool) or not isinstance(k, int):
        raise ValidationError(f"k must be an integer, got {k!r}")
    if not 1 <= k <= MAX_K:
        raise ValidationError(f"k must be in [1, {MAX_K}], got {k!r}")
    epsilon = body["epsilon"]
    if isinstance(epsilon, bool) or not isinstance(epsilon, (int, float)):
        raise ValidationError(
            f"epsilon must be a number, got {epsilon!r}"
        )
    epsilon = float(epsilon)
    if not 0 < epsilon < float("inf"):
        raise ValidationError(
            f"epsilon must be positive and finite, got {body['epsilon']!r}"
        )
    request: Dict[str, Any] = {"k": k, "epsilon": epsilon}
    if "noise" in body:
        noise = body["noise"]
        if noise not in ALLOWED_NOISE:
            raise ValidationError(
                f"noise must be one of {list(ALLOWED_NOISE)}, got {noise!r}"
            )
        request["noise"] = noise
    if "planner" in body:
        # Resolve eagerly: a typo'd planner must fail the request
        # before admission/charging, and the resolved object is what
        # the session's release path consumes.
        request["planner"] = resolve_planner(body["planner"])
    if "trace" in body:
        trace = body["trace"]
        if not isinstance(trace, bool):
            raise ValidationError(
                f"trace must be a JSON boolean, got {trace!r}"
            )
        request["trace"] = trace
    return request


def parse_batch_request(body: Any) -> List[Dict[str, Any]]:
    """Validate a batch body's ``requests`` list (all-or-nothing).

    Every entry is validated before any is served, so a malformed
    request in the middle of a batch cannot leave earlier releases
    already charged.
    """
    body = _require_mapping(body, "batch request")
    requests = body.get("requests")
    if not isinstance(requests, list) or not requests:
        raise ValidationError(
            "batch request needs a non-empty 'requests' list"
        )
    if len(requests) > MAX_BATCH:
        raise ValidationError(
            f"batch size {len(requests)} exceeds the maximum {MAX_BATCH}"
        )
    return [parse_release_request(entry) for entry in requests]


def parse_ingest_request(body: Any) -> List[List[int]]:
    """Validate an ingest body's ``transactions`` list.

    Each transaction is a (possibly empty) JSON array of non-negative
    integer item ids.  Size limits are enforced here
    (:data:`MAX_INGEST_TRANSACTIONS`, :data:`MAX_TRANSACTION_ITEMS`);
    vocabulary bounds are checked downstream against the dataset's
    fixed ``num_items``, so an out-of-vocabulary item still answers
    ``validation_error`` without this layer knowing the dataset.  The
    whole batch is validated before any of it is appended —
    ingestion, like batches, is all-or-nothing.
    """
    body = _require_mapping(body, "ingest request")
    unknown = set(body) - {"tenant", "transactions"}
    if unknown:
        raise ValidationError(
            f"unknown ingest request keys {sorted(unknown)}; "
            f"allowed: ['tenant', 'transactions']"
        )
    transactions = body.get("transactions")
    if not isinstance(transactions, list) or not transactions:
        raise ValidationError(
            "ingest request needs a non-empty 'transactions' list"
        )
    if len(transactions) > MAX_INGEST_TRANSACTIONS:
        raise ValidationError(
            f"ingest batch of {len(transactions)} transactions exceeds "
            f"the maximum {MAX_INGEST_TRANSACTIONS}; split the feed "
            f"into smaller requests"
        )
    parsed: List[List[int]] = []
    for index, transaction in enumerate(transactions):
        if not isinstance(transaction, list):
            raise ValidationError(
                f"transactions[{index}] must be an array of item ids, "
                f"got {type(transaction).__name__}"
            )
        if len(transaction) > MAX_TRANSACTION_ITEMS:
            raise ValidationError(
                f"transactions[{index}] has {len(transaction)} items; "
                f"the maximum is {MAX_TRANSACTION_ITEMS}"
            )
        row: List[int] = []
        for item in transaction:
            if isinstance(item, bool) or not isinstance(item, int):
                raise ValidationError(
                    f"transactions[{index}] items must be integers, "
                    f"got {item!r}"
                )
            if item < 0:
                raise ValidationError(
                    f"transactions[{index}] has negative item id {item}"
                )
            row.append(item)
        parsed.append(row)
    return parsed


def parse_plan_query(query: Mapping[str, str]) -> Dict[str, Any]:
    """Validate ``GET /v1/plan`` query parameters.

    The query string carries ``k`` and ``epsilon`` (required),
    ``planner`` (a name; default ``paper``), and ``alphas`` (a
    comma-separated triple, required by ``planner=custom``).  Returns
    ``{"k": int, "epsilon": float, "planner": BudgetPlanner}`` — the
    planner resolved eagerly so typos answer ``unknown_planner``.
    Pricing is pure arithmetic over these parameters; nothing here
    (or downstream in plan building) reads any data.
    """
    raw_k = query.get("k", "")
    try:
        k = int(raw_k)
    except ValueError:
        raise ValidationError(
            f"plan queries need an integer ?k=, got {raw_k!r}"
        )
    raw_epsilon = query.get("epsilon", "")
    try:
        epsilon = float(raw_epsilon)
    except ValueError:
        raise ValidationError(
            f"plan queries need a numeric ?epsilon=, got {raw_epsilon!r}"
        )
    if not 1 <= k <= MAX_K:
        raise ValidationError(f"k must be in [1, {MAX_K}], got {k}")
    if not 0 < epsilon < float("inf"):
        raise ValidationError(
            f"epsilon must be positive and finite, got {raw_epsilon!r}"
        )
    spec: Dict[str, Any] = {"name": query.get("planner", "paper")}
    if "alphas" in query:
        parts = query["alphas"].split(",")
        try:
            spec["alphas"] = [float(part) for part in parts]
        except ValueError:
            raise ValidationError(
                f"?alphas= must be comma-separated numbers, "
                f"got {query['alphas']!r}"
            )
    return {"k": k, "epsilon": epsilon, "planner": resolve_planner(spec)}


def result_to_wire(
    result: PrivateFIMResult, include_trace: bool = False
) -> Dict[str, Any]:
    """Serialize a release result into the response payload.

    Only the published statistics go on the wire: itemsets with their
    noisy counts/frequencies, plus ``k``/``epsilon``/``method`` echo
    and — when the serving session pinned one — the
    ``snapshot_version`` the release was computed on, so a client
    following a live ingest feed can attribute every output to one
    exact data state.  Diagnostics like the basis set or the budget
    ledger stay server-side — they are either derivable from the
    output or internal accounting, and the response contract should
    not depend on which pipeline produced the release.

    The per-stage execution trace is the one opt-in exception
    (``include_trace``, driven by the request's ``trace`` flag): it
    contains only public parameters and already-released DP outputs
    (see :mod:`repro.pipeline.trace`), so exposing it leaks nothing.
    """
    payload: Dict[str, Any] = {
        "method": result.method,
        "k": result.k,
        "epsilon": result.epsilon,
        "itemsets": [
            {
                "items": list(entry.itemset),
                "noisy_count": entry.noisy_count,
                "noisy_frequency": entry.noisy_frequency,
            }
            for entry in result.itemsets
        ],
    }
    if result.snapshot_version is not None:
        payload["snapshot_version"] = result.snapshot_version
    reuse = getattr(result, "reuse", None)
    if reuse is not None:
        # Reuse provenance (session-served post-processing hits) is
        # public by construction: it names only parameters of an
        # already-published release.
        payload["reuse"] = dict(reuse)
    trace = getattr(result, "trace", None)
    if include_trace and trace is not None:
        payload["trace"] = trace.to_wire()
    return payload
