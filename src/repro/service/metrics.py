"""Request counters and latency histograms for ``/metrics``.

Deliberately tiny: a fixed-bucket latency histogram per route plus
request/status counters, all plain dicts so the ``/metrics`` endpoint
can serialize them as JSON without a metrics library.  Buckets are
cumulative (Prometheus-style ``le`` semantics) so dashboards can read
quantile bounds directly.

:class:`StageMetrics` adds the pipeline dimension: every release's
:class:`~repro.pipeline.trace.ReleaseTrace` is folded into per-stage
counters (runs, ε, wall time, backend queries) plus branch and
planner tallies, so ``/metrics`` shows *where inside the algorithm*
the service spends its budget and its time.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

__all__ = [
    "LatencyHistogram",
    "ReuseMetrics",
    "ServiceMetrics",
    "StageMetrics",
]

#: Upper bucket bounds in milliseconds.  Cold PrivBasis releases land
#: in the hundreds of ms, warm ones in single digits, so the grid is
#: log-spaced across both regimes.
DEFAULT_BUCKETS_MS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram (milliseconds)."""

    def __init__(
        self, buckets_ms: Tuple[float, ...] = DEFAULT_BUCKETS_MS
    ) -> None:
        self._bounds = tuple(sorted(buckets_ms))
        self._counts = [0] * (len(self._bounds) + 1)
        self._total_ms = 0.0
        self._count = 0
        self._max_ms = 0.0

    def observe(self, latency_ms: float) -> None:
        """Record one request latency."""
        latency_ms = float(latency_ms)
        index = len(self._bounds)
        for i, bound in enumerate(self._bounds):
            if latency_ms <= bound:
                index = i
                break
        self._counts[index] += 1
        self._total_ms += latency_ms
        self._count += 1
        self._max_ms = max(self._max_ms, latency_ms)

    def snapshot(self) -> Dict[str, object]:
        """Cumulative bucket counts plus count/mean/max summaries."""
        cumulative: List[Dict[str, float]] = []
        running = 0
        for bound, count in zip(self._bounds, self._counts):
            running += count
            cumulative.append({"le_ms": bound, "count": running})
        cumulative.append(
            {"le_ms": math.inf, "count": running + self._counts[-1]}
        )
        mean = self._total_ms / self._count if self._count else 0.0
        return {
            "count": self._count,
            "mean_ms": mean,
            "max_ms": self._max_ms,
            "buckets": [
                # JSON has no inf; spell the overflow bucket as null.
                {
                    "le_ms": (
                        None if math.isinf(b["le_ms"]) else b["le_ms"]
                    ),
                    "count": b["count"],
                }
                for b in cumulative
            ],
        }


class StageMetrics:
    """Aggregated per-stage pipeline telemetry across served releases.

    Fed one :class:`~repro.pipeline.trace.ReleaseTrace` per release by
    the service's release handlers; :meth:`snapshot` is the
    ``pipeline`` section of ``/metrics``.
    """

    def __init__(self) -> None:
        self._stages: Dict[str, Dict[str, object]] = {}
        self._branches: Dict[str, int] = {}
        self._planners: Dict[str, int] = {}
        self._releases = 0

    def record(self, trace) -> None:
        """Fold one release's trace into the counters."""
        if trace is None:
            return
        self._releases += 1
        self._branches[trace.branch] = (
            self._branches.get(trace.branch, 0) + 1
        )
        self._planners[trace.planner] = (
            self._planners.get(trace.planner, 0) + 1
        )
        for stage in trace.stages:
            entry = self._stages.get(stage.name)
            if entry is None:
                entry = self._stages[stage.name] = {
                    "runs": 0,
                    "epsilon_total": 0.0,
                    "wall_time_ms_total": 0.0,
                    "queries": {},
                }
            entry["runs"] += 1
            entry["epsilon_total"] += stage.epsilon
            entry["wall_time_ms_total"] += stage.wall_time_s * 1000.0
            queries: Dict[str, int] = entry["queries"]
            for kind, count in stage.queries.items():
                queries[kind] = queries.get(kind, 0) + count

    def snapshot(self) -> Dict[str, object]:
        """Everything ``/metrics`` reports about the pipeline layer."""
        return {
            "releases": self._releases,
            "branches": dict(self._branches),
            "planners": dict(self._planners),
            "stages": {
                name: {
                    "runs": entry["runs"],
                    "epsilon_total": entry["epsilon_total"],
                    "wall_time_ms_total": round(
                        entry["wall_time_ms_total"], 3
                    ),
                    "queries": dict(entry["queries"]),
                }
                for name, entry in sorted(self._stages.items())
            },
        }


class ReuseMetrics:
    """Hit/miss counters for the cross-release reuse plane.

    Tracks how often ``/v1/release`` was answered by post-processing a
    stored release instead of running the mechanism, and the total ε
    those hits would otherwise have cost (``epsilon_saved`` — every
    hit is charged exactly 0, so this is pure budget recovered).
    """

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = bool(enabled)
        self._hits = 0
        self._misses = 0
        self._epsilon_saved = 0.0

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    def hit(self, epsilon_saved: float) -> None:
        """Record one reuse-served release and the ε it avoided."""
        self._hits += 1
        self._epsilon_saved += float(epsilon_saved)

    def miss(self) -> None:
        """Record one release that had to run the mechanism."""
        self._misses += 1

    def snapshot(self) -> Dict[str, object]:
        """The ``reuse`` section of ``/metrics``."""
        return {
            "enabled": self._enabled,
            "hits": self._hits,
            "misses": self._misses,
            "epsilon_saved": self._epsilon_saved,
        }


class ServiceMetrics:
    """Per-route request/status counters and latency histograms."""

    def __init__(self) -> None:
        self._requests: Dict[str, int] = {}
        self._statuses: Dict[str, int] = {}
        self._latency: Dict[str, LatencyHistogram] = {}

    def record(self, route: str, status: int, latency_ms: float) -> None:
        """Record one handled request on ``route`` (e.g. ``/v1/release``)."""
        self._requests[route] = self._requests.get(route, 0) + 1
        status_key = f"{route}:{status}"
        self._statuses[status_key] = self._statuses.get(status_key, 0) + 1
        histogram = self._latency.get(route)
        if histogram is None:
            histogram = self._latency[route] = LatencyHistogram()
        histogram.observe(latency_ms)

    def snapshot(self) -> Dict[str, object]:
        """Everything ``/metrics`` reports about the HTTP layer."""
        return {
            "requests": dict(self._requests),
            "statuses": dict(self._statuses),
            "latency_ms": {
                route: histogram.snapshot()
                for route, histogram in self._latency.items()
            },
        }
