"""Async client for the PrivBasis service (tests and benchmarks).

:class:`ServiceClient` speaks the same stdlib HTTP framing as the
server (:mod:`repro.service.http`), keeps one persistent keep-alive
connection per client, and raises typed exceptions mirroring the wire
error codes — so a benchmark can ``except BudgetExceededError`` on a
client exactly like library code does around
:meth:`~repro.engine.session.PrivBasisSession.release`.
"""

from __future__ import annotations

import asyncio
import operator
from typing import Any, Dict, List, Optional
from urllib.parse import quote

from repro.errors import (
    BudgetExceededError,
    IngestNotAllowedError,
    OverloadedError,
    ReproError,
    UnknownPlannerError,
    UnknownTenantError,
    ValidationError,
    WorkerUnavailableError,
)
from repro.service import http

__all__ = ["ServiceClient", "ServiceHTTPError"]


class ServiceHTTPError(ReproError):
    """A non-2xx response with no more specific typed mapping."""

    wire_code = "http_error"

    def __init__(self, status: int, payload: Any) -> None:
        self.status = status
        self.payload = payload
        super().__init__(f"HTTP {status}: {payload!r}")


def _raise_for(status: int, payload: Any) -> None:
    """Re-raise a wire error payload as its typed exception."""
    code = payload.get("error") if isinstance(payload, dict) else None
    message = (
        payload.get("message", "") if isinstance(payload, dict) else ""
    )
    if code == "budget_exceeded":
        raise BudgetExceededError(
            payload.get("requested", 0.0), payload.get("remaining", 0.0)
        )
    if code == "unknown_tenant":
        raise UnknownTenantError(payload.get("tenant", ""))
    if code == "unknown_planner":
        raise UnknownPlannerError(
            payload.get("planner", ""), payload.get("known", ())
        )
    if code == "ingest_forbidden":
        raise IngestNotAllowedError(payload.get("tenant", ""))
    if code == "overloaded":
        raise OverloadedError(
            payload.get("in_flight", 0), payload.get("limit", 0)
        )
    if code == "worker_unavailable":
        raise WorkerUnavailableError(message)
    if code in ("validation_error", "protocol_error"):
        raise ValidationError(message or f"HTTP {status}")
    raise ServiceHTTPError(status, payload)


def _item_id(item: Any) -> int:
    """Coerce an ingest item id, rejecting floats and bools.

    ``operator.index`` admits every true integer type (including
    ``numpy`` ints, which ``json`` cannot serialize raw) while
    refusing lossy inputs the server would reject anyway — the client
    should not pre-corrupt a feed the wire contract protects.
    """
    if isinstance(item, bool):
        raise ValidationError(
            f"transaction items must be integers, got {item!r}"
        )
    try:
        return operator.index(item)
    except TypeError:
        raise ValidationError(
            f"transaction items must be integers, got {item!r}"
        )


class ServiceClient:
    """One tenant's connection to a running service.

    Parameters
    ----------
    host, port:
        Where the service listens.
    tenant:
        Default tenant id stamped on release/budget calls; individual
        calls may override it.
    """

    def __init__(
        self, host: str, port: int, tenant: Optional[str] = None
    ) -> None:
        self._host = host
        self._port = int(port)
        self._tenant = tenant
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self) -> None:
        """Close the persistent connection (reopened on next call)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = None
            self._writer = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )

    async def _roundtrip(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> Any:
        """One request/response over the persistent connection.

        Only idempotent ``GET``s are transparently retried once on a
        stale keep-alive connection.  A ``POST`` is **never** resent:
        the server may have processed the request before the
        connection died, and replaying a release would charge the
        tenant's ε ledger twice for one logical request.  Callers that
        lose a POST response should consult ``GET /v1/budget`` to see
        whether the spend landed.
        """
        for attempt in (0, 1):
            if self._writer is None:
                await self._connect()
            assert self._reader is not None and self._writer is not None
            try:
                http.write_request(self._writer, method, path, payload)
                await self._writer.drain()
                status, body = await http.read_response(self._reader)
                break
            except (
                ConnectionError,
                http.ProtocolError,
                asyncio.IncompleteReadError,
            ):
                # A keep-alive connection the server already closed;
                # reconnect once for idempotent requests, otherwise
                # surface the failure to the caller.
                await self.close()
                if attempt or method != "GET":
                    raise
        if status >= 400:
            _raise_for(status, body)
        return body

    def _tenant_id(self, tenant: Optional[str]) -> str:
        tenant_id = tenant if tenant is not None else self._tenant
        if not tenant_id:
            raise ValidationError(
                "no tenant configured; pass tenant= to the call or the "
                "client constructor"
            )
        return tenant_id

    # -- API surface -----------------------------------------------------
    async def release(
        self,
        k: int,
        epsilon: float,
        noise: Optional[str] = None,
        planner: Optional[Any] = None,
        trace: bool = False,
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        """``POST /v1/release`` — returns the decoded response payload.

        ``planner`` is a name (``"adaptive"``) or a spec mapping
        (``{"name": "custom", "alphas": [0.1, 0.3, 0.6]}``);
        ``trace=True`` asks the server to attach the per-stage
        execution trace to the response.
        """
        body: Dict[str, Any] = {
            "tenant": self._tenant_id(tenant),
            "k": k,
            "epsilon": epsilon,
        }
        if noise is not None:
            body["noise"] = noise
        if planner is not None:
            body["planner"] = planner
        if trace:
            body["trace"] = True
        return await self._roundtrip("POST", "/v1/release", body)

    async def plan(
        self,
        k: int,
        epsilon: float,
        planner: Optional[str] = None,
        alphas: Optional[List[float]] = None,
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        """``GET /v1/plan`` — dry-run ε pricing, spends nothing.

        Returns the priced stage list plus ``remaining`` /
        ``affordable`` for this tenant's ledger; the server touches no
        data answering it, so plans are free to shop with.
        """
        tenant_id = quote(self._tenant_id(tenant), safe="")
        path = f"/v1/plan?tenant={tenant_id}&k={int(k)}&epsilon={epsilon}"
        if planner is not None:
            path += f"&planner={quote(str(planner), safe='')}"
        if alphas is not None:
            joined = ",".join(str(float(alpha)) for alpha in alphas)
            path += f"&alphas={quote(joined, safe=',')}"
        return await self._roundtrip("GET", path)

    async def release_batch(
        self,
        requests: List[Dict[str, Any]],
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        """``POST /v1/release_batch`` with ``[{"k": …, "epsilon": …}]``."""
        body = {
            "tenant": self._tenant_id(tenant),
            "requests": list(requests),
        }
        return await self._roundtrip("POST", "/v1/release_batch", body)

    async def ingest(
        self,
        transactions: List[List[int]],
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        """``POST /v1/ingest`` — append transactions to the dataset.

        Returns the new ``snapshot_version`` and total transaction
        count.  Items must be true integers (``numpy`` ints are fine)
        — floats and bools are rejected client-side, mirroring the
        server's wire contract, rather than silently coerced.  Like
        every POST, an ingest is **never** resent on a dropped
        connection (a replay would append the batch twice); callers
        that lose the response should consult :meth:`snapshot` to see
        whether the append landed.
        """
        body: Dict[str, Any] = {
            "tenant": self._tenant_id(tenant),
            "transactions": [
                [_item_id(item) for item in transaction]
                for transaction in transactions
            ],
        }
        return await self._roundtrip("POST", "/v1/ingest", body)

    async def snapshot(
        self, tenant: Optional[str] = None
    ) -> Dict[str, Any]:
        """``GET /v1/snapshot`` — the dataset's current data state."""
        tenant_id = quote(self._tenant_id(tenant), safe="")
        return await self._roundtrip(
            "GET", f"/v1/snapshot?tenant={tenant_id}"
        )

    async def results(
        self,
        tenant: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, Any]:
        """``GET /v1/results`` — the tenant's stored release history.

        Answers from the server's durable result store (free
        post-processing of already-paid-for payloads); the server
        serves its bounded most-recent window and ``limit`` trims to
        the newest N of those.  A server running without
        ``--state-dir`` rejects the call with a ``validation_error``.
        """
        tenant_id = quote(self._tenant_id(tenant), safe="")
        path = f"/v1/results?tenant={tenant_id}"
        if limit is not None:
            path += f"&limit={int(limit)}"
        return await self._roundtrip("GET", path)

    async def budget(self, tenant: Optional[str] = None) -> Dict[str, Any]:
        """``GET /v1/budget`` for this client's tenant."""
        tenant_id = quote(self._tenant_id(tenant), safe="")
        return await self._roundtrip(
            "GET", f"/v1/budget?tenant={tenant_id}"
        )

    async def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return await self._roundtrip("GET", "/healthz")

    async def metrics(self) -> Dict[str, Any]:
        """``GET /metrics``."""
        return await self._roundtrip("GET", "/metrics")
