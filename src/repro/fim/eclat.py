"""Eclat — vertical (tidset-intersection) frequent itemset mining.

Zaki's Eclat explores the itemset lattice depth-first, representing
each itemset by the set of transactions containing it (here a numpy
boolean mask over transactions) and computing supports by intersecting
masks.  It complements the repository's Apriori (breadth-first,
horizontal) and FP-Growth (pattern-growth) miners: all three must
produce identical results, which the test suite uses as a three-way
differential oracle for the exact-mining substrate that PrivBasis's
evaluation depends on.

Implementation notes:

* Items are processed in increasing-support order (the classic
  heuristic: least frequent first keeps intersection masks sparse and
  prunes early).
* An equivalence-class stack avoids recursion limits on deep lattices.
* The same ``(itemset → support count)`` output contract as
  :func:`repro.fim.apriori.apriori` / :func:`repro.fim.fpgrowth.fpgrowth`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError
from repro.fim.counting import database_of
from repro.fim.itemsets import Itemset

MiningResult = Dict[Itemset, int]


def eclat(
    database: TransactionDatabase,
    min_support: int,
    max_length: Optional[int] = None,
    backend=None,
) -> MiningResult:
    """Mine all itemsets with support count ≥ ``min_support``.

    Parameters
    ----------
    min_support:
        Absolute support-count threshold (≥ 1; a threshold of 0 would
        enumerate the full powerset).
    max_length:
        If given, only itemsets with at most this many items are
        returned.
    backend:
        Optional :class:`repro.engine.CountingBackend`; the item
        frequency filter then routes through it (a backend may also be
        passed in the ``database`` slot).

    Returns
    -------
    Mapping from itemset (sorted item tuple) to support count —
    identical to the output of ``apriori`` and ``fpgrowth`` on the
    same input.
    """
    if min_support < 1:
        raise ValidationError(
            f"min_support must be >= 1, got {min_support}"
        )
    if max_length is not None and max_length < 1:
        raise ValidationError(
            f"max_length must be >= 1, got {max_length}"
        )

    source = backend if backend is not None else database
    database = database_of(source)

    result: MiningResult = {}
    if database.num_transactions == 0:
        return result

    masks = _frequent_item_masks(database, min_support,
                                 item_supports=source.item_supports())
    if not masks:
        return result

    # Least-frequent-first ordering; ties by item id for determinism.
    order = sorted(masks, key=lambda item: (int(masks[item].sum()), item))

    # Each stack frame is an equivalence class: (prefix itemset,
    # prefix mask or None for the empty prefix, candidate items that
    # may extend the prefix, in class order).
    stack: List[Tuple[Itemset, Optional[np.ndarray], List[int]]] = [
        ((), None, order)
    ]
    while stack:
        prefix, prefix_mask, candidates = stack.pop()
        for position, item in enumerate(candidates):
            if prefix_mask is None:
                mask = masks[item]
            else:
                mask = prefix_mask & masks[item]
            support = int(np.count_nonzero(mask))
            if support < min_support:
                continue
            itemset = prefix + (item,)
            result[tuple(sorted(itemset))] = support
            if max_length is not None and len(itemset) >= max_length:
                continue
            extensions = candidates[position + 1:]
            if extensions:
                stack.append((itemset, mask, extensions))
    return result


def _frequent_item_masks(
    database: TransactionDatabase,
    min_support: int,
    item_supports: Optional[np.ndarray] = None,
) -> Dict[int, np.ndarray]:
    """Boolean transaction masks for every frequent single item.

    Built from the database's per-item inverted index (``tidlist``),
    so construction is linear in the index size.
    """
    supports = (
        item_supports
        if item_supports is not None
        else database.item_supports()
    )
    frequent = np.nonzero(supports >= min_support)[0]
    masks: Dict[int, np.ndarray] = {}
    for item in frequent:
        mask = np.zeros(database.num_transactions, dtype=bool)
        mask[database.tidlist(int(item))] = True
        masks[int(item)] = mask
    return masks
