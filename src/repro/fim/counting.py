"""Vectorized support-counting kernels.

Two kernels back the rest of the library:

* :class:`ItemBitmaps` — packed per-item bit vectors over the ``N``
  transactions.  Conjunction support is bitwise-AND + popcount, and all
  pairwise supports over a small item pool vectorize to one matrix
  operation per item.  Used by the exact top-k miner and by the
  frequent-pairs step of PrivBasis.
* :func:`bin_counts_for_items` — the scatter-add histogram of paper
  Algorithm 1: for a basis ``B`` it returns, for each of the
  ``2^{|B|}`` subsets ``X ⊆ B``, the number of transactions ``t`` with
  ``t ∩ B = X``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError

#: Basis-length cap the paper recommends (Section 4.4): with ℓ ≤ 12 a
#: basis has at most 2^12 = 4096 bins, keeping both bin storage and the
#: reconstruction transform cheap.  Re-exported as
#: ``repro.core.basis.DEFAULT_MAX_BASIS_LENGTH``.
DEFAULT_MAX_BASIS_LENGTH = 12

#: Hard cap enforced by :func:`bin_counts_for_items`: 2^25 int64 bins
#: is 256 MiB, the most the scatter-add kernel will materialize.  The
#: gap above :data:`DEFAULT_MAX_BASIS_LENGTH` exists for ablations that
#: deliberately stress long bases (``bench_ablation_basis_length``).
MAX_BIN_BASIS_LENGTH = 25


def database_of(source) -> TransactionDatabase:
    """Unwrap a :class:`TransactionDatabase` from ``source``.

    ``source`` may be a database itself or any object exposing one via
    a ``database`` attribute — in particular a
    :class:`repro.engine.CountingBackend`.  The miners in this package
    accept either, so callers holding a backend never have to reach
    into it manually.  (This helper lives here rather than in
    ``repro.engine`` because the engine layer imports the kernels in
    this module; the reverse import would be a cycle.)
    """
    if isinstance(source, TransactionDatabase):
        return source
    inner = getattr(source, "database", None)
    if isinstance(inner, TransactionDatabase):
        return inner
    raise ValidationError(
        f"expected a TransactionDatabase or a counting backend, "
        f"got {type(source).__name__}"
    )


class ItemBitmaps:
    """Packed boolean membership rows for a pool of items.

    Parameters
    ----------
    database:
        Source transactions.
    items:
        The item pool; one packed row (uint8 words, ``np.packbits``
    layout) is built per item.
    """

    def __init__(
        self, database: TransactionDatabase, items: Sequence[int]
    ) -> None:
        self._items: Tuple[int, ...] = tuple(int(item) for item in items)
        if len(set(self._items)) != len(self._items):
            raise ValidationError("items must be distinct")
        self._num_transactions = database.num_transactions
        self._position: Dict[int, int] = {
            item: position for position, item in enumerate(self._items)
        }
        rows = np.zeros(
            (len(self._items), self._num_transactions), dtype=bool
        )
        for position, item in enumerate(self._items):
            rows[position, database.tidlist(item)] = True
        # Shape: (num_items_in_pool, ceil(N / 8)) of uint8.  ``_packed``
        # is a column-slice view into ``_buffer``, whose spare capacity
        # lets :meth:`extend` append bytes in place (amortized O(Δ)).
        self._buffer = (
            np.packbits(rows, axis=1)
            if self._items
            else np.zeros((0, 0), dtype=np.uint8)
        )
        self._packed = self._buffer

    @property
    def items(self) -> Tuple[int, ...]:
        """The item pool, in row order."""
        return self._items

    @property
    def num_transactions(self) -> int:
        return self._num_transactions

    def extend(self, delta: TransactionDatabase) -> None:
        """Grow every packed row in place by ``delta``'s transactions.

        The streaming append path: instead of repacking ``N + ΔN``
        bits per item from scratch, only the new transactions are
        packed and written into spare buffer capacity — amortized
        O(|pool| · ΔN/8) bytes touched (the buffer doubles when it
        fills, so full-row copies are rare).  When the existing
        transaction count is not byte-aligned, the final partially
        filled byte of each row is unpacked, fused with the new bits,
        and repacked, so the dense ``np.packbits`` layout (and with it
        every AND+popcount kernel) is preserved exactly.
        """
        count = delta.num_transactions
        if count == 0:
            return
        if not self._items:
            self._num_transactions += count
            return
        delta_bits = np.zeros((len(self._items), count), dtype=bool)
        for position, item in enumerate(self._items):
            delta_bits[position, delta.tidlist(item)] = True
        old_n = self._num_transactions
        new_n = old_n + count
        old_cols = (old_n + 7) // 8
        new_cols = (new_n + 7) // 8
        if new_cols > self._buffer.shape[1]:
            capacity = max(new_cols, 2 * self._buffer.shape[1])
            buffer = np.zeros(
                (len(self._items), capacity), dtype=np.uint8
            )
            buffer[:, :old_cols] = self._packed
            self._buffer = buffer
        partial = old_n % 8
        if partial:
            boundary = np.unpackbits(
                self._packed[:, old_cols - 1: old_cols], axis=1
            )[:, :partial].astype(bool)
            tail = np.packbits(
                np.concatenate([boundary, delta_bits], axis=1), axis=1
            )
            self._buffer[:, old_cols - 1: new_cols] = tail
        else:
            self._buffer[:, old_cols: new_cols] = np.packbits(
                delta_bits, axis=1
            )
        self._num_transactions = new_n
        self._packed = self._buffer[:, :new_cols]

    def row(self, item: int) -> np.ndarray:
        """Packed membership row for ``item`` (read-only view)."""
        try:
            return self._packed[self._position[int(item)]]
        except KeyError as exc:
            raise ValidationError(
                f"item {item} is not in this bitmap pool"
            ) from exc

    def conjunction_row(self, items: Sequence[int]) -> np.ndarray:
        """Packed row of transactions containing *all* of ``items``."""
        items = [int(item) for item in items]
        if not items:
            # All transactions: every bit up to N set.
            full = np.ones(self._num_transactions, dtype=bool)
            return np.packbits(full)
        result = self.row(items[0]).copy()
        for item in items[1:]:
            np.bitwise_and(result, self.row(item), out=result)
        return result

    def support(self, items: Sequence[int]) -> int:
        """Support count of the conjunction of ``items``."""
        if not items:
            return self._num_transactions
        return int(np.bitwise_count(self.conjunction_row(items)).sum())

    def extension_supports(
        self, base_row: np.ndarray, candidate_items: Sequence[int]
    ) -> np.ndarray:
        """Supports of ``base ∧ {i}`` for every candidate ``i`` at once.

        ``base_row`` is a packed row (e.g. from
        :meth:`conjunction_row`); returns an int64 array aligned with
        ``candidate_items``.
        """
        if not len(candidate_items):
            return np.zeros(0, dtype=np.int64)
        positions = [self._position[int(item)] for item in candidate_items]
        stacked = self._packed[positions]
        return np.bitwise_count(stacked & base_row[np.newaxis, :]).sum(
            axis=1, dtype=np.int64
        )

    def pairwise_supports(self) -> Dict[Tuple[int, int], int]:
        """Support of every unordered pair in the pool.

        Returns a dict keyed by sorted item pairs.  Cost is one
        vectorized AND+popcount sweep per item, i.e. O(|pool|² · N/8)
        bytes touched.
        """
        supports: Dict[Tuple[int, int], int] = {}
        for position, item in enumerate(self._items):
            if position + 1 >= len(self._items):
                break
            others = self._packed[position + 1:]
            counts = np.bitwise_count(
                others & self._packed[position][np.newaxis, :]
            ).sum(axis=1, dtype=np.int64)
            for offset, count in enumerate(counts):
                other_item = self._items[position + 1 + offset]
                key = (
                    (item, other_item)
                    if item < other_item
                    else (other_item, item)
                )
                supports[key] = int(count)
        return supports


def bin_counts_for_items(
    database: TransactionDatabase, basis: Sequence[int]
) -> np.ndarray:
    """Exact bin histogram for ``basis`` (paper Algorithm 1, lines 7–11).

    Returns an int64 array ``counts`` of length ``2^{|basis|}`` where
    ``counts[mask]`` is the number of transactions ``t`` with
    ``t ∩ basis`` equal to the subset encoded by ``mask`` (bit ``j`` ↔
    ``basis[j]``).  The bins partition ``D``: ``counts.sum() == N``.

    Implementation: one scatter-add per basis item over its tid-list,
    building a per-transaction mask vector, then ``bincount`` — O(N +
    Σ|tidlist|) instead of a per-transaction Python loop.
    """
    basis = [int(item) for item in basis]
    if len(set(basis)) != len(basis):
        raise ValidationError(f"basis has duplicate items: {basis}")
    length = len(basis)
    if length > MAX_BIN_BASIS_LENGTH:
        raise ValidationError(
            f"basis of length {length} would need 2^{length} bins; "
            f"the bin kernel caps basis length at "
            f"{MAX_BIN_BASIS_LENGTH} (the paper's recommended cap is "
            f"DEFAULT_MAX_BASIS_LENGTH = {DEFAULT_MAX_BASIS_LENGTH})"
        )
    masks = np.zeros(database.num_transactions, dtype=np.int64)
    for position, item in enumerate(basis):
        masks[database.tidlist(item)] += 1 << position
    return np.bincount(masks, minlength=1 << length).astype(np.int64)


def superset_sum_transform(bins: np.ndarray) -> np.ndarray:
    """Sum each bin over its supersets (fast zeta transform).

    Input ``bins`` is indexed by bitmask; output ``S`` satisfies
    ``S[X] = Σ_{Y ⊇ X} bins[Y]``.  This converts the disjoint bin
    histogram of a basis into itemset supports: the support of the
    subset encoded by ``X`` is exactly ``S[X]`` (paper Algorithm 1,
    line 15, computed for *all* X in O(ℓ·2^ℓ) rather than O(3^ℓ)).

    Works on float arrays too (noisy bins), preserving dtype.
    """
    bins = np.asarray(bins)
    size = bins.shape[0]
    if size == 0 or size & (size - 1):
        raise ValidationError(
            f"bins length must be a power of two, got {size}"
        )
    result = bins.copy()
    length = size.bit_length() - 1
    indices = np.arange(size)
    for position in range(length):
        bit = 1 << position
        lower = indices[(indices & bit) == 0]
        result[lower] += result[lower | bit]
    return result


def naive_superset_sum(bins: np.ndarray, mask: int) -> float:
    """Reference O(2^ℓ) superset sum for one mask (test oracle)."""
    total = 0.0
    for index in range(bins.shape[0]):
        if (index & mask) == mask:
            total += bins[index]
    return total
