"""Exact top-k frequent itemset mining.

Best-first lattice search: a max-heap over candidate itemsets keyed by
(−support, itemset), expanded in canonical order (children extend an
itemset only with larger item ids), so each itemset is generated once
and the heap maximum is always the globally next-most-frequent itemset.
Support is anti-monotone, so when an itemset is popped nothing later can
beat it — after ``k`` pops the answer is exact.

The search universe is pre-pruned to items whose own support reaches the
support of the k-th most frequent *item*: any itemset containing a rarer
item is dominated by the k guaranteed singletons, so it cannot enter the
top k.  Extension supports are computed with one vectorized
bitmap sweep per pop (:class:`repro.fim.counting.ItemBitmaps`).

This module is the library's ground-truth oracle: the utility metrics
(FNR, relative error), GetLambda's ``f_{k·η}``, and the TF baseline's
``f_k`` all derive from it.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError
from repro.fim.counting import ItemBitmaps, database_of
from repro.fim.itemsets import Itemset

TopKResult = List[Tuple[Itemset, int]]


def top_k_itemsets(
    database: TransactionDatabase,
    k: int,
    max_length: Optional[int] = None,
    backend=None,
) -> TopKResult:
    """Return the ``k`` most frequent itemsets with their supports.

    Output is sorted by (−support, itemset); ties are therefore
    deterministic.  If the database admits fewer than ``k`` non-empty
    itemsets (tiny vocabularies), all of them are returned.

    Parameters
    ----------
    k:
        Number of itemsets to return (≥ 1).
    max_length:
        If given, restrict to itemsets of at most this many items (the
        TF baseline's candidate family, paper Section 3).
    backend:
        Optional :class:`repro.engine.CountingBackend` (also accepted
        in the ``database`` slot); singleton supports route through
        it, the lattice search uses the unified bitmap kernels.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if max_length is not None and max_length < 1:
        raise ValidationError(f"max_length must be >= 1, got {max_length}")

    source = backend if backend is not None else database
    database = database_of(source)

    universe = _pruned_universe(source, k)
    if not universe:
        return []
    # With an explicit backend the per-pop extension sweep ships as the
    # backend's batched ``extension_supports`` primitive (one fan-out on
    # the sharded/process backends, a pooled sweep on the bitmap one);
    # bare databases keep the local single-pool fast path.
    use_backend_extensions = backend is not None
    bitmaps = (
        None
        if use_backend_extensions
        else ItemBitmaps(database, universe)
    )
    position_of = {item: index for index, item in enumerate(universe)}

    supports = source.item_supports()
    # Heap entries: (−support, itemset). Itemsets are tuples of items
    # sorted ascending; children only append larger universe positions.
    heap: List[Tuple[int, Itemset]] = [
        (-int(supports[item]), (item,)) for item in universe
    ]
    heapq.heapify(heap)

    result: TopKResult = []
    while heap and len(result) < k:
        negative_support, itemset = heapq.heappop(heap)
        support = -negative_support
        if support <= 0:
            break
        result.append((itemset, support))
        if max_length is not None and len(itemset) >= max_length:
            continue
        last_position = position_of[itemset[-1]]
        extensions = universe[last_position + 1:]
        if not extensions:
            continue
        if use_backend_extensions:
            extension_supports = source.extension_supports(
                itemset, extensions
            )
        else:
            base_row = bitmaps.conjunction_row(itemset)
            extension_supports = bitmaps.extension_supports(
                base_row, extensions
            )
        for offset, extension_support in enumerate(extension_supports):
            if extension_support > 0:
                child = itemset + (extensions[offset],)
                heapq.heappush(heap, (-int(extension_support), child))
    return result


def _pruned_universe(source, k: int) -> List[int]:
    """Items that could appear in a top-``k`` itemset, sorted by id.

    Keeps items with support ≥ support of the k-th most frequent item
    (all items when fewer than k have positive support).  Rarer items
    are dominated: any itemset containing one has support below at
    least k singleton itemsets.  ``source`` is a database or backend.
    """
    supports = source.item_supports()
    positive = np.flatnonzero(supports > 0)
    if positive.size == 0:
        return []
    if positive.size <= k:
        return [int(item) for item in np.sort(positive)]
    order = np.argsort(-supports[positive], kind="stable")
    threshold = int(supports[positive[order[k - 1]]])
    kept = positive[supports[positive] >= threshold]
    return [int(item) for item in np.sort(kept)]


def kth_frequency(
    database: TransactionDatabase,
    k: int,
    max_length: Optional[int] = None,
) -> float:
    """Frequency of the k-th most frequent itemset (paper's ``f_k``).

    Returns 0.0 when fewer than ``k`` itemsets exist.
    """
    top = top_k_itemsets(database, k, max_length=max_length)
    if len(top) < k:
        return 0.0
    return top[k - 1][1] / float(database.num_transactions)


def exact_topk_itemset_set(
    database: TransactionDatabase,
    k: int,
    max_length: Optional[int] = None,
) -> set:
    """The top-``k`` itemsets as a set (for FNR computations)."""
    return {
        itemset
        for itemset, _ in top_k_itemsets(database, k, max_length=max_length)
    }


def unique_items_in_topk(top: Sequence[Tuple[Itemset, int]]) -> List[int]:
    """Distinct items appearing in a top-k result (the paper's λ)."""
    return sorted({item for itemset, _ in top for item in itemset})


def pairs_in_topk(top: Sequence[Tuple[Itemset, int]]) -> List[Itemset]:
    """Distinct size-2 itemsets among a top-k result (paper's λ₂)."""
    return sorted(
        {itemset for itemset, _ in top if len(itemset) == 2}
    )


def size_n_in_topk(
    top: Sequence[Tuple[Itemset, int]], size: int
) -> List[Itemset]:
    """Distinct size-``size`` itemsets among a top-k result."""
    return sorted({itemset for itemset, _ in top if len(itemset) == size})
