"""Itemset utilities shared by the miners and the PrivBasis core.

An *itemset* is canonically represented as a sorted tuple of int item
ids (see :func:`repro.datasets.transactions.canonical_itemset`).  This
module adds the combinatorial helpers the paper's algorithms need:
subset enumeration, bitmask encoding of subsets of a basis, and the
Apriori join step.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.datasets.transactions import Itemset, canonical_itemset
from repro.errors import ValidationError

__all__ = [
    "Itemset",
    "canonical_itemset",
    "all_nonempty_subsets",
    "subsets_of_size",
    "itemset_to_mask",
    "mask_to_itemset",
    "apriori_join",
    "has_all_subsets",
    "format_itemset",
]


def all_nonempty_subsets(items: Sequence[int]) -> Iterator[Itemset]:
    """Yield every non-empty subset of ``items`` as a canonical tuple.

    Order: by size, then lexicographically — deterministic for tests.
    """
    ordered = canonical_itemset(items)
    for size in range(1, len(ordered) + 1):
        for subset in combinations(ordered, size):
            yield subset


def subsets_of_size(items: Sequence[int], size: int) -> Iterator[Itemset]:
    """Yield all ``size``-subsets of ``items`` in lexicographic order."""
    if size < 0:
        raise ValidationError(f"size must be non-negative, got {size}")
    yield from combinations(canonical_itemset(items), size)


def itemset_to_mask(itemset: Iterable[int], basis: Sequence[int]) -> int:
    """Encode ``itemset ⊆ basis`` as a bitmask over basis positions.

    Bit ``j`` of the result is set iff ``basis[j]`` belongs to
    ``itemset`` — the integer-index encoding paper Algorithm 1's bin
    array uses.
    """
    positions: Dict[int, int] = {
        item: position for position, item in enumerate(basis)
    }
    mask = 0
    for item in itemset:
        try:
            mask |= 1 << positions[int(item)]
        except KeyError as exc:
            raise ValidationError(
                f"item {item} is not in basis {tuple(basis)}"
            ) from exc
    return mask


def mask_to_itemset(mask: int, basis: Sequence[int]) -> Itemset:
    """Decode a bitmask over basis positions back into an itemset."""
    if mask < 0 or mask >= (1 << len(basis)):
        raise ValidationError(
            f"mask {mask} out of range for basis of length {len(basis)}"
        )
    return tuple(
        sorted(
            basis[position]
            for position in range(len(basis))
            if mask & (1 << position)
        )
    )


def apriori_join(frequent: Sequence[Itemset]) -> List[Itemset]:
    """Apriori candidate generation: join ``L_{n-1}`` with itself.

    Two (n−1)-itemsets sharing their first n−2 items join into an
    n-candidate; candidates with an infrequent (n−1)-subset are pruned
    (the Apriori property, paper Section 2.2).
    """
    if not frequent:
        return []
    size = len(frequent[0])
    if any(len(itemset) != size for itemset in frequent):
        raise ValidationError("all itemsets in a level must share a size")
    frequent_set = set(frequent)
    ordered = sorted(frequent_set)
    candidates: List[Itemset] = []
    for index, left in enumerate(ordered):
        for right in ordered[index + 1:]:
            if left[:-1] != right[:-1]:
                break
            candidate = left + (right[-1],)
            if has_all_subsets(candidate, frequent_set):
                candidates.append(candidate)
    return candidates


def has_all_subsets(candidate: Itemset, frequent: set) -> bool:
    """True iff every (n−1)-subset of ``candidate`` is in ``frequent``."""
    size = len(candidate)
    if size <= 1:
        return True
    return all(
        candidate[:index] + candidate[index + 1:] in frequent
        for index in range(size)
    )


def format_itemset(
    itemset: Iterable[int], labels: Sequence[str] | None = None
) -> str:
    """Human-readable rendering, e.g. ``{3, 7, 12}`` or ``{milk, bread}``."""
    items = canonical_itemset(itemset)
    if labels is not None:
        rendered = ", ".join(labels[item] for item in items)
    else:
        rendered = ", ".join(str(item) for item in items)
    return "{" + rendered + "}"
