"""The Apriori algorithm (Agrawal & Srikant, VLDB 1994).

Level-wise mining of all itemsets with support ≥ a threshold, exploiting
the anti-monotonicity of support: every subset of a frequent itemset is
frequent (paper Section 2.2).  Candidate generation and subset pruning
follow the classic join step; support counting uses the database's
vertical tid-lists, which is much faster in Python than per-transaction
subset enumeration.

This miner is exact and non-private — it provides ground truth for the
utility metrics and internals for the TF baseline, and cross-validates
FP-Growth in the test suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError
from repro.fim.counting import database_of
from repro.fim.itemsets import Itemset, apriori_join

MiningResult = Dict[Itemset, int]


def apriori(
    database: TransactionDatabase,
    min_support: int,
    max_length: Optional[int] = None,
    backend=None,
) -> MiningResult:
    """Mine all itemsets with support count ≥ ``min_support``.

    Parameters
    ----------
    database:
        The transaction database, or a
        :class:`repro.engine.CountingBackend` over one (the level-1
        counts then route through the backend; deeper levels use the
        unified tid-list index).
    min_support:
        Absolute support threshold (a count, not a fraction).  Must be
        at least 1 — a threshold of 0 would enumerate the powerset.
    max_length:
        If given, only itemsets with at most this many items are
        returned (the TF baseline's length-``m`` restriction).

    backend:
        Optional explicit counting backend; wins over a backend passed
        in the ``database`` slot.

    Returns
    -------
    dict
        Mapping itemset (sorted tuple) → support count.
    """
    if min_support < 1:
        raise ValidationError(
            f"min_support must be >= 1, got {min_support}"
        )
    if max_length is not None and max_length < 1:
        raise ValidationError(
            f"max_length must be >= 1, got {max_length}"
        )

    source = backend if backend is not None else database
    database = database_of(source)

    result: MiningResult = {}
    supports = source.item_supports()
    frequent_items = np.flatnonzero(supports >= min_support)
    level: List[Itemset] = []
    tidlists: Dict[Itemset, np.ndarray] = {}
    for item in frequent_items:
        itemset = (int(item),)
        count = int(supports[item])
        result[itemset] = count
        level.append(itemset)
        tidlists[itemset] = database.tidlist(int(item))

    size = 1
    while level:
        if max_length is not None and size >= max_length:
            break
        candidates = apriori_join(level)
        next_level: List[Itemset] = []
        next_tidlists: Dict[Itemset, np.ndarray] = {}
        for candidate in candidates:
            prefix = candidate[:-1]
            merged = np.intersect1d(
                tidlists[prefix],
                database.tidlist(candidate[-1]),
                assume_unique=True,
            )
            count = int(merged.size)
            if count >= min_support:
                result[candidate] = count
                next_level.append(candidate)
                next_tidlists[candidate] = merged
        level = next_level
        tidlists = next_tidlists
        size += 1
    return result


def frequent_itemsets_sorted(
    mined: MiningResult,
) -> List[Tuple[Itemset, int]]:
    """Sort a mining result by (−support, itemset) — the library-wide
    deterministic tie-break order."""
    return sorted(mined.items(), key=lambda pair: (-pair[1], pair[0]))
