"""Maximal frequent itemsets (paper Proposition 3).

A θ-frequent itemset is *maximal* when none of its supersets is
θ-frequent.  The set of maximal frequent itemsets is itself a θ-basis
set of minimum possible length, which motivates the clique-based
construction of paper Algorithm 2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.datasets.transactions import TransactionDatabase
from repro.fim.fpgrowth import fpgrowth
from repro.fim.itemsets import Itemset


def maximal_itemsets(mined: Dict[Itemset, int]) -> List[Itemset]:
    """Filter a threshold mining result down to its maximal members.

    ``mined`` must be downward-closed (the output of
    :func:`~repro.fim.apriori.apriori` or
    :func:`~repro.fim.fpgrowth.fpgrowth`); an itemset is maximal iff no
    single-item extension of it is present.
    """
    present = set(mined)
    all_items = sorted({item for itemset in present for item in itemset})
    maximal: List[Itemset] = []
    for itemset in present:
        extended = False
        itemset_set = set(itemset)
        for item in all_items:
            if item in itemset_set:
                continue
            candidate = tuple(sorted(itemset + (item,)))
            if candidate in present:
                extended = True
                break
        if not extended:
            maximal.append(itemset)
    return sorted(maximal)


def mine_maximal(
    database: TransactionDatabase,
    min_support: int,
    max_length: Optional[int] = None,
) -> List[Tuple[Itemset, int]]:
    """Mine all maximal itemsets with support ≥ ``min_support``.

    Returns (itemset, support) pairs sorted by itemset.  When
    ``max_length`` is given, maximality is relative to the
    length-restricted family.
    """
    mined = fpgrowth(database, min_support, max_length=max_length)
    return [(itemset, mined[itemset]) for itemset in maximal_itemsets(mined)]


def is_basis_for(
    bases: List[Itemset], frequent_itemsets: List[Itemset]
) -> bool:
    """Check the θ-basis covering property (paper Definition 2).

    True iff every itemset in ``frequent_itemsets`` is a subset of some
    basis in ``bases``.
    """
    basis_sets = [set(basis) for basis in bases]
    return all(
        any(set(itemset) <= basis for basis in basis_sets)
        for itemset in frequent_itemsets
    )
