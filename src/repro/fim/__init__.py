"""Exact (non-private) frequent itemset mining substrate."""

from repro.fim.apriori import apriori, frequent_itemsets_sorted
from repro.fim.counting import (
    DEFAULT_MAX_BASIS_LENGTH,
    MAX_BIN_BASIS_LENGTH,
    ItemBitmaps,
    bin_counts_for_items,
    database_of,
    naive_superset_sum,
    superset_sum_transform,
)
from repro.fim.eclat import eclat
from repro.fim.fpgrowth import fpgrowth
from repro.fim.fptree import FPNode, FPTree
from repro.fim.itemsets import (
    Itemset,
    all_nonempty_subsets,
    apriori_join,
    canonical_itemset,
    format_itemset,
    itemset_to_mask,
    mask_to_itemset,
    subsets_of_size,
)
from repro.fim.maximal import is_basis_for, maximal_itemsets, mine_maximal
from repro.fim.topk import (
    exact_topk_itemset_set,
    kth_frequency,
    pairs_in_topk,
    size_n_in_topk,
    top_k_itemsets,
    unique_items_in_topk,
)

__all__ = [
    "DEFAULT_MAX_BASIS_LENGTH",
    "FPNode",
    "FPTree",
    "ItemBitmaps",
    "MAX_BIN_BASIS_LENGTH",
    "Itemset",
    "all_nonempty_subsets",
    "apriori",
    "apriori_join",
    "bin_counts_for_items",
    "canonical_itemset",
    "database_of",
    "eclat",
    "exact_topk_itemset_set",
    "format_itemset",
    "fpgrowth",
    "frequent_itemsets_sorted",
    "is_basis_for",
    "itemset_to_mask",
    "kth_frequency",
    "mask_to_itemset",
    "maximal_itemsets",
    "mine_maximal",
    "naive_superset_sum",
    "pairs_in_topk",
    "size_n_in_topk",
    "subsets_of_size",
    "superset_sum_transform",
    "top_k_itemsets",
    "unique_items_in_topk",
]
