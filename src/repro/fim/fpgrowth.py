"""FP-Growth: frequent-itemset mining without candidate generation.

Recursive pattern-growth over the FP-tree (Han, Pei, Yin & Mao, 2004;
cited as [22] in the paper).  Equivalent output to :func:`repro.fim.
apriori.apriori`; asymptotically faster on dense data because shared
prefixes are counted once.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError
from repro.fim.counting import database_of
from repro.fim.fptree import FPTree
from repro.fim.itemsets import Itemset

MiningResult = Dict[Itemset, int]


def fpgrowth(
    database: TransactionDatabase,
    min_support: int,
    max_length: Optional[int] = None,
    backend=None,
) -> MiningResult:
    """Mine all itemsets with support ≥ ``min_support`` via FP-Growth.

    Same contract as :func:`repro.fim.apriori.apriori`, including the
    optional counting ``backend`` (item frequencies route through it;
    tree construction streams the unified database).
    """
    if min_support < 1:
        raise ValidationError(
            f"min_support must be >= 1, got {min_support}"
        )
    if max_length is not None and max_length < 1:
        raise ValidationError(
            f"max_length must be >= 1, got {max_length}"
        )

    source = backend if backend is not None else database
    database = database_of(source)

    supports = source.item_supports()
    frequent_items = [
        int(item) for item in np.flatnonzero(supports >= min_support)
    ]
    # Root-to-leaf order: descending support, item id as tie-break.
    frequent_items.sort(key=lambda item: (-int(supports[item]), item))
    tree = FPTree(frequent_items)
    for transaction in database:
        tree.insert(transaction)

    result: MiningResult = {}
    _mine(tree, (), min_support, max_length, result)
    return result


def _mine(
    tree: FPTree,
    suffix: Itemset,
    min_support: int,
    max_length: Optional[int],
    result: MiningResult,
) -> None:
    if max_length is not None and len(suffix) >= max_length:
        return

    single = tree.single_path()
    if single is not None:
        _mine_single_path(single, suffix, min_support, max_length, result)
        return

    # Process items leaf-to-root (ascending support) as in the original
    # algorithm; order does not affect the output set.
    for item in reversed(tree.item_order):
        total = tree.item_totals.get(item, 0)
        if total < min_support:
            continue
        new_suffix = tuple(sorted(suffix + (item,)))
        result[new_suffix] = total
        if max_length is not None and len(new_suffix) >= max_length:
            continue
        base = tree.conditional_pattern_base(item)
        conditional_totals: Dict[int, int] = {}
        for path, count in base:
            for path_item in path:
                conditional_totals[path_item] = (
                    conditional_totals.get(path_item, 0) + count
                )
        kept = [
            path_item
            for path_item, count in conditional_totals.items()
            if count >= min_support
        ]
        if not kept:
            continue
        kept.sort(key=lambda it: (-conditional_totals[it], it))
        conditional_tree = FPTree(kept)
        for path, count in base:
            conditional_tree.insert(path, count)
        _mine(conditional_tree, new_suffix, min_support, max_length, result)


def _mine_single_path(
    path: List[Tuple[int, int]],
    suffix: Itemset,
    min_support: int,
    max_length: Optional[int],
    result: MiningResult,
) -> None:
    """Enumerate subsets of a single-chain tree directly.

    The support of a subset of the chain is the count of its deepest
    node (counts are non-increasing along the chain).
    """
    eligible = [(item, count) for item, count in path if count >= min_support]
    budget = len(eligible)
    if max_length is not None:
        budget = min(budget, max_length - len(suffix))
    for size in range(1, budget + 1):
        for combo in combinations(range(len(eligible)), size):
            support = eligible[combo[-1]][1]
            if support < min_support:
                continue
            items = suffix + tuple(eligible[index][0] for index in combo)
            result[tuple(sorted(items))] = support
