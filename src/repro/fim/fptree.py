"""FP-tree: the compact prefix-tree of FP-Growth (Han et al., 2000).

The tree stores every transaction as a path of items ordered by
descending global support; shared prefixes collapse into shared nodes
whose counters accumulate.  A header table links all nodes of each item
so conditional pattern bases can be extracted without rescanning the
database (paper Section 2.2 sketches this structure).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class FPNode:
    """One prefix-tree node: an item, its count, and tree links."""

    __slots__ = ("item", "count", "parent", "children", "next_link")

    def __init__(self, item: Optional[int], parent: Optional["FPNode"]) -> None:
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: Dict[int, "FPNode"] = {}
        #: Next node carrying the same item (header-table chain).
        self.next_link: Optional["FPNode"] = None

    def __repr__(self) -> str:
        return f"FPNode(item={self.item}, count={self.count})"


class FPTree:
    """An FP-tree over integer items.

    Parameters
    ----------
    item_order:
        Total order on items used for path layout: items earlier in the
        sequence sit closer to the root.  FP-Growth passes items sorted
        by descending support, which maximizes prefix sharing.
    """

    def __init__(self, item_order: Sequence[int]) -> None:
        self.root = FPNode(None, None)
        self._rank: Dict[int, int] = {
            int(item): rank for rank, item in enumerate(item_order)
        }
        self._header_head: Dict[int, FPNode] = {}
        self._header_tail: Dict[int, FPNode] = {}
        self.item_totals: Dict[int, int] = {}

    @property
    def item_order(self) -> List[int]:
        """Items in root-to-leaf layout order."""
        return sorted(self._rank, key=self._rank.__getitem__)

    def insert(self, transaction: Iterable[int], count: int = 1) -> None:
        """Add ``transaction`` (with multiplicity ``count``) to the tree.

        Items not present in ``item_order`` are silently dropped —
        FP-Growth prunes infrequent items before tree construction.
        """
        items = sorted(
            (int(item) for item in set(transaction) if int(item) in self._rank),
            key=self._rank.__getitem__,
        )
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = FPNode(item, node)
                node.children[item] = child
                self._append_to_header(item, child)
            child.count += count
            self.item_totals[item] = self.item_totals.get(item, 0) + count
            node = child

    def _append_to_header(self, item: int, node: FPNode) -> None:
        tail = self._header_tail.get(item)
        if tail is None:
            self._header_head[item] = node
        else:
            tail.next_link = node
        self._header_tail[item] = node

    def nodes_of(self, item: int) -> Iterable[FPNode]:
        """Iterate all nodes carrying ``item`` via the header chain."""
        node = self._header_head.get(int(item))
        while node is not None:
            yield node
            node = node.next_link

    def prefix_path(self, node: FPNode) -> List[int]:
        """Items on the path from ``node``'s parent up to the root."""
        path: List[int] = []
        current = node.parent
        while current is not None and current.item is not None:
            path.append(current.item)
            current = current.parent
        path.reverse()
        return path

    def conditional_pattern_base(
        self, item: int
    ) -> List[Tuple[List[int], int]]:
        """All (prefix path, count) pairs ending at ``item``'s nodes.

        This is the projected database FP-Growth recurses on.
        """
        base: List[Tuple[List[int], int]] = []
        for node in self.nodes_of(item):
            path = self.prefix_path(node)
            if path:
                base.append((path, node.count))
        return base

    def is_empty(self) -> bool:
        return not self.root.children

    def single_path(self) -> Optional[List[Tuple[int, int]]]:
        """If the tree is a single chain, return its [(item, count)].

        FP-Growth short-circuits single-path trees by enumerating
        subsets of the path directly.
        """
        path: List[Tuple[int, int]] = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            node = next(iter(node.children.values()))
            path.append((node.item, node.count))
        return path
