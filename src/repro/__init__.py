"""PrivBasis: differentially private frequent itemset mining.

Reproduction of Li, Qardaji, Su & Cao, *PrivBasis: Frequent Itemset
Mining with Differential Privacy*, PVLDB 5(11), 2012.

Quickstart
----------
>>> from repro import load_dataset, privbasis
>>> database = load_dataset("mushroom")
>>> result = privbasis(database, k=50, epsilon=1.0, rng=7)
>>> entry = result.itemsets[0]
>>> entry.itemset                           # doctest: +SKIP
(0,)
>>> round(entry.noisy_frequency, 2)         # doctest: +SKIP
0.99

Public API layers:

* :mod:`repro.core` — the PrivBasis algorithm and its components.
* :mod:`repro.engine` — counting backends (bitmap / sharded) and the
  cached :class:`~repro.engine.session.PrivBasisSession` serving layer.
* :mod:`repro.baselines` — the TF comparison method (Bhaskar et al.).
* :mod:`repro.fim` — exact mining (Apriori, FP-Growth, top-k oracle).
* :mod:`repro.datasets` — transaction databases, FIMI I/O, generators.
* :mod:`repro.pipeline` — the staged release pipeline: stages,
  pluggable budget planners, dry-run plans, per-stage traces.
* :mod:`repro.dp` — Laplace / exponential mechanisms, budget ledger.
* :mod:`repro.metrics` — FNR and relative error (paper Section 5).
* :mod:`repro.experiments` — the table/figure reproduction harness.
* :mod:`repro.service` — the multi-tenant network service
  (``python -m repro.service``).

Serving many releases over one database?  Use a session::

>>> from repro import PrivBasisSession
>>> session = PrivBasisSession(load_dataset("mushroom"), rng=7)
>>> warm = [session.release(k=25, epsilon=1.0) for _ in range(4)]
"""

from repro.datasets import TransactionDatabase, TransactionLog, load_dataset
from repro.errors import (
    BudgetError,
    BudgetExceededError,
    DatasetFormatError,
    EmptySelectionError,
    ReproError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptivePlanner",
    "BitmapBackend",
    "BudgetError",
    "BudgetExceededError",
    "BudgetPlanner",
    "CountingBackend",
    "CustomPlanner",
    "DatasetFormatError",
    "EmptySelectionError",
    "PaperPlanner",
    "PrivBasisService",
    "PrivBasisSession",
    "ReproError",
    "ServiceClient",
    "TenantRegistry",
    "ShardedBackend",
    "TransactionDatabase",
    "TransactionLog",
    "ValidationError",
    "build_plan",
    "load_dataset",
    "planned_release",
    "privbasis",
    "privbasis_threshold",
    "rules_from_release",
    "tf_method",
    "__version__",
]


def __getattr__(name: str):
    # Late imports keep `import repro` light and avoid import cycles;
    # the heavy algorithm modules load on first use.
    if name == "privbasis":
        from repro.core.privbasis import privbasis

        return privbasis
    if name in (
        "PrivBasisSession",
        "CountingBackend",
        "BitmapBackend",
        "ShardedBackend",
    ):
        import repro.engine as engine

        return getattr(engine, name)
    if name in ("PrivBasisService", "ServiceClient", "TenantRegistry"):
        import repro.service as service

        return getattr(service, name)
    if name in (
        "AdaptivePlanner",
        "BudgetPlanner",
        "CustomPlanner",
        "PaperPlanner",
        "build_plan",
        "planned_release",
    ):
        import repro.pipeline as pipeline

        return getattr(pipeline, name)
    if name == "privbasis_threshold":
        from repro.core.threshold import privbasis_threshold

        return privbasis_threshold
    if name == "rules_from_release":
        from repro.rules.association import rules_from_release

        return rules_from_release
    if name == "tf_method":
        from repro.baselines.tf import tf_method

        return tf_method
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
