"""Consistency post-processing for noisy itemset estimates.

Differential privacy is closed under post-processing, so estimates can
be repaired for free after release.  Two structural facts about true
counts are violated by raw Laplace noise:

* counts are non-negative (and at most ``N``);
* support is anti-monotone: ``X ⊆ Y ⇒ count(X) ≥ count(Y)``.

:func:`enforce_consistency` restores both over a candidate family.
This is an *extension* beyond the paper (its experiments publish raw
noisy frequencies); the ablation benchmark
``benchmarks/bench_ablation_consistency.py`` measures what it buys.

The repair is the simple two-sweep projection: a downward sweep makes
every itemset at least the maximum of its immediate supersets within
the family (raising underestimates), after clamping to ``[0, N]``.
It is not the exact L2 projection onto the consistency polytope, but it
is monotone, idempotent, and never moves an estimate across the true
value ordering.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.fim.itemsets import Itemset

Estimates = Dict[Itemset, Tuple[float, float]]


def enforce_consistency(
    estimates: Estimates,
    num_transactions: Optional[int] = None,
) -> Estimates:
    """Return consistent (count, variance) estimates.

    Parameters
    ----------
    estimates:
        Mapping itemset → (noisy count, variance) — the output of
        :func:`repro.core.basis_freq.itemset_estimates_from_bins`.
    num_transactions:
        If given, counts are also clamped to ``[0, N]``; otherwise only
        non-negativity and anti-monotonicity are enforced.

    Variances are passed through unchanged: the repair is deterministic
    post-processing, and keeping the raw variances preserves the
    inverse-variance bookkeeping downstream consumers rely on.
    """
    clamped: Dict[Itemset, float] = {}
    for itemset, (count, _) in estimates.items():
        value = max(0.0, count)
        if num_transactions is not None:
            value = min(value, float(num_transactions))
        clamped[itemset] = value

    # Process from largest itemsets down: each itemset must be at least
    # the max of its immediate supersets that are in the family.
    by_size_descending = sorted(
        clamped, key=lambda itemset: -len(itemset)
    )
    items_in_family = sorted(
        {item for itemset in clamped for item in itemset}
    )
    for itemset in by_size_descending:
        itemset_set = set(itemset)
        best_superset = 0.0
        for item in items_in_family:
            if item in itemset_set:
                continue
            parent = tuple(sorted(itemset + (item,)))
            value = clamped.get(parent)
            if value is not None and value > best_superset:
                best_superset = value
        if best_superset > clamped[itemset]:
            clamped[itemset] = best_superset

    return {
        itemset: (clamped[itemset], variance)
        for itemset, (_, variance) in estimates.items()
    }


def is_consistent(
    estimates: Estimates,
    num_transactions: Optional[int] = None,
    tolerance: float = 1e-9,
) -> bool:
    """Check non-negativity, the N cap, and anti-monotonicity."""
    for itemset, (count, _) in estimates.items():
        if count < -tolerance:
            return False
        if (
            num_transactions is not None
            and count > num_transactions + tolerance
        ):
            return False
    for itemset, (count, _) in estimates.items():
        for other, (other_count, _) in estimates.items():
            if set(itemset) < set(other) and (
                count < other_count - tolerance
            ):
                return False
    return True
