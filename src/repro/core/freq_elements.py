"""GetFreqElements — paper Algorithm 3, lines 29–40.

Privately selects the λ highest-frequency elements of a candidate pool
``U`` (single items in Step 2, pairs of frequent items in Step 3) by λ
rounds of the exponential mechanism without replacement, each round
spending ε/λ.

Faithfulness note (see DESIGN.md): the pseudocode's sampling weight is
``e^{f·ε/λ}``.  Read with ``f`` as a *fraction* this is dimensionally
inconsistent with the rest of the paper (GetLambda multiplies by N, TF
uses ``exp(εN·f/4k)``); read with ``f`` as a *support count* it is the
exponential mechanism with quality = count, sensitivity 1, and the
**one-sided** improvement of Section 2.1 (adding a transaction can only
raise counts), i.e. no factor-2 loss.  We implement the latter.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.dp.exponential import exponential_mechanism_top_k
from repro.dp.rng import RngLike, ensure_rng
from repro.engine.backend import CountingBackend, resolve_backend
from repro.errors import ValidationError
from repro.fim.itemsets import Itemset, canonical_itemset


def select_top_by_count(
    counts: np.ndarray,
    how_many: int,
    epsilon: float,
    rng: RngLike = None,
) -> List[int]:
    """Core of GetFreqElements: pick ``how_many`` indices, ε-DP total.

    ``counts`` are the support counts of the candidates (quality
    function, sensitivity 1, one-sided).  Selection is without
    replacement; each of the ``how_many`` draws uses ε/how_many.
    """
    if how_many < 1:
        raise ValidationError(f"how_many must be >= 1, got {how_many}")
    counts = np.asarray(counts, dtype=float)
    return exponential_mechanism_top_k(
        counts,
        k=how_many,
        epsilon_total=epsilon,
        sensitivity=1.0,
        one_sided=True,
        rng=rng,
    )


def get_frequent_items(
    database: TransactionDatabase,
    how_many: int,
    epsilon: float,
    rng: RngLike = None,
    backend: CountingBackend = None,
) -> List[int]:
    """Step 2: privately select the ``how_many`` most frequent items.

    The candidate pool is the whole public vocabulary ``I``.  Returns
    item ids sorted by selection order (most confident first).  Item
    supports are counted through ``backend`` (default
    :class:`~repro.engine.bitmap.BitmapBackend`).
    """
    backend = resolve_backend(database, backend)
    if how_many > backend.num_items:
        raise ValidationError(
            f"cannot select {how_many} items from a vocabulary of "
            f"{backend.num_items}"
        )
    counts = backend.item_supports().astype(float)
    indices = select_top_by_count(counts, how_many, epsilon, rng)
    return [int(index) for index in indices]


def get_frequent_pairs(
    database: TransactionDatabase,
    items: Sequence[int],
    how_many: int,
    epsilon: float,
    rng: RngLike = None,
    backend: CountingBackend = None,
) -> List[Itemset]:
    """Step 3: privately select frequent pairs among ``items``.

    The candidate pool ``U`` is all (λ choose 2) pairs of the selected
    frequent items — small, which is the point of Step 2 (paper
    Section 4.4).  Pair supports are counted exactly once through the
    backend (one bitmap sweep in the default backend, a merged
    per-shard sweep in :class:`~repro.engine.sharded.ShardedBackend`);
    the counts then feed the exponential mechanism.
    """
    pool = canonical_itemset(items)
    if len(pool) < 2:
        raise ValidationError(
            f"need at least 2 items to form pairs, got {len(pool)}"
        )
    backend = resolve_backend(database, backend)
    support_by_pair = backend.pairwise_supports(pool)
    pairs = sorted(support_by_pair)
    counts = np.array(
        [support_by_pair[pair] for pair in pairs], dtype=float
    )
    if how_many > len(pairs):
        raise ValidationError(
            f"cannot select {how_many} pairs from {len(pairs)} candidates"
        )
    indices = select_top_by_count(counts, how_many, epsilon, rng)
    return [pairs[index] for index in indices]
