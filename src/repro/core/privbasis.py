"""PrivBasis — paper Algorithm 3 (the main pipeline).

Five steps, with the privacy budget ε split α₁/α₂/α₃ = 0.1/0.4/0.5:

1. ``GetLambda`` (α₁ε) — estimate λ, the number of distinct items in
   the top-k itemsets (safety-inflated by η).
2. If λ ≤ 12: ``GetFreqItems`` (α₂ε) selects the λ most frequent items
   ``F`` and the basis set is the single basis ``{F}``
   (Proposition 2).
3. Otherwise the α₂ε item budget is split λ:λ₂ between selecting λ
   items and λ₂ pairs, where λ₂ is the paper's damped heuristic
   ``(η·k − λ)/√max(1, (η·k−λ)/λ)``.
4. ``ConstructBasisSet`` (no data access) turns ``(F, P)`` into a basis
   set via maximal cliques + greedy EV merging.
5. ``BasisFreq`` (α₃ε) releases noisy counts of all covered itemsets
   and picks the top k.

Sequential composition over the data-touching steps gives ε-DP in
total (paper Theorem 6); the :class:`~repro.dp.budget.PrivacyBudget`
ledger enforces it at runtime.

Since the staged-pipeline refactor this module is a thin compatibility
wrapper: the stages live in :mod:`repro.pipeline.stages`, the budget
split is a pluggable :class:`~repro.pipeline.planner.BudgetPlanner`
(the default :class:`~repro.pipeline.planner.PaperPlanner` reproduces
this docstring's split bit-for-bit), and execution — including the
per-stage :class:`~repro.pipeline.trace.ReleaseTrace` every result now
carries — happens in :mod:`repro.pipeline.run`.  See
``docs/pipeline.md``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.basis import DEFAULT_MAX_BASIS_LENGTH
from repro.core.result import PrivBasisResult
from repro.datasets.transactions import TransactionDatabase
from repro.dp.rng import RngLike
from repro.engine.backend import CountingBackend
from repro.pipeline.planner import (
    DEFAULT_ALPHAS,
    SINGLE_BASIS_LAMBDA,
    PlannerSpec,
    default_eta,
    pair_budget_size,
)

__all__ = [
    "DEFAULT_ALPHAS",
    "SINGLE_BASIS_LAMBDA",
    "default_eta",
    "privbasis",
]

#: Back-compat alias — the λ₂ heuristic now lives in the planner layer.
_pair_budget_size = pair_budget_size


def privbasis(
    database: TransactionDatabase,
    k: int,
    epsilon: float,
    eta: Optional[float] = None,
    alphas: Tuple[float, float, float] = DEFAULT_ALPHAS,
    max_basis_length: int = DEFAULT_MAX_BASIS_LENGTH,
    single_basis_lambda: int = SINGLE_BASIS_LAMBDA,
    greedy_basis_optimization: bool = True,
    noise: str = "laplace",
    rng: RngLike = None,
    backend: CountingBackend = None,
    planner: PlannerSpec = None,
) -> PrivBasisResult:
    """Release the top-``k`` frequent itemsets under ε-DP.

    Parameters
    ----------
    database:
        The transaction database (vocabulary is treated as public).
        A :class:`~repro.engine.backend.CountingBackend` is also
        accepted here directly.
    k:
        Number of itemsets to publish.
    epsilon:
        Total privacy budget.
    eta:
        Safety-margin parameter η ≥ 1; defaults to
        :func:`~repro.pipeline.planner.default_eta`.
    alphas:
        Budget fractions (α₁, α₂, α₃) for steps 1 / 2–3 / 5; must be
        positive and sum to 1.  A non-default value builds a
        :class:`~repro.pipeline.planner.CustomPlanner`; mutually
        exclusive with ``planner``.
    max_basis_length:
        Hard cap ℓ on basis length (bins are 2^ℓ).
    single_basis_lambda:
        λ threshold for the single-basis fast path.
    greedy_basis_optimization:
        Forwarded to :func:`~repro.core.construct_basis.construct_basis_set`;
        False skips the greedy EV merge/dissolve phases (ablation
        switch).
    noise:
        Bin-noise mechanism for step 5: ``"laplace"`` (paper) or
        ``"geometric"`` (discrete analogue; extension).
    rng:
        Seed or generator for all randomness.
    backend:
        Counting engine all data access routes through; defaults to a
        fresh :class:`~repro.engine.bitmap.BitmapBackend` over
        ``database``.  Pass a warm backend (or use
        :class:`~repro.engine.session.PrivBasisSession`) to reuse
        exact intermediates across repeated releases.
    planner:
        Budget-allocation policy — a name (``"paper"`` /
        ``"adaptive"``), a spec mapping, or a
        :class:`~repro.pipeline.planner.BudgetPlanner` instance.
        Defaults to the paper plan.

    Returns
    -------
    PrivBasisResult
        Published itemsets with noisy frequencies, plus diagnostics
        (λ, F, P, the basis set, the budget ledger, and the per-stage
        :class:`~repro.pipeline.trace.ReleaseTrace` on ``.trace``).
    """
    # Imported here, not at module top: repro.core's package init
    # imports this module while repro.pipeline.plan may still be
    # mid-import (it pulls core.basis), so a top-level import of the
    # executor would close a cycle.
    from repro.pipeline.run import planned_release

    # The legacy alphas keyword maps onto the planner layer: the
    # default triple means "paper plan" (not a custom planner), so
    # planner= stays usable alongside the old signature.
    alphas_spec = None if tuple(alphas) == DEFAULT_ALPHAS else alphas
    return planned_release(
        database,
        k=k,
        epsilon=epsilon,
        planner=planner,
        eta=eta,
        alphas=alphas_spec,
        max_basis_length=max_basis_length,
        single_basis_lambda=single_basis_lambda,
        greedy_basis_optimization=greedy_basis_optimization,
        noise=noise,
        rng=rng,
        backend=backend,
    )
