"""PrivBasis — paper Algorithm 3 (the main pipeline).

Five steps, with the privacy budget ε split α₁/α₂/α₃ = 0.1/0.4/0.5:

1. ``GetLambda`` (α₁ε) — estimate λ, the number of distinct items in
   the top-k itemsets (safety-inflated by η).
2. If λ ≤ 12: ``GetFreqItems`` (α₂ε) selects the λ most frequent items
   ``F`` and the basis set is the single basis ``{F}``
   (Proposition 2).
3. Otherwise the α₂ε item budget is split λ:λ₂ between selecting λ
   items and λ₂ pairs, where λ₂ is the paper's damped heuristic
   ``(η·k − λ)/√max(1, (η·k−λ)/λ)``.
4. ``ConstructBasisSet`` (no data access) turns ``(F, P)`` into a basis
   set via maximal cliques + greedy EV merging.
5. ``BasisFreq`` (α₃ε) releases noisy counts of all covered itemsets
   and picks the top k.

Sequential composition over the data-touching steps gives ε-DP in
total (paper Theorem 6); the :class:`~repro.dp.budget.PrivacyBudget`
ledger enforces it at runtime.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.core.basis import DEFAULT_MAX_BASIS_LENGTH, BasisSet, single_basis
from repro.core.basis_freq import basis_freq
from repro.core.construct_basis import construct_basis_set
from repro.core.freq_elements import get_frequent_items, get_frequent_pairs
from repro.core.lambda_select import get_lambda
from repro.core.result import PrivBasisResult
from repro.datasets.transactions import TransactionDatabase
from repro.dp.budget import PrivacyBudget
from repro.dp.rng import RngLike, ensure_rng
from repro.engine.backend import CountingBackend, resolve_backend
from repro.errors import ValidationError

#: Budget fractions (α₁, α₂, α₃) — the paper's untuned default.
DEFAULT_ALPHAS: Tuple[float, float, float] = (0.1, 0.4, 0.5)

#: λ at or below which a single basis of the λ most frequent items is
#: used (paper Section 4.4: "Step 3 is needed only when λ > 12").
SINGLE_BASIS_LAMBDA = 12


def default_eta(k: int) -> float:
    """The paper's safety margin: 1.1 or 1.2 "depending on k".

    Small k leaves more room for the relative inflation, so we use 1.2
    up to k = 100 and 1.1 beyond.
    """
    return 1.2 if k <= 100 else 1.1


def privbasis(
    database: TransactionDatabase,
    k: int,
    epsilon: float,
    eta: Optional[float] = None,
    alphas: Tuple[float, float, float] = DEFAULT_ALPHAS,
    max_basis_length: int = DEFAULT_MAX_BASIS_LENGTH,
    single_basis_lambda: int = SINGLE_BASIS_LAMBDA,
    greedy_basis_optimization: bool = True,
    noise: str = "laplace",
    rng: RngLike = None,
    backend: CountingBackend = None,
) -> PrivBasisResult:
    """Release the top-``k`` frequent itemsets under ε-DP.

    Parameters
    ----------
    database:
        The transaction database (vocabulary is treated as public).
        A :class:`~repro.engine.backend.CountingBackend` is also
        accepted here directly.
    k:
        Number of itemsets to publish.
    epsilon:
        Total privacy budget.
    eta:
        Safety-margin parameter η ≥ 1; defaults to
        :func:`default_eta`.
    alphas:
        Budget fractions (α₁, α₂, α₃) for steps 1 / 2–3 / 5; must be
        positive and sum to 1.
    max_basis_length:
        Hard cap ℓ on basis length (bins are 2^ℓ).
    single_basis_lambda:
        λ threshold for the single-basis fast path.
    greedy_basis_optimization:
        Forwarded to :func:`construct_basis_set`; False skips the
        greedy EV merge/dissolve phases (ablation switch).
    noise:
        Bin-noise mechanism for step 5: ``"laplace"`` (paper) or
        ``"geometric"`` (discrete analogue; extension).
    rng:
        Seed or generator for all randomness.
    backend:
        Counting engine all data access routes through; defaults to a
        fresh :class:`~repro.engine.bitmap.BitmapBackend` over
        ``database``.  Pass a warm backend (or use
        :class:`~repro.engine.session.PrivBasisSession`) to reuse
        exact intermediates across repeated releases.

    Returns
    -------
    PrivBasisResult
        Published itemsets with noisy frequencies, plus diagnostics
        (λ, F, P, the basis set, and the budget ledger).
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if len(alphas) != 3:
        raise ValidationError(f"alphas must have 3 entries, got {alphas!r}")
    if abs(sum(alphas) - 1.0) > 1e-9:
        raise ValidationError(
            f"alphas must sum to 1, got {alphas!r} (sum {sum(alphas):g})"
        )
    if eta is None:
        eta = default_eta(k)
    backend = resolve_backend(database, backend)
    generator = ensure_rng(rng)
    budget = PrivacyBudget(epsilon)
    alpha1_eps, alpha2_eps, alpha3_eps = budget.split(alphas)

    # Step 1: λ.
    lam = get_lambda(
        backend, k, alpha1_eps, eta=eta, rng=generator
    )
    budget.spend(alpha1_eps, "get_lambda")
    lam = min(lam, backend.num_items)

    if lam <= single_basis_lambda:
        # Steps 2 + 4 (degenerate): single basis of the λ top items.
        frequent_items = get_frequent_items(
            backend, lam, alpha2_eps, rng=generator
        )
        budget.spend(alpha2_eps, "get_frequent_items")
        basis_set = single_basis(frequent_items)
        frequent_pairs: Tuple = ()
    else:
        lam2 = _pair_budget_size(lam, k, eta)
        available_pairs = lam * (lam - 1) // 2
        lam2 = min(lam2, available_pairs)
        if lam2 >= 1:
            beta1_eps = alpha2_eps * lam / (lam + lam2)
            beta2_eps = alpha2_eps - beta1_eps
        else:
            beta1_eps, beta2_eps = alpha2_eps, 0.0
        frequent_items = get_frequent_items(
            backend, lam, beta1_eps, rng=generator
        )
        budget.spend(beta1_eps, "get_frequent_items")
        if lam2 >= 1:
            pairs = get_frequent_pairs(
                backend, frequent_items, lam2, beta2_eps, rng=generator
            )
            budget.spend(beta2_eps, "get_frequent_pairs")
        else:
            pairs = []
        frequent_pairs = tuple(sorted(pairs))
        # Step 4: no data access, no budget.
        basis_set = construct_basis_set(
            frequent_items,
            frequent_pairs,
            max_basis_length,
            greedy_optimize=greedy_basis_optimization,
        )

    # Step 5: noisy counts over C(B), top-k selection.
    release = basis_freq(
        backend, basis_set, k, alpha3_eps, rng=generator, noise=noise
    )
    budget.spend(alpha3_eps, "basis_freq")
    budget.assert_within_budget()

    return PrivBasisResult(
        itemsets=release.itemsets,
        k=k,
        epsilon=epsilon,
        method="privbasis",
        lam=lam,
        frequent_items=tuple(sorted(frequent_items)),
        frequent_pairs=tuple(frequent_pairs),
        basis_set=basis_set,
        budget=budget,
    )


def _pair_budget_size(lam: int, k: int, eta: float) -> int:
    """The paper's λ₂ heuristic (Section 4.4).

    ``λ₂' = η·k − λ`` damped by ``√max(1, λ₂'/λ)``: when far more pairs
    than items would be requested, most of the top-k are actually
    deeper itemsets over few items, so fewer explicit pairs suffice
    (worked example in the paper: pumsb-star, λ = 20 → λ₂ = 44).
    """
    lam2_raw = eta * k - lam
    if lam2_raw <= 0:
        return 0
    damped = lam2_raw / math.sqrt(max(1.0, lam2_raw / lam))
    # Floor, not round: the paper's worked example (λ = 20, k = 100,
    # η = 1.2 → λ₂ = 44) implies ⌊100/√5⌋ = 44.
    return max(1, int(damped))
