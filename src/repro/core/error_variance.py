"""Error-variance analysis of basis-set releases (paper Section 4.2).

Releasing the bin counts of a width-``w`` basis set adds independent
``Lap(w/ε)`` noise to each bin.  Reconstructing the count of an itemset
``X`` from basis ``B_i ⊇ X`` sums ``2^{|B_i|−|X|}`` noisy bins, so (paper
Equation 4)::

    EV[nf_i(X)] = 2^{|B_i|−|X|+1} · w² / (ε²N²)

When several bases cover ``X`` the estimates combine by inverse-variance
weighting (the minimum-variance unbiased combination), giving
``v₁v₂/(v₁+v₂)``.  The greedy basis constructor (Algorithm 2) minimizes
the *average-case* EV over the query family (the frequent items and
pairs); only *relative* variances matter there, so the helpers below
expose both absolute and relative forms.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.errors import ValidationError
from repro.fim.itemsets import Itemset

#: Relative variance unit: the variance of a single noisy bin count is
#: 2·(w/ε)²; we factor out 2·w²/ε² (and 1/N² for frequencies) so a
#: single bin has relative variance 1.
def bin_count_variance(width: int, epsilon: float) -> float:
    """Absolute variance of one noisy bin *count*: 2 (w/ε)²."""
    _validate(width, epsilon)
    scale = width / epsilon
    return 2.0 * scale * scale


def itemset_count_variance(
    basis_length: int, itemset_size: int, width: int, epsilon: float
) -> float:
    """Variance of an itemset *count* recovered from one basis.

    Sum of ``2^{ℓ−|X|}`` independent noisy bins (paper Equation 4, in
    count rather than frequency units).
    """
    _validate(width, epsilon)
    if itemset_size > basis_length:
        raise ValidationError(
            f"itemset of size {itemset_size} cannot be covered by a "
            f"basis of length {basis_length}"
        )
    return (
        float(2 ** (basis_length - itemset_size))
        * bin_count_variance(width, epsilon)
    )


def itemset_frequency_variance(
    basis_length: int,
    itemset_size: int,
    width: int,
    epsilon: float,
    num_transactions: int,
) -> float:
    """Paper Equation 4 verbatim: ``2^{ℓ−|X|+1} w² / (ε²N²)``."""
    if num_transactions < 1:
        raise ValidationError("num_transactions must be >= 1")
    return itemset_count_variance(
        basis_length, itemset_size, width, epsilon
    ) / float(num_transactions) ** 2


def combine_variances(variances: Sequence[float]) -> float:
    """Variance of the inverse-variance-weighted average.

    ``1 / Σ (1/vᵢ)`` — for two estimates this is the paper's
    ``v₁v₂/(v₁+v₂)``.
    """
    if not variances:
        raise ValidationError("need at least one variance to combine")
    if any(not (v > 0) for v in variances):
        raise ValidationError(f"variances must be positive: {variances!r}")
    return 1.0 / math.fsum(1.0 / v for v in variances)


def combine_estimates(
    estimates: Sequence[float], variances: Sequence[float]
) -> Tuple[float, float]:
    """Inverse-variance-weighted average and its variance.

    This is the streaming rule of Algorithm 1 lines 21–23 applied to
    the full list at once: weights ∝ 1/vᵢ.
    """
    if len(estimates) != len(variances) or not estimates:
        raise ValidationError("estimates and variances must align")
    combined_variance = combine_variances(variances)
    value = combined_variance * math.fsum(
        estimate / variance
        for estimate, variance in zip(estimates, variances)
    )
    return value, combined_variance


def average_case_ev(
    bases: Sequence[Iterable[int]],
    queries: Sequence[Itemset],
) -> float:
    """Relative average-case error variance of a basis configuration.

    The quantity paper Algorithm 2 greedily minimizes: for each query
    itemset, the inverse-variance-combined relative variance across all
    covering bases, averaged over the query family, with the global
    ``w²`` sensitivity factor included (merging changes ``w``, which is
    exactly why merging can help).  Units: multiples of ``2/ε²`` in
    count space; only differences matter to the greedy search.

    Returns ``inf`` if any query is uncovered, so greedy moves can
    never trade coverage away.
    """
    basis_sets: List[Set[int]] = [set(basis) for basis in bases]
    width = len(basis_sets)
    if width == 0:
        return math.inf
    total = 0.0
    for query in queries:
        query_set = set(query)
        inverse_sum = 0.0
        for basis in basis_sets:
            if query_set <= basis:
                inverse_sum += 2.0 ** -(len(basis) - len(query_set))
        if inverse_sum == 0.0:
            return math.inf
        total += 1.0 / inverse_sum
    if not queries:
        return 0.0
    return (width * width) * total / len(queries)


def singleton_grouping_ev(group_size: int, k: int) -> float:
    """Relative EV of querying ``k`` singletons via size-ℓ bases.

    The paper's closed-form special case (Section 4.2): splitting k
    items into ``w = k/ℓ`` bases of size ℓ gives per-item variance
    ``(2^{ℓ−1}/ℓ²)·k²·V`` — minimized at ℓ = 3, where it is 4/9 of the
    direct (one-basis-per-item) method.  Returned in units of
    ``k²·V``.
    """
    if group_size < 1:
        raise ValidationError(f"group_size must be >= 1, got {group_size}")
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    return float(2 ** (group_size - 1)) / float(group_size * group_size)


def _validate(width: int, epsilon: float) -> None:
    if width < 1:
        raise ValidationError(f"width must be >= 1, got {width}")
    if not (epsilon > 0):
        raise ValidationError(f"epsilon must be positive, got {epsilon}")
