"""Basis sets (paper Definitions 2 and 3).

A θ-basis set ``B = {B_1, …, B_w}`` covers every θ-frequent itemset:
each such itemset is a subset of some basis ``B_i``.  Its *width* is
``w = |B|`` and its *length* is ``ℓ = max_i |B_i|``.  The candidate set
``C(B)`` is the union of the powersets of the bases — the family of
itemsets whose frequencies BasisFreq can reconstruct.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Set, Tuple

from repro.datasets.transactions import TransactionDatabase, canonical_itemset
from repro.errors import ValidationError
from repro.fim.counting import DEFAULT_MAX_BASIS_LENGTH
from repro.fim.itemsets import Itemset, all_nonempty_subsets

__all__ = ["DEFAULT_MAX_BASIS_LENGTH", "BasisSet", "single_basis"]


class BasisSet:
    """An immutable collection of bases (each a sorted item tuple).

    Duplicate bases and bases subsumed by another basis are redundant —
    they waste privacy budget (sensitivity grows with width ``w``) —
    but are permitted, because intermediate states of the greedy
    constructor can contain them; :meth:`simplified` removes them.
    """

    def __init__(self, bases: Iterable[Iterable[int]]) -> None:
        normalized = [canonical_itemset(basis) for basis in bases]
        if any(len(basis) == 0 for basis in normalized):
            raise ValidationError("bases must be non-empty itemsets")
        self._bases: Tuple[Itemset, ...] = tuple(normalized)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def bases(self) -> Tuple[Itemset, ...]:
        return self._bases

    @property
    def width(self) -> int:
        """``w`` — the number of bases (paper Definition 2)."""
        return len(self._bases)

    @property
    def length(self) -> int:
        """``ℓ`` — the size of the largest basis."""
        return max((len(basis) for basis in self._bases), default=0)

    @property
    def items(self) -> Itemset:
        """All distinct items appearing in some basis."""
        return tuple(
            sorted({item for basis in self._bases for item in basis})
        )

    def __len__(self) -> int:
        return self.width

    def __iter__(self) -> Iterator[Itemset]:
        return iter(self._bases)

    def __getitem__(self, index: int) -> Itemset:
        return self._bases[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BasisSet):
            return NotImplemented
        return sorted(self._bases) == sorted(other._bases)

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._bases)))

    def __repr__(self) -> str:
        return (
            f"BasisSet(width={self.width}, length={self.length}, "
            f"bases={list(self._bases)!r})"
        )

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def covers(self, itemset: Iterable[int]) -> bool:
        """True iff some basis is a superset of ``itemset``."""
        target = set(canonical_itemset(itemset))
        return any(target <= set(basis) for basis in self._bases)

    def covering_bases(self, itemset: Iterable[int]) -> List[int]:
        """Indices of all bases covering ``itemset``.

        An itemset covered by several bases gets several independent
        noisy counts, which BasisFreq combines by inverse-variance
        weighting.
        """
        target = set(canonical_itemset(itemset))
        return [
            index
            for index, basis in enumerate(self._bases)
            if target <= set(basis)
        ]

    def candidate_set(self) -> List[Itemset]:
        """``C(B)`` — all non-empty subsets of the bases (Definition 3).

        Sorted by (size, lexicographic); each itemset appears once even
        when covered by multiple bases.  Exponential in basis length, so
        callers should have enforced the length cap first.
        """
        seen: Set[Itemset] = set()
        for basis in self._bases:
            for subset in all_nonempty_subsets(basis):
                seen.add(subset)
        return sorted(seen, key=lambda itemset: (len(itemset), itemset))

    def candidate_count(self) -> int:
        """``|C(B)|`` without materializing it (inclusion by dedup)."""
        return len(self.candidate_set())

    def is_theta_basis_for(
        self,
        database: TransactionDatabase,
        theta: float,
    ) -> bool:
        """Exactly verify the θ-basis property against a database.

        Non-private (scans the data); used in tests and diagnostics,
        never inside the DP pipeline.
        """
        from repro.fim.fpgrowth import fpgrowth

        if not 0 < theta <= 1:
            raise ValidationError(f"theta must be in (0, 1], got {theta}")
        min_support = _ceil_support(theta, database.num_transactions)
        frequent = fpgrowth(database, max(1, min_support))
        return all(self.covers(itemset) for itemset in frequent)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def simplified(self) -> "BasisSet":
        """Drop duplicate bases and bases contained in another basis."""
        kept: List[Itemset] = []
        ordered = sorted(self._bases, key=len, reverse=True)
        for basis in ordered:
            basis_set = set(basis)
            if any(basis_set <= set(existing) for existing in kept):
                continue
            kept.append(basis)
        return BasisSet(sorted(kept))

    def merged(self, first: int, second: int) -> "BasisSet":
        """Merge bases ``first`` and ``second`` (paper Proposition 4).

        Replacing ``B_i, B_j`` with ``B_i ∪ B_j`` preserves the θ-basis
        property and reduces the width by one.
        """
        if first == second:
            raise ValidationError("cannot merge a basis with itself")
        union = tuple(
            sorted(set(self._bases[first]) | set(self._bases[second]))
        )
        remaining = [
            basis
            for index, basis in enumerate(self._bases)
            if index not in (first, second)
        ]
        return BasisSet(remaining + [union])

    def enforce_max_length(self, max_length: int) -> "BasisSet":
        """Split oversized bases so every basis has ≤ ``max_length`` items.

        Splitting *weakens* coverage (subsets straddling the cut are no
        longer covered), so the pipeline prefers never to build
        oversized bases; this is a safety valve for adversarial inputs.
        """
        if max_length < 1:
            raise ValidationError(
                f"max_length must be >= 1, got {max_length}"
            )
        pieces: List[Itemset] = []
        for basis in self._bases:
            if len(basis) <= max_length:
                pieces.append(basis)
                continue
            for start in range(0, len(basis), max_length):
                pieces.append(basis[start:start + max_length])
        return BasisSet(pieces)


def single_basis(items: Iterable[int]) -> BasisSet:
    """The width-1 basis set ``{{x_1, …, x_λ}}`` (paper Proposition 2)."""
    return BasisSet([canonical_itemset(items)])


def _ceil_support(theta: float, num_transactions: int) -> int:
    """Smallest support count with frequency ≥ θ."""
    import math

    return int(math.ceil(theta * num_transactions - 1e-9))
