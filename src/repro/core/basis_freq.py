"""BasisFreq — paper Algorithm 1.

Given a basis set ``B = {B_1, …, B_w}``, each basis partitions the
transactions into ``2^{|B_i|}`` disjoint bins (one per subset of
``B_i``: the transactions whose intersection with ``B_i`` is exactly
that subset).  Publishing all bin counts has L1 sensitivity ``w``
(adding a transaction changes exactly one bin per basis by one), so
adding ``Lap(w/ε)`` noise to every bin is ε-DP.  Everything after the
noisy bins is post-processing:

* itemset counts are superset-sums of bins, computed for all subsets of
  a basis at once by the zeta transform (O(ℓ·2^ℓ) instead of the
  paper's O(3^ℓ) per-itemset loop — same values exactly);
* itemsets covered by several bases combine their estimates by
  inverse-variance weighting (Algorithm 1 lines 21–23);
* the k itemsets with the highest combined noisy counts are returned.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.basis import BasisSet
from repro.core.error_variance import bin_count_variance
from repro.core.result import NoisyItemset, PrivateFIMResult
from repro.datasets.transactions import TransactionDatabase
from repro.dp.geometric import geometric_alpha, geometric_noise
from repro.dp.laplace import laplace_noise
from repro.dp.rng import RngLike, ensure_rng
from repro.engine.backend import CountingBackend, resolve_backend
from repro.errors import ValidationError
from repro.fim.counting import superset_sum_transform
from repro.fim.itemsets import Itemset, mask_to_itemset

#: Bin-noise mechanisms supported by :func:`noisy_bin_counts`.
NOISE_KINDS = ("laplace", "geometric")


def noisy_bin_counts(
    database: TransactionDatabase,
    basis_set: BasisSet,
    epsilon: float,
    rng: RngLike = None,
    noise: str = "laplace",
    backend: CountingBackend = None,
) -> List[np.ndarray]:
    """The ε-DP noisy bin histograms, one array of 2^|B_i| per basis.

    This is the *only* data access of BasisFreq (Algorithm 1 lines
    2–11); everything downstream is post-processing.  The exact bins
    come from ``backend`` (default
    :class:`~repro.engine.bitmap.BitmapBackend`); any correct backend
    yields identical exact bins, so the DP guarantee is
    backend-independent.

    ``noise`` selects the mechanism: ``"laplace"`` (the paper's) or
    ``"geometric"`` (discrete, integer outputs; extension — see
    :mod:`repro.dp.geometric`).  Both calibrate to sensitivity ``w``.
    """
    if not (epsilon > 0):
        raise ValidationError(f"epsilon must be positive, got {epsilon}")
    if basis_set.width == 0:
        raise ValidationError("basis set must contain at least one basis")
    if noise not in NOISE_KINDS:
        raise ValidationError(
            f"noise must be one of {NOISE_KINDS}, got {noise!r}"
        )
    backend = resolve_backend(database, backend)
    generator = ensure_rng(rng)
    width = basis_set.width
    # One batched backend call for the whole basis set (a single pool
    # fan-out on the sharded backends), then noise drawn per basis in
    # basis order — the same RNG consumption order as the historical
    # per-basis loop, so seeded releases are bit-identical.
    exact_bins = backend.bin_counts_batch([basis for basis in basis_set])
    noisy: List[np.ndarray] = []
    if noise == "laplace":
        scale = width / epsilon
        for exact in exact_bins:
            noisy.append(
                exact.astype(float)
                + laplace_noise(scale, size=exact.shape, rng=generator)
            )
    else:
        alpha = geometric_alpha(width, epsilon)
        for exact in exact_bins:
            drawn = geometric_noise(alpha, size=exact.shape,
                                    rng=generator)
            noisy.append((exact + drawn).astype(float))
    return noisy


def itemset_estimates_from_bins(
    basis_set: BasisSet,
    noisy_bins: List[np.ndarray],
    epsilon: float,
    noise: str = "laplace",
) -> Dict[Itemset, Tuple[float, float]]:
    """Combine noisy bins into per-itemset (count, variance) estimates.

    Pure post-processing.  For each basis the zeta transform yields the
    noisy count of every subset; duplicates across bases are merged by
    the streaming inverse-variance rule of Algorithm 1 lines 17–24.
    The relative weight of a basis-``i`` estimate for ``X`` is
    ``nv = 2^{|B_i|−|X|}`` (the number of noisy bins summed), exactly
    the paper's ``C(X).v`` bookkeeping.

    ``noise`` only affects the absolute variances reported (relative
    weights — and hence the combined counts — are identical for any
    i.i.d. per-bin noise).
    """
    width = basis_set.width
    per_bin_variance = _per_bin_variance(width, epsilon, noise)
    estimates: Dict[Itemset, Tuple[float, float]] = {}
    for basis, bins in zip(basis_set, noisy_bins):
        length = len(basis)
        if bins.shape[0] != (1 << length):
            raise ValidationError(
                f"bins for basis {basis} have length {bins.shape[0]}, "
                f"expected {1 << length}"
            )
        sums = superset_sum_transform(bins)
        masks = np.arange(1 << length)
        sizes = np.bitwise_count(masks.astype(np.uint64)).astype(int)
        for mask in masks:
            if mask == 0:
                continue  # the empty itemset is not a candidate
            itemset = mask_to_itemset(int(mask), basis)
            count = float(sums[mask])
            relative_weight = float(1 << (length - sizes[mask]))
            existing = estimates.get(itemset)
            if existing is None:
                estimates[itemset] = (count, relative_weight)
            else:
                old_count, old_weight = existing
                total = old_weight + relative_weight
                merged_count = (
                    relative_weight / total * old_count
                    + old_weight / total * count
                )
                merged_weight = old_weight * relative_weight / total
                estimates[itemset] = (merged_count, merged_weight)
    return {
        itemset: (count, weight * per_bin_variance)
        for itemset, (count, weight) in estimates.items()
    }


def basis_freq(
    database: TransactionDatabase,
    basis_set: BasisSet,
    k: int,
    epsilon: float,
    rng: RngLike = None,
    method: str = "privbasis",
    noise: str = "laplace",
    backend: CountingBackend = None,
) -> PrivateFIMResult:
    """Paper Algorithm 1: release the top-k itemsets of ``C(B)``.

    Satisfies ε-differential privacy (paper Theorem 1).  Returns fewer
    than ``k`` itemsets only when the candidate set is smaller than
    ``k``.  ``noise`` selects the bin mechanism and ``backend`` the
    counting engine (see :func:`noisy_bin_counts`).
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    backend = resolve_backend(database, backend)
    generator = ensure_rng(rng)
    bins = noisy_bin_counts(
        backend, basis_set, epsilon, generator, noise=noise
    )
    estimates = itemset_estimates_from_bins(
        basis_set, bins, epsilon, noise=noise
    )
    ranked = sorted(
        estimates.items(),
        key=lambda entry: (-entry[1][0], entry[0]),
    )
    top = ranked[:k]
    n = float(backend.num_transactions) or 1.0
    itemsets = [
        NoisyItemset(
            itemset=itemset,
            noisy_count=count,
            noisy_frequency=count / n,
            count_variance=variance,
        )
        for itemset, (count, variance) in top
    ]
    return PrivateFIMResult(
        itemsets=itemsets, k=k, epsilon=epsilon, method=method
    )


def _per_bin_variance(width: int, epsilon: float, noise: str) -> float:
    """Per-bin noise variance for the selected mechanism."""
    if noise == "laplace":
        return bin_count_variance(width, epsilon)
    if noise == "geometric":
        from repro.dp.geometric import geometric_variance

        return geometric_variance(geometric_alpha(width, epsilon))
    raise ValidationError(
        f"noise must be one of {NOISE_KINDS}, got {noise!r}"
    )
