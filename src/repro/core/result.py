"""Result containers for the private mining pipelines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.core.basis import BasisSet
from repro.dp.budget import PrivacyBudget
from repro.fim.itemsets import Itemset

if TYPE_CHECKING:  # avoid a runtime core ↔ pipeline import cycle
    from repro.pipeline.trace import ReleaseTrace


@dataclass(frozen=True)
class NoisyItemset:
    """One published itemset with its noisy statistics."""

    itemset: Itemset
    noisy_count: float
    noisy_frequency: float
    #: Variance of the noisy count estimate (absolute, count units).
    count_variance: float


@dataclass
class PrivateFIMResult:
    """Output of a differentially private top-k release.

    ``itemsets`` holds the k published itemsets in decreasing noisy
    frequency order.  The structure is shared by PrivBasis and the TF
    baseline so the metrics layer treats them uniformly.
    """

    itemsets: List[NoisyItemset]
    k: int
    epsilon: float
    method: str
    #: Snapshot version of the database this release was computed on.
    #: ``None`` for direct pipeline calls over a static database; the
    #: snapshot-aware serving session
    #: (:class:`repro.engine.session.PrivBasisSession`) pins it so a
    #: release is attributable to one exact data state even while
    #: ingestion keeps appending.
    snapshot_version: Optional[int] = None
    #: Reuse provenance: ``None`` for a fresh mechanism run; a mapping
    #: like ``{"hit": True, "source": {"k": …, "epsilon": …,
    #: "snapshot_version": …}, "epsilon_charged": 0.0}`` when the
    #: answer was post-processed from a stored release by the reuse
    #: plane (:mod:`repro.pipeline.reuse`) without touching data.
    reuse: Optional[Dict[str, object]] = None

    def itemset_set(self) -> Set[Itemset]:
        """The published itemsets as a set (FNR computation)."""
        return {entry.itemset for entry in self.itemsets}

    def frequencies(self) -> Dict[Itemset, float]:
        """Mapping itemset → published noisy frequency."""
        return {
            entry.itemset: entry.noisy_frequency for entry in self.itemsets
        }

    def __len__(self) -> int:
        return len(self.itemsets)


@dataclass
class PrivBasisResult(PrivateFIMResult):
    """PrivBasis output plus pipeline diagnostics (paper Algorithm 3).

    The diagnostic fields expose every intermediate private choice so
    experiments can report λ, the selected items/pairs, and the basis
    geometry alongside the published itemsets.
    """

    lam: int = 0
    frequent_items: Tuple[int, ...] = ()
    frequent_pairs: Tuple[Itemset, ...] = ()
    basis_set: Optional[BasisSet] = None
    budget: Optional[PrivacyBudget] = None
    #: Per-stage execution record (ε, wall time, backend queries) of
    #: the pipeline run that produced this release; populated by
    #: :mod:`repro.pipeline.run`, ``None`` only for results built by
    #: hand (e.g. in tests).
    trace: Optional["ReleaseTrace"] = None

    @property
    def used_single_basis(self) -> bool:
        """True when the λ ≤ threshold branch was taken."""
        return self.basis_set is not None and self.basis_set.width == 1
