"""Threshold-mode frontend: publish all itemsets with frequency ≥ θ.

The paper (Section 4, opening): "If one desires to publish all
itemsets above a given threshold θ, one can compute the value k such
that the k'th most frequent itemset has frequency ≥ θ and the k+1'th
itemset has frequency < θ, and then uses PrivBasis to find the top k
frequent itemsets."

The paper leaves the privacy of that k-computation implicit; computing
k exactly from the data would leak.  We make it explicit and private:

1. (ε_k) Select k via the exponential mechanism over a candidate grid,
   with quality ``q(D, k) = −|f_k − θ|·N`` — the same trick as the
   paper's GetLambda, and with the same sensitivity bound: adding or
   removing one transaction moves the k-th itemset frequency f_k by at
   most 1/N, so GS_q = 1.
2. (ε − ε_k) Run PrivBasis with the selected k.
3. Post-processing (free): drop released itemsets whose *noisy*
   frequency is below θ.

The output is therefore ε-DP in total.  Step 3 trades false positives
for false negatives near the threshold exactly as the noisy
frequencies dictate; no additional data access happens.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.privbasis import DEFAULT_ALPHAS, privbasis
from repro.core.result import PrivBasisResult
from repro.datasets.transactions import TransactionDatabase
from repro.dp.exponential import exponential_mechanism
from repro.dp.rng import RngLike, ensure_rng
from repro.engine.backend import CountingBackend, resolve_backend
from repro.errors import ValidationError

#: Fraction of ε spent on selecting k (the rest goes to PrivBasis).
DEFAULT_K_FRACTION = 0.1

#: Upper bound on the k grid; beyond this PrivBasis itself becomes the
#: bottleneck and a top-k interface is the better tool.
DEFAULT_MAX_K = 512


def select_k_for_threshold(
    database: TransactionDatabase,
    theta: float,
    epsilon: float,
    max_k: int = DEFAULT_MAX_K,
    rng: RngLike = None,
    backend: CountingBackend = None,
) -> int:
    """Privately select k with f_k closest to θ (exponential mechanism).

    Quality of candidate k is ``−|f_k − θ|·N`` with sensitivity 1 (the
    k-th most frequent itemset's count moves by at most 1 per added or
    removed transaction, and θ·N is data-independent).
    """
    if not 0 < theta <= 1:
        raise ValidationError(f"theta must be in (0, 1], got {theta}")
    if not epsilon > 0:
        raise ValidationError(f"epsilon must be positive, got {epsilon}")
    if max_k < 1:
        raise ValidationError(f"max_k must be >= 1, got {max_k}")
    backend = resolve_backend(database, backend)
    generator = ensure_rng(rng)
    n = backend.num_transactions
    if n == 0:
        raise ValidationError("database is empty")

    # Frequencies of the top max_k itemsets, padded with 0 when the
    # database has fewer than max_k itemsets above zero support.
    top = backend.top_k(max_k)
    frequencies = [count / n for _, count in top]
    frequencies += [0.0] * (max_k - len(frequencies))

    qualities = np.array(
        [-abs(frequency - theta) * n for frequency in frequencies]
    )
    index = exponential_mechanism(
        qualities, epsilon, sensitivity=1.0, rng=generator
    )
    return index + 1


def privbasis_threshold(
    database: TransactionDatabase,
    theta: float,
    epsilon: float,
    k_fraction: float = DEFAULT_K_FRACTION,
    max_k: int = DEFAULT_MAX_K,
    alphas: Tuple[float, float, float] = DEFAULT_ALPHAS,
    drop_below_threshold: bool = True,
    rng: RngLike = None,
    backend: CountingBackend = None,
    **privbasis_kwargs,
) -> PrivBasisResult:
    """Release (approximately) all θ-frequent itemsets under ε-DP.

    Parameters
    ----------
    theta:
        Frequency threshold in (0, 1].
    epsilon:
        Total privacy budget; ``k_fraction·ε`` selects k, the rest
        runs PrivBasis.
    drop_below_threshold:
        When True (default), filter the release to itemsets whose
        noisy frequency is ≥ θ (post-processing).  When False, return
        the full top-k release and let the caller decide.
    privbasis_kwargs:
        Forwarded to :func:`~repro.core.privbasis.privbasis`
        (``eta``, ``max_basis_length``, …).

    Returns
    -------
    PrivBasisResult
        As from :func:`privbasis`; ``result.k`` is the privately
        selected k and ``result.epsilon`` the *total* budget spent.
    """
    if not 0 < k_fraction < 1:
        raise ValidationError(
            f"k_fraction must be in (0, 1), got {k_fraction}"
        )
    backend = resolve_backend(database, backend)
    generator = ensure_rng(rng)
    k_epsilon = k_fraction * epsilon
    mining_epsilon = epsilon - k_epsilon

    k = select_k_for_threshold(
        backend, theta, k_epsilon, max_k=max_k, rng=generator
    )
    release = privbasis(
        backend,
        k=k,
        epsilon=mining_epsilon,
        alphas=alphas,
        rng=generator,
        **privbasis_kwargs,
    )
    itemsets = release.itemsets
    if drop_below_threshold:
        itemsets = [
            entry for entry in itemsets if entry.noisy_frequency >= theta
        ]
    return PrivBasisResult(
        itemsets=itemsets,
        k=k,
        epsilon=epsilon,
        method="privbasis-threshold",
        lam=release.lam,
        frequent_items=release.frequent_items,
        frequent_pairs=release.frequent_pairs,
        basis_set=release.basis_set,
        budget=release.budget,
    )
