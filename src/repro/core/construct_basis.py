"""ConstructBasisSet — paper Algorithm 2.

Builds a basis set covering all maximal cliques of the frequent-pairs
graph ``(F, P)`` while greedily minimizing the average-case error
variance (EV) of querying the frequencies of the items in ``F`` and the
pairs in ``P``:

1. ``B1`` ← maximal cliques of size ≥ 2 (Bron–Kerbosch);
2. ``B2`` ← items of ``F`` appearing in no pair, grouped into itemsets
   of ≤ 3 (size 3 minimizes ``2^{ℓ−1}/ℓ²``, Section 4.2);
3. greedily merge pairs of bases in ``B1`` while the merge with the
   largest EV reduction still reduces EV (merging shrinks the width
   ``w`` — whose square multiplies every variance — at the cost of
   longer bases);
4. greedily dissolve bases of ``B2``, moving their items into the
   smallest existing bases, while that reduces EV.

A hard cap on basis length (default 12, paper Section 4.2) bounds the
``2^ℓ`` bin blow-up regardless of what the greedy search would like.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from repro.core.basis import (
    DEFAULT_MAX_BASIS_LENGTH,
    BasisSet,
)
from repro.core.error_variance import average_case_ev
from repro.errors import ValidationError
from repro.fim.itemsets import Itemset, canonical_itemset
from repro.graph.adjacency import UndirectedGraph
from repro.graph.bron_kerbosch import maximal_cliques

#: EV improvements smaller than this are treated as "no reduction" so
#: the greedy loops terminate cleanly despite float noise.
_EV_TOLERANCE = 1e-12


def construct_basis_set(
    frequent_items: Iterable[int],
    frequent_pairs: Iterable[Itemset],
    max_basis_length: int = DEFAULT_MAX_BASIS_LENGTH,
    greedy_optimize: bool = True,
) -> BasisSet:
    """Paper Algorithm 2.

    Parameters
    ----------
    frequent_items:
        ``F`` — the (privately selected) frequent items.
    frequent_pairs:
        ``P`` — the (privately selected) frequent pairs; every pair
        must consist of items of ``F``.
    max_basis_length:
        Hard cap ℓ on any basis produced (merges violating it are
        vetoed).
    greedy_optimize:
        When False, skip the greedy merge/dissolve phases (Algorithm 2
        lines 4–5) and return the raw cliques + leftover triples.
        Exists for the ablation benchmark measuring what the greedy EV
        optimization buys.

    This function never touches the dataset: it post-processes the
    private selections, so it consumes no privacy budget (paper
    Section 4.4, "Step 4 does not access the dataset").
    """
    items = canonical_itemset(frequent_items)
    pairs = [canonical_itemset(pair) for pair in frequent_pairs]
    if any(len(pair) != 2 for pair in pairs):
        raise ValidationError("frequent_pairs must all have size 2")
    item_set = set(items)
    for pair in pairs:
        if not set(pair) <= item_set:
            raise ValidationError(
                f"pair {pair} contains items outside F"
            )
    if max_basis_length < 3:
        raise ValidationError(
            f"max_basis_length must be >= 3, got {max_basis_length}"
        )
    if not items:
        raise ValidationError("F must contain at least one item")

    # Queries whose EV the greedy phases minimize: F's singletons and P.
    queries: List[Itemset] = [(item,) for item in items] + pairs

    graph = UndirectedGraph.from_pairs(pairs, nodes=items)
    cliques = maximal_cliques(graph)
    group_one: List[Set[int]] = [
        set(clique) for clique in cliques if len(clique) >= 2
    ]
    paired_items = {item for pair in pairs for item in pair}
    leftovers = [item for item in items if item not in paired_items]
    group_two: List[Set[int]] = [
        set(leftovers[start:start + 3])
        for start in range(0, len(leftovers), 3)
    ]

    if greedy_optimize:
        group_one = _greedy_merge(
            group_one, group_two, queries, max_basis_length
        )
        group_one, group_two = _greedy_dissolve(
            group_one, group_two, queries, max_basis_length
        )
    return BasisSet(
        [tuple(sorted(basis)) for basis in group_one + group_two]
    ).simplified()


def _greedy_merge(
    group_one: List[Set[int]],
    group_two: List[Set[int]],
    queries: Sequence[Itemset],
    max_basis_length: int,
) -> List[Set[int]]:
    """Algorithm 2 line 4: merge clique-bases while EV decreases."""
    current = average_case_ev(group_one + group_two, queries)
    while len(group_one) >= 2:
        best_improvement = 0.0
        best_pair: Tuple[int, int] | None = None
        best_ev = current
        for i in range(len(group_one)):
            for j in range(i + 1, len(group_one)):
                merged = group_one[i] | group_one[j]
                if len(merged) > max_basis_length:
                    continue
                candidate = (
                    [
                        basis
                        for index, basis in enumerate(group_one)
                        if index not in (i, j)
                    ]
                    + [merged]
                    + group_two
                )
                candidate_ev = average_case_ev(candidate, queries)
                improvement = current - candidate_ev
                if improvement > best_improvement + _EV_TOLERANCE:
                    best_improvement = improvement
                    best_pair = (i, j)
                    best_ev = candidate_ev
        if best_pair is None:
            break
        i, j = best_pair
        merged = group_one[i] | group_one[j]
        group_one = [
            basis
            for index, basis in enumerate(group_one)
            if index not in (i, j)
        ] + [merged]
        current = best_ev
    return group_one


def _greedy_dissolve(
    group_one: List[Set[int]],
    group_two: List[Set[int]],
    queries: Sequence[Itemset],
    max_basis_length: int,
) -> Tuple[List[Set[int]], List[Set[int]]]:
    """Algorithm 2 line 5: dissolve B2 bases into the smallest bases."""
    current = average_case_ev(group_one + group_two, queries)
    while group_two:
        best_improvement = 0.0
        best_candidate: Tuple[
            int, List[Set[int]], List[Set[int]], float
        ] | None = None
        for index in range(len(group_two)):
            candidate = _dissolve_one(
                group_one, group_two, index, max_basis_length
            )
            if candidate is None:
                continue
            candidate_one, candidate_two = candidate
            candidate_ev = average_case_ev(
                candidate_one + candidate_two, queries
            )
            improvement = current - candidate_ev
            if improvement > best_improvement + _EV_TOLERANCE:
                best_improvement = improvement
                best_candidate = (
                    index, candidate_one, candidate_two, candidate_ev
                )
        if best_candidate is None:
            break
        _, group_one, group_two, current = best_candidate
    return group_one, group_two


def _dissolve_one(
    group_one: List[Set[int]],
    group_two: List[Set[int]],
    index: int,
    max_basis_length: int,
) -> Tuple[List[Set[int]], List[Set[int]]] | None:
    """Remove ``group_two[index]``, placing each of its items into the
    currently smallest basis with room (re-evaluated per item).

    Returns None when some item cannot be placed without violating the
    length cap.
    """
    candidate_one = [set(basis) for basis in group_one]
    candidate_two = [
        set(basis)
        for position, basis in enumerate(group_two)
        if position != index
    ]
    homes = candidate_one + candidate_two
    if not homes:
        return None
    for item in sorted(group_two[index]):
        target = min(homes, key=len)
        if len(target) >= max_basis_length:
            return None
        target.add(item)
    return candidate_one, candidate_two
