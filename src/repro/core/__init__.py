"""The PrivBasis core: basis sets and the private mining pipeline."""

from repro.core.basis import (
    DEFAULT_MAX_BASIS_LENGTH,
    BasisSet,
    single_basis,
)
from repro.core.basis_freq import (
    basis_freq,
    itemset_estimates_from_bins,
    noisy_bin_counts,
)
from repro.core.construct_basis import construct_basis_set
from repro.core.error_variance import (
    average_case_ev,
    bin_count_variance,
    combine_estimates,
    combine_variances,
    itemset_count_variance,
    itemset_frequency_variance,
    singleton_grouping_ev,
)
from repro.core.freq_elements import (
    get_frequent_items,
    get_frequent_pairs,
    select_top_by_count,
)
from repro.core.lambda_select import get_lambda
from repro.core.postprocess import enforce_consistency, is_consistent
from repro.core.privbasis import (
    DEFAULT_ALPHAS,
    SINGLE_BASIS_LAMBDA,
    default_eta,
    privbasis,
)
from repro.core.result import NoisyItemset, PrivateFIMResult, PrivBasisResult

__all__ = [
    "BasisSet",
    "DEFAULT_ALPHAS",
    "DEFAULT_MAX_BASIS_LENGTH",
    "NoisyItemset",
    "PrivBasisResult",
    "PrivateFIMResult",
    "SINGLE_BASIS_LAMBDA",
    "average_case_ev",
    "basis_freq",
    "bin_count_variance",
    "combine_estimates",
    "combine_variances",
    "construct_basis_set",
    "default_eta",
    "enforce_consistency",
    "get_frequent_items",
    "get_frequent_pairs",
    "get_lambda",
    "itemset_count_variance",
    "is_consistent",
    "itemset_estimates_from_bins",
    "itemset_frequency_variance",
    "noisy_bin_counts",
    "privbasis",
    "select_top_by_count",
    "single_basis",
    "singleton_grouping_ev",
]
