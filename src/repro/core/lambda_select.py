"""GetLambda — paper Algorithm 3, lines 18–28.

Privately estimates λ, the number of distinct items involved in the
top-k itemsets, by selecting the item *rank* whose frequency is closest
to the frequency of the (k·η)-th most frequent itemset: if the j-th
most frequent item has frequency ≈ f_{k·η}, then about j items lie at
or above the top-k frequency range.

The exponential mechanism uses quality ``q(D, j) = (1 − |f_itemⱼ −
θ|)·N`` with global sensitivity 1 (adding one transaction moves both
frequencies by at most 1/N *in the same direction*, so their difference
moves by at most 1/N).  The absolute value breaks the one-sided
condition, so the standard ε/2 exponent applies — exactly the
pseudocode's ``e^{(1−|f−θ|)·N·ε/2}``.

The safety margin η (1.1 or 1.2) inflates k before taking θ so that λ
errs on the large side: an overestimate only spreads the item-selection
budget thinner, while an underestimate silently drops top-k itemsets
(paper Section 4.4).
"""

from __future__ import annotations

import math

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.dp.exponential import exponential_mechanism
from repro.dp.rng import RngLike, ensure_rng
from repro.engine.backend import CountingBackend, resolve_backend
from repro.errors import ValidationError


def get_lambda(
    database: TransactionDatabase,
    k: int,
    epsilon: float,
    eta: float = 1.1,
    rng: RngLike = None,
    backend: CountingBackend = None,
) -> int:
    """Sample λ via the exponential mechanism (ε-DP).

    Returns a rank in ``[1, number of items with positive support]``.
    All data access (item frequencies and the θ oracle) goes through
    ``backend``, defaulting to a
    :class:`~repro.engine.bitmap.BitmapBackend` over ``database``.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if not (epsilon > 0):
        raise ValidationError(f"epsilon must be positive, got {epsilon}")
    if eta < 1.0:
        raise ValidationError(f"eta must be >= 1, got {eta}")
    backend = resolve_backend(database, backend)
    generator = ensure_rng(rng)
    n = backend.num_transactions
    if n == 0:
        raise ValidationError("database is empty")

    theta = _kth_itemset_frequency(backend, int(math.ceil(k * eta)))
    frequencies = np.sort(backend.item_frequencies())[::-1]
    # Restrict to ranks of items that actually occur: trailing
    # zero-frequency ranks all share one quality value and would only
    # dilute the selection (they are never the right λ).
    positive = int(np.count_nonzero(frequencies))
    if positive == 0:
        raise ValidationError("database has no non-empty transactions")
    frequencies = frequencies[:positive]

    qualities = (1.0 - np.abs(frequencies - theta)) * n
    index = exponential_mechanism(
        qualities,
        epsilon=epsilon,
        sensitivity=1.0,
        one_sided=False,
        rng=generator,
    )
    return index + 1  # ranks are 1-based


def _kth_itemset_frequency(
    backend: CountingBackend, k_inflated: int
) -> float:
    """θ = frequency of the (k·η)-th most frequent itemset.

    Computed exactly via the backend's (memoized) top-k oracle; its
    data-dependence is accounted for inside the exponential
    mechanism's sensitivity-1 quality function.
    """
    top = backend.top_k(k_inflated)
    if not top:
        return 0.0
    if len(top) < k_inflated:
        return top[-1][1] / backend.num_transactions
    return top[k_inflated - 1][1] / backend.num_transactions
