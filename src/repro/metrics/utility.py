"""Utility metrics for private top-k releases (paper Section 5).

* **False negative rate** — fraction of the exact top-k missing from
  the published result.  For top-k selection it equals the false
  positive rate (every missed true itemset is displaced by a wrong
  one), which the paper notes.
* **Relative error** — the median over published itemsets of
  ``|nf(X) − f(X)| / f(X)``, where ``f`` is the true frequency and
  ``nf`` the published noisy frequency.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Set, Tuple

import numpy as np

from repro.core.result import PrivateFIMResult
from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError
from repro.fim.itemsets import Itemset


def false_negative_rate(
    true_topk: Iterable[Itemset], published: Iterable[Itemset], k: int
) -> float:
    """``FNR = |top-k \\ published| / k`` (paper Section 5).

    ``k`` is the nominal release size: when fewer than ``k`` itemsets
    exist the denominator stays ``k``, matching the paper's formula.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    truth: Set[Itemset] = {tuple(itemset) for itemset in true_topk}
    found: Set[Itemset] = {tuple(itemset) for itemset in published}
    return len(truth - found) / float(k)


def relative_error(
    published_frequencies: Dict[Itemset, float],
    true_frequencies: Dict[Itemset, float],
    floor: float = 0.0,
) -> float:
    """Median of ``|nf(X) − f(X)| / f(X)`` over published itemsets.

    ``floor`` guards the denominator for itemsets whose true frequency
    is (near) zero — possible for the TF baseline, which can publish
    arbitrary low-frequency itemsets.  Pass ``floor = 1/N`` to treat
    absent itemsets as frequency-one-transaction.
    """
    if not published_frequencies:
        return float("nan")
    errors = []
    for itemset, noisy in published_frequencies.items():
        truth = true_frequencies.get(itemset, 0.0)
        denominator = max(truth, floor)
        if denominator <= 0:
            raise ValidationError(
                f"itemset {itemset} has zero true frequency; pass a "
                f"positive floor"
            )
        errors.append(abs(noisy - truth) / denominator)
    return float(np.median(errors))


def evaluate_release(
    result: PrivateFIMResult,
    database: TransactionDatabase,
    true_topk: Sequence[Tuple[Itemset, int]],
) -> Dict[str, float]:
    """FNR and median relative error of one release.

    ``true_topk`` is the exact (itemset, support) list — pass the
    cached oracle output so repeated trials don't re-mine.

    Interpretation note: the relative error is computed over the
    *correctly identified* itemsets (published ∩ exact top-k).  The
    paper says "over all published frequent itemsets"; including false
    positives — whose true frequency can be arbitrarily close to zero —
    would make the median unbounded whenever FNR > 0.5, which
    contradicts the ≤ 0.5 RE values its figures show for TF runs with
    FNR ≈ 0.7.  Restricting to the published itemsets that are actually
    frequent reproduces the figures' scale.  If nothing was correctly
    identified the RE is NaN (plotted as a gap).
    """
    n = float(database.num_transactions)
    truth_sets = [itemset for itemset, _ in true_topk[: result.k]]
    published = result.itemset_set()
    fnr = false_negative_rate(truth_sets, published, result.k)

    truth_lookup = set(truth_sets)
    published_frequencies: Dict[Itemset, float] = {}
    true_frequencies: Dict[Itemset, float] = {}
    for entry in result.itemsets:
        if entry.itemset not in truth_lookup:
            continue
        published_frequencies[entry.itemset] = entry.noisy_frequency
        true_frequencies[entry.itemset] = (
            database.support(entry.itemset) / n
        )
    rel = relative_error(
        published_frequencies, true_frequencies, floor=1.0 / n
    )
    return {"fnr": fnr, "relative_error": rel}
