"""Utility metrics (paper Section 5) plus ranking-quality extensions."""

from repro.metrics.ranking import (
    jaccard_similarity,
    kendall_tau,
    precision_at,
    precision_curve,
    ranking_report,
)
from repro.metrics.utility import (
    evaluate_release,
    false_negative_rate,
    relative_error,
)

__all__ = [
    "evaluate_release",
    "false_negative_rate",
    "jaccard_similarity",
    "kendall_tau",
    "precision_at",
    "precision_curve",
    "ranking_report",
    "relative_error",
]
