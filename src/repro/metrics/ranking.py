"""Ranking-quality metrics beyond the paper's FNR / relative error.

The paper evaluates releases with two numbers (Section 5): the false
negative rate of the published *set* and the median relative error of
the published *frequencies*.  Both ignore ranking: a release that
returns the right k itemsets in scrambled order scores perfectly.
For downstream consumers that read releases top-to-bottom (e.g.
"show the 10 strongest patterns"), order matters; this module adds:

* :func:`precision_at` — fraction of the released top-j that is in
  the true top-j, for a prefix curve;
* :func:`jaccard_similarity` — set overlap of released vs true top-k;
* :func:`kendall_tau` — rank correlation over the common itemsets;
* :func:`ranking_report` — all of the above in one dict.

All metrics are post-processing over a release and the exact top-k
oracle; none touch the raw data.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ValidationError
from repro.fim.itemsets import Itemset


def precision_at(
    released: Sequence[Itemset],
    truth: Sequence[Itemset],
    j: int,
) -> float:
    """Precision of the first ``j`` released itemsets vs the true
    top-``j``.

    Returns NaN when the release has no itemsets at all (nothing to
    score); a release shorter than ``j`` is scored against its actual
    length, penalizing only wrong content, not missing tail.
    """
    if j < 1:
        raise ValidationError(f"j must be >= 1, got {j}")
    head = list(released[:j])
    if not head:
        return float("nan")
    true_head = set(truth[:j])
    hits = sum(1 for itemset in head if itemset in true_head)
    return hits / len(head)


def precision_curve(
    released: Sequence[Itemset],
    truth: Sequence[Itemset],
    points: Sequence[int],
) -> List[Tuple[int, float]]:
    """``(j, precision_at_j)`` for each prefix size in ``points``."""
    return [(j, precision_at(released, truth, j)) for j in points]


def jaccard_similarity(
    released: Sequence[Itemset],
    truth: Sequence[Itemset],
) -> float:
    """|released ∩ truth| / |released ∪ truth| as sets.

    1.0 means identical sets (any order); 0.0 means disjoint.  Both
    empty → 1.0 by convention.
    """
    released_set = set(released)
    truth_set = set(truth)
    union = released_set | truth_set
    if not union:
        return 1.0
    return len(released_set & truth_set) / len(union)


def kendall_tau(
    released: Sequence[Itemset],
    truth: Sequence[Itemset],
) -> float:
    """Kendall rank correlation over the itemsets present in *both*
    rankings.

    τ = (concordant − discordant) / C(n, 2) over the common itemsets,
    comparing their positions in the two rankings.  Returns NaN when
    fewer than 2 itemsets are common (no pairs to compare).  τ = 1
    means the common itemsets appear in identical relative order.
    """
    released_position = {
        itemset: position for position, itemset in enumerate(released)
    }
    truth_position = {
        itemset: position for position, itemset in enumerate(truth)
    }
    common = [
        itemset for itemset in released if itemset in truth_position
    ]
    n = len(common)
    if n < 2:
        return float("nan")
    concordant = 0
    discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            a, b = common[i], common[j]
            released_order = released_position[a] - released_position[b]
            truth_order = truth_position[a] - truth_position[b]
            if released_order * truth_order > 0:
                concordant += 1
            elif released_order * truth_order < 0:
                discordant += 1
    pairs = n * (n - 1) // 2
    return (concordant - discordant) / pairs


def ranking_report(
    released: Sequence[Itemset],
    truth: Sequence[Itemset],
    precision_points: Sequence[int] = (1, 5, 10, 25, 50, 100),
) -> Dict[str, object]:
    """All ranking metrics in one mapping.

    ``precision_points`` beyond the truth length are skipped.
    """
    points = [
        j for j in precision_points if j <= max(len(truth), 1)
    ]
    return {
        "jaccard": jaccard_similarity(released, truth),
        "kendall_tau": kendall_tau(released, truth),
        "precision_curve": precision_curve(released, truth, points),
        "common": len(set(released) & set(truth)),
    }
