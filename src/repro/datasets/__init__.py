"""Transaction-database substrate: data structures, I/O, generators."""

from repro.datasets.fimi import (
    fimi_dumps,
    fimi_loads,
    read_fimi,
    write_fimi,
)
from repro.datasets.generators import (
    aol_like,
    kosarak_like,
    mushroom_like,
    pumsb_star_like,
    retail_like,
)
from repro.datasets.registry import (
    cached_top_k,
    clear_caches,
    dataset_names,
    load_dataset,
)
from repro.datasets.stats import DatasetStats, dataset_stats, topk_size_profile
from repro.datasets.stream import LogSnapshot, TransactionLog
from repro.datasets.synthetic import QuestConfig, generate_quest
from repro.datasets.transactions import (
    Itemset,
    TransactionDatabase,
    canonical_itemset,
)

__all__ = [
    "DatasetStats",
    "Itemset",
    "LogSnapshot",
    "QuestConfig",
    "TransactionDatabase",
    "TransactionLog",
    "aol_like",
    "cached_top_k",
    "canonical_itemset",
    "clear_caches",
    "dataset_names",
    "dataset_stats",
    "fimi_dumps",
    "fimi_loads",
    "generate_quest",
    "kosarak_like",
    "load_dataset",
    "mushroom_like",
    "pumsb_star_like",
    "read_fimi",
    "retail_like",
    "topk_size_profile",
    "write_fimi",
]
