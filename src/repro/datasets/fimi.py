"""Reader/writer for the FIMI transaction format.

The FIMI repository (fimi.ua.ac.be — the paper's dataset source [2])
distributes transaction databases as plain text: one transaction per
line, items as whitespace-separated non-negative integers.  This module
parses and emits that format so locally generated datasets round-trip
and real FIMI files can be dropped in when available.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, List, Optional, TextIO, Union

from repro.datasets.transactions import TransactionDatabase
from repro.errors import DatasetFormatError

PathLike = Union[str, Path]


def parse_item_token(
    token: str,
    line_number: int,
    source: Optional[str] = None,
) -> int:
    """Strictly parse one FIMI item token to a non-negative int.

    Python's ``int()`` is looser than the FIMI grammar: it accepts
    underscore separators (``"1_0"`` → 10), a leading ``"+"``, and
    non-ASCII digits — all of which would *silently change counts* if
    a corrupted file slipped through.  Only plain ASCII digit runs
    are items; everything else is a typed error naming the line.
    """
    if token.isascii() and token.isdigit():
        return int(token)
    if token.startswith("-") and token[1:].isascii() and token[1:].isdigit():
        raise DatasetFormatError(
            f"line {line_number}: negative item id {token}",
            source=source,
            line=line_number,
        )
    raise DatasetFormatError(
        f"line {line_number}: non-integer item {token!r}",
        source=source,
        line=line_number,
    )


def read_fimi(
    source: Union[PathLike, TextIO],
    num_items: Optional[int] = None,
) -> TransactionDatabase:
    """Parse a FIMI ``.dat`` file into a :class:`TransactionDatabase`.

    Parameters
    ----------
    source:
        Path to the file, or an open text stream.
    num_items:
        Optional vocabulary size override (must exceed every item id).

    Raises
    ------
    DatasetFormatError
        On non-integer or negative tokens, with the line number.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _parse_stream(handle, num_items)
    return _parse_stream(source, num_items)


def _parse_stream(
    handle: TextIO, num_items: Optional[int]
) -> TransactionDatabase:
    transactions: List[List[int]] = []
    for line_number, line in enumerate(handle, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        row = [
            parse_item_token(token, line_number)
            for token in stripped.split()
        ]
        transactions.append(row)
    return TransactionDatabase(transactions, num_items=num_items)


def write_fimi(
    database: TransactionDatabase,
    destination: Union[PathLike, TextIO],
) -> None:
    """Write ``database`` in FIMI format (one transaction per line)."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            _write_stream(database, handle)
        return
    _write_stream(database, destination)


def _write_stream(database: TransactionDatabase, handle: TextIO) -> None:
    for transaction in database:
        handle.write(" ".join(str(item) for item in transaction))
        handle.write("\n")


def fimi_dumps(database: TransactionDatabase) -> str:
    """Return the FIMI text representation as a string."""
    buffer = io.StringIO()
    _write_stream(database, buffer)
    return buffer.getvalue()


def fimi_loads(
    text: str, num_items: Optional[int] = None
) -> TransactionDatabase:
    """Parse FIMI text from a string."""
    return _parse_stream(io.StringIO(text), num_items)
