"""Paper-matched synthetic datasets.

The paper evaluates on five public datasets (Table 2(a)): ``retail``,
``mushroom``, ``pumsb-star``, ``kosarak`` (FIMI repository) and an
``AOL`` search-log derivative.  Those files are not available offline,
so this module generates *statistically matched stand-ins*: same number
of transactions, same vocabulary size, same average transaction length,
and — most importantly — the same **top-k structure regime** that
drives the paper's three experimental scenarios:

* ``mushroom_like`` / ``pumsb_star_like`` — dense attribute data, small
  λ (top-k itemsets drawn from ~11–17 highly frequent, highly
  correlated items): the *single basis* scenario.
* ``retail_like`` / ``kosarak_like`` — sparse power-law data with a
  correlated head, moderate λ (20–60): the *several bases* scenario.
* ``aol_like`` — keyword data where the top k is dominated by
  singletons (λ ≈ k, pairs few, no triples): the *many small bases*
  scenario.

Every generator takes a ``scale`` factor multiplying the number of
transactions (frequencies, and hence mining structure, are scale-free;
only the ε·N noise level changes) and is fully deterministic given a
seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.dp.rng import RngLike, ensure_rng
from repro.errors import ValidationError

__all__ = [
    "mushroom_like",
    "pumsb_star_like",
    "retail_like",
    "kosarak_like",
    "aol_like",
]


# ----------------------------------------------------------------------
# Shared building blocks
# ----------------------------------------------------------------------
def _scaled_count(base: int, scale: float) -> int:
    if scale <= 0:
        raise ValidationError(f"scale must be positive, got {scale}")
    return max(1, int(round(base * scale)))


def _zipf_popularity(
    vocabulary: int, exponent: float, shift: float = 2.0
) -> np.ndarray:
    """Zipf–Mandelbrot probabilities ``p_r ∝ 1/(r + shift)^exponent``."""
    ranks = np.arange(vocabulary, dtype=float)
    weights = 1.0 / np.power(ranks + shift, exponent)
    return weights / weights.sum()


def _sample_tail_lists(
    generator: np.random.Generator,
    num_transactions: int,
    mean_extra: float,
    popularity: np.ndarray,
    offset: int,
) -> List[np.ndarray]:
    """Per-transaction tail items drawn from a popularity distribution.

    Counts are Poisson(``mean_extra``); items are drawn with
    replacement and de-duplicated later (set semantics of
    transactions).  ``offset`` shifts drawn ranks into the global item
    id space.
    """
    counts = generator.poisson(mean_extra, size=num_transactions)
    total = int(counts.sum())
    if total == 0:
        return [np.empty(0, dtype=np.int64)] * num_transactions
    draws = generator.choice(
        popularity.size, size=total, p=popularity
    ).astype(np.int64)
    draws += offset
    boundaries = np.cumsum(counts)[:-1]
    return [chunk for chunk in np.split(draws, boundaries)]


def _head_inclusion_matrix(
    generator: np.random.Generator,
    classes: np.ndarray,
    class_probs_matrix: np.ndarray,
) -> np.ndarray:
    """Bernoulli head-item inclusion conditioned on a latent class.

    ``class_probs_matrix[c, j]`` is the probability that a transaction
    of class ``c`` contains head item ``j``.  Returns a bool matrix of
    shape (num_transactions, num_head_items).
    """
    probs = class_probs_matrix[classes]
    return generator.random(probs.shape) < probs


def _assemble(
    head_matrix: Optional[np.ndarray],
    head_items: Sequence[int],
    tail_lists: Optional[List[np.ndarray]],
    num_transactions: int,
) -> List[np.ndarray]:
    """Merge head-inclusion flags and tail draws into sorted unique rows.

    Fully vectorized: builds one global (tid, item) pair list, lexsorts
    it, drops duplicates, and splits at transaction boundaries —
    O(total items · log) instead of a Python loop over transactions.
    """
    tid_chunks: List[np.ndarray] = []
    item_chunks: List[np.ndarray] = []
    if head_matrix is not None:
        head_items_array = np.asarray(head_items, dtype=np.int64)
        tids, columns = np.nonzero(head_matrix)
        tid_chunks.append(tids.astype(np.int64))
        item_chunks.append(head_items_array[columns])
    if tail_lists is not None:
        lengths = np.array(
            [chunk.size for chunk in tail_lists], dtype=np.int64
        )
        if lengths.sum():
            tid_chunks.append(
                np.repeat(np.arange(num_transactions, dtype=np.int64),
                          lengths)
            )
            item_chunks.append(
                np.concatenate(
                    [chunk for chunk in tail_lists if chunk.size]
                ).astype(np.int64)
            )
    if not tid_chunks:
        return [np.empty(0, dtype=np.int64)] * num_transactions

    all_tids = np.concatenate(tid_chunks)
    all_items = np.concatenate(item_chunks)
    order = np.lexsort((all_items, all_tids))
    all_tids = all_tids[order]
    all_items = all_items[order]
    keep = np.ones(all_tids.size, dtype=bool)
    keep[1:] = (all_tids[1:] != all_tids[:-1]) | (
        all_items[1:] != all_items[:-1]
    )
    all_tids = all_tids[keep]
    all_items = all_items[keep]
    boundaries = np.searchsorted(
        all_tids, np.arange(num_transactions + 1, dtype=np.int64)
    )
    return [
        all_items[boundaries[tid]:boundaries[tid + 1]]
        for tid in range(num_transactions)
    ]


def _categorical_attribute_rows(
    generator: np.random.Generator,
    classes: np.ndarray,
    value_probs: Dict[int, np.ndarray],
    base_offset: int,
) -> np.ndarray:
    """Sample one value of a categorical attribute per transaction.

    ``value_probs[c]`` is the class-``c`` distribution over the
    attribute's values; the returned item ids live in
    ``[base_offset, base_offset + num_values)``.
    """
    result = np.empty(classes.size, dtype=np.int64)
    for class_id, probs in value_probs.items():
        members = np.flatnonzero(classes == class_id)
        if members.size:
            result[members] = generator.choice(
                probs.size, size=members.size, p=probs
            )
    return result + base_offset


# ----------------------------------------------------------------------
# Dense attribute datasets (small λ → single-basis scenario)
# ----------------------------------------------------------------------
def mushroom_like(
    scale: float = 1.0, rng: RngLike = 2012
) -> TransactionDatabase:
    """Mushroom stand-in: 8124 transactions, 119 items, |t| = 23.

    Models 23 categorical attributes (as in the UCI mushroom data: 22
    physical attributes + class), one value per attribute per record.
    About a dozen attribute values are near-constant and correlated
    through a binary latent class, which concentrates the top-100
    itemsets on ≈ 11 items (Table 2(a): λ = 11) with f_k ≈ 0.55.
    """
    generator = ensure_rng(rng)
    num_transactions = _scaled_count(8124, scale)

    # (dominant-value probability for class 0, for class 1, #values)
    attribute_specs: List[Tuple[float, float, int]] = [
        (0.998, 0.990, 2),   # veil-type-like: nearly constant
        (0.990, 0.960, 4),
        (0.985, 0.930, 4),
        (0.960, 0.870, 6),
        (0.950, 0.820, 5),
        (0.930, 0.740, 6),
        (0.900, 0.640, 6),
        (0.880, 0.600, 6),
        (0.860, 0.520, 6),
        (0.820, 0.480, 6),
        (0.780, 0.440, 6),
        (0.720, 0.360, 6),
        (0.420, 0.120, 5),
        (0.360, 0.100, 5),
        (0.300, 0.120, 5),
        (0.280, 0.100, 6),
        (0.240, 0.080, 5),
        (0.220, 0.100, 5),
        (0.200, 0.080, 5),
        (0.180, 0.070, 5),
        (0.160, 0.060, 5),
        (0.150, 0.060, 5),
        (0.140, 0.050, 5),
    ]
    total_values = sum(spec[2] for spec in attribute_specs)
    if total_values != 119:
        raise AssertionError(
            f"mushroom attribute specs cover {total_values} values, "
            f"expected 119"
        )

    classes = (generator.random(num_transactions) < 0.48).astype(np.int64)
    columns: List[np.ndarray] = []
    base = 0
    for dominant0, dominant1, num_values in attribute_specs:
        value_probs = {
            0: _dominant_distribution(dominant0, num_values),
            1: _dominant_distribution(dominant1, num_values),
        }
        columns.append(
            _categorical_attribute_rows(generator, classes, value_probs, base)
        )
        base += num_values

    matrix = np.sort(np.stack(columns, axis=1), axis=1)
    return TransactionDatabase.from_sorted_rows(list(matrix), num_items=119)


def _dominant_distribution(dominant: float, num_values: int) -> np.ndarray:
    """Categorical distribution with one dominant value.

    Value 0 gets probability ``dominant``; the rest share the remainder
    geometrically (ratio 0.6), mimicking skewed attribute marginals.
    """
    if num_values == 1:
        return np.array([1.0])
    rest = np.power(0.6, np.arange(num_values - 1, dtype=float))
    rest = rest / rest.sum() * (1.0 - dominant)
    return np.concatenate([[dominant], rest])


def pumsb_star_like(
    scale: float = 1.0, rng: RngLike = 2012
) -> TransactionDatabase:
    """Pumsb-star stand-in: 49046 transactions, 2088 items, |t| = 50.

    Census-style records: 50 categorical attributes over 2088 values.
    Pumsb-star is famous for very long frequent patterns; the paper's
    profile at k = 200 (λ = 17, λ₂ = 31, λ₃ = 50, ≈ 100 itemsets of
    size ≥ 4, f_k ≈ 0.58) implies a tight block of ~8 attribute values
    that co-occur almost deterministically, plus ~9 further frequent
    singletons.  We model exactly that: a binary latent "block" class
    (P = 0.60) inside which the 8 block values appear with probability
    0.98 each, plus 9 moderately dominant values, plus 33 flat filler
    attributes.
    """
    generator = ensure_rng(rng)
    num_transactions = _scaled_count(49046, scale)

    num_attributes = 50
    block_size = 8
    moderate_dominants = np.linspace(0.72, 0.585, 9)
    block_active = generator.random(num_transactions) < 0.60
    classes = block_active.astype(np.int64)  # 1 = block active

    columns: List[np.ndarray] = []
    base = 0
    values_per_attribute = _spread_values(2088, num_attributes, generator)
    for attribute in range(num_attributes):
        num_values = values_per_attribute[attribute]
        if attribute < block_size:
            value_probs = {
                1: _dominant_distribution(0.98, num_values),
                0: _dominant_distribution(0.33, num_values),
            }
        elif attribute < block_size + moderate_dominants.size:
            dominant = moderate_dominants[attribute - block_size]
            value_probs = {
                1: _dominant_distribution(
                    min(0.99, dominant * 1.06), num_values
                ),
                0: _dominant_distribution(dominant * 0.91, num_values),
            }
        else:
            flat = _dominant_distribution(
                min(0.5, 3.0 / num_values), num_values
            )
            value_probs = {0: flat, 1: flat}
        columns.append(
            _categorical_attribute_rows(generator, classes, value_probs, base)
        )
        base += num_values

    matrix = np.sort(np.stack(columns, axis=1), axis=1)
    return TransactionDatabase.from_sorted_rows(list(matrix), num_items=2088)


def _spread_values(
    total_values: int, num_attributes: int, generator: np.random.Generator
) -> List[int]:
    """Split ``total_values`` across attributes (min 2 values each).

    Deterministic given the generator state; later attributes get the
    bulk of the vocabulary, as in census microdata where a few fields
    (occupation, ancestry, …) have hundreds of codes.
    """
    base = [2] * num_attributes
    remaining = total_values - 2 * num_attributes
    weights = np.power(
        np.linspace(0.2, 3.0, num_attributes), 2.0
    )
    shares = np.floor(weights / weights.sum() * remaining).astype(int)
    leftover = remaining - int(shares.sum())
    for index in range(leftover):
        shares[num_attributes - 1 - (index % num_attributes)] += 1
    return [int(b + s) for b, s in zip(base, shares)]


# ----------------------------------------------------------------------
# Sparse power-law datasets (moderate λ → several-bases scenario)
# ----------------------------------------------------------------------
def retail_like(
    scale: float = 1.0, rng: RngLike = 2012
) -> TransactionDatabase:
    """Retail stand-in: 88162 baskets over 16470 items, avg |t| ≈ 11.3.

    Head: ~48 items with power-law marginal frequencies (top item
    ≈ 0.57, as in the Belgian retail data) included independently —
    which already yields the paper's λ ≈ 38, λ₂ ≈ 37, λ₃ ≈ 21 profile
    at k = 100 because products of the biggest marginals clear
    f_k ≈ 0.0135.  A mild session-type mixture adds the correlation
    structure real baskets show.  Tail: Zipf over the remaining
    vocabulary to reach the target basket size.
    """
    generator = ensure_rng(rng)
    num_transactions = _scaled_count(88162, scale)

    head_size = 48
    ranks = np.arange(head_size, dtype=float)
    head_freqs = 0.57 / np.power(ranks + 1.0, 1.15)
    head_freqs = np.clip(head_freqs, 0.012, None)

    # Two basket types modulate inclusion (weak correlation).
    class_probs_matrix = np.stack(
        [head_freqs * 1.25, head_freqs * 0.75]
    )
    class_probs_matrix = np.clip(class_probs_matrix, 0.0, 0.98)
    classes = (generator.random(num_transactions) < 0.5).astype(np.int64)
    head_matrix = _head_inclusion_matrix(
        generator, classes, class_probs_matrix
    )

    expected_head = float(np.mean(class_probs_matrix.sum(axis=1)))
    tail_mean = max(0.5, 11.3 - expected_head)
    tail_popularity = _zipf_popularity(16470 - head_size, 1.05)
    tail_lists = _sample_tail_lists(
        generator, num_transactions, tail_mean, tail_popularity, head_size
    )
    rows = _assemble(
        head_matrix, list(range(head_size)), tail_lists, num_transactions
    )
    return TransactionDatabase.from_sorted_rows(rows, num_items=16470)


def kosarak_like(
    scale: float = 1.0, rng: RngLike = 2012
) -> TransactionDatabase:
    """Kosarak stand-in: 990002 click-streams, 41270 items, avg |t| ≈ 8.

    Clickstream with a strongly correlated hub core: a handful of pages
    (news front page, login, …) have frequencies 0.1–0.6 and co-occur
    within sessions, so the top-200 contains many pairs and triples of
    hub pages (Table 2(a): λ = 39, λ₂ = 84, λ₃ = 58) with
    f_k ≈ 0.014.  Five session types drive the correlation.
    """
    generator = ensure_rng(rng)
    num_transactions = _scaled_count(990002, scale)

    head_size = 60
    ranks = np.arange(head_size, dtype=float)
    base_freqs = 0.62 / np.power(ranks + 1.0, 1.25)
    base_freqs = np.clip(base_freqs, 0.009, None)

    # Session types: each boosts an overlapping slice of hub pages,
    # creating frequent pairs/triples inside each slice.
    num_classes = 5
    class_probs_matrix = np.tile(base_freqs * 0.45, (num_classes, 1))
    slice_size = 14
    for class_id in range(num_classes):
        start = class_id * 9
        stop = min(head_size, start + slice_size)
        class_probs_matrix[class_id, start:stop] = np.clip(
            base_freqs[start:stop] * 2.6, 0.0, 0.97
        )
    classes = generator.choice(
        num_classes,
        size=num_transactions,
        p=[0.34, 0.24, 0.18, 0.14, 0.10],
    )
    head_matrix = _head_inclusion_matrix(
        generator, classes, class_probs_matrix
    )

    class_means = class_probs_matrix.sum(axis=1)
    expected_head = float(
        np.dot([0.34, 0.24, 0.18, 0.14, 0.10], class_means)
    )
    tail_mean = max(0.5, 8.1 - expected_head)
    tail_popularity = _zipf_popularity(41270 - head_size, 1.35)
    tail_lists = _sample_tail_lists(
        generator, num_transactions, tail_mean, tail_popularity, head_size
    )
    rows = _assemble(
        head_matrix, list(range(head_size)), tail_lists, num_transactions
    )
    return TransactionDatabase.from_sorted_rows(rows, num_items=41270)


# ----------------------------------------------------------------------
# Keyword dataset (λ ≈ k → many-small-bases scenario)
# ----------------------------------------------------------------------
def aol_like(
    scale: float = 1.0,
    vocabulary: int = 200_000,
    rng: RngLike = 2012,
) -> TransactionDatabase:
    """AOL stand-in: 647377 users' keyword sets, avg |t| ≈ 34.

    Search keywords follow a heavy-tailed popularity law; co-occurrence
    above the top-k threshold is limited to ~30 strong bigrams ("new
    york"-style), so the top 200 itemsets are ≈ 171 singletons plus
    ≈ 29 pairs and no triples (Table 2(a): λ = 171, λ₂ = 29, λ₃ = 0).

    The paper's vocabulary is 2.29M keywords; we default to 200k —
    the algorithms only interact with the head of the distribution,
    and 200k keeps memory modest.  Pass ``vocabulary=2_290_685`` for
    the paper-exact value.
    """
    generator = ensure_rng(rng)
    num_transactions = _scaled_count(647377, scale)

    # Real keyword marginals are *flat* (top keyword ≈ 0.11, 200th
    # ≈ 0.018): with independent inclusion, products of any two
    # marginals then fall below the top-k threshold, which is what
    # keeps the AOL top-200 singleton-dominated.
    head_size = 230
    head_freqs = np.linspace(0.11, 0.016, head_size)
    class_probs_matrix = head_freqs[np.newaxis, :]
    classes = np.zeros(num_transactions, dtype=np.int64)
    head_matrix = _head_inclusion_matrix(
        generator, classes, class_probs_matrix
    )

    # Plant ~30 strong bigrams among mid-ranked keywords ("new york"
    # style): when the anchor occurs, its partner joins with high
    # probability, lifting exactly these pairs above the threshold.
    num_bigrams = 30
    anchors = np.arange(10, 10 + num_bigrams)
    partners = np.arange(60, 60 + num_bigrams)
    for anchor, partner in zip(anchors, partners):
        joined = head_matrix[:, anchor] & (
            generator.random(num_transactions) < 0.62
        )
        head_matrix[:, partner] |= joined

    expected_head = float(head_matrix.sum() / num_transactions)
    tail_mean = max(0.5, 34.0 - expected_head)
    # Large Mandelbrot shift flattens the tail so no tail keyword
    # climbs above the head (tail max frequency ≈ 0.003 ≪ 0.016).
    tail_popularity = _zipf_popularity(
        vocabulary - head_size, 1.10, shift=800.0
    )
    tail_lists = _sample_tail_lists(
        generator, num_transactions, tail_mean, tail_popularity, head_size
    )
    rows = _assemble(
        head_matrix, list(range(head_size)), tail_lists, num_transactions
    )
    return TransactionDatabase.from_sorted_rows(rows, num_items=vocabulary)
