"""Named dataset registry with per-process caching.

Experiments refer to datasets by the paper's names (``mushroom``,
``retail``, …).  The registry maps those names to the matched
generators, applies the benchmark scale policy, and caches built
databases (and their exact top-k mining results) so repeated trials do
not regenerate them.

Scale policy: the two biggest datasets (``kosarak``, ``aol``) default
to a 1/4-scale quick build so the full experiment grid runs in minutes;
setting the environment variable ``REPRO_FULL_SCALE=1`` (or passing
``full_scale=True``) builds paper-exact sizes.  Frequencies — and hence
all mining structure — are unchanged by scale; only the ε·N noise level
moves, which EXPERIMENTS.md accounts for.
"""

from __future__ import annotations

import os
import tempfile
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.datasets.generators import (
    aol_like,
    kosarak_like,
    mushroom_like,
    pumsb_star_like,
    retail_like,
)
from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError
from repro.fim.topk import TopKResult, top_k_itemsets

#: name -> (generator, quick_scale)
_GENERATORS: Dict[str, Tuple[Callable[..., TransactionDatabase], float]] = {
    "mushroom": (mushroom_like, 1.0),
    "pumsb_star": (pumsb_star_like, 1.0),
    "retail": (retail_like, 1.0),
    "kosarak": (kosarak_like, 0.25),
    "aol": (aol_like, 0.25),
}

_DATABASE_CACHE: Dict[Tuple[str, float, int], TransactionDatabase] = {}
#: Top-k memo: key includes ``id(database)``, so each entry also holds
#: a weak reference to the database it was mined from — ids are reused
#: after garbage collection, and a stale hit would silently return
#: another database's itemsets.  The weakref validates the key without
#: pinning transient databases alive.
_TOPK_CACHE: Dict[
    Tuple[int, int, Optional[int]],
    Tuple["weakref.ref[TransactionDatabase]", TopKResult],
] = {}

#: Entry bound; beyond it the memo is dropped wholesale (real
#: workloads touch a handful of (database, k) combinations, so
#: eviction policy does not matter — boundedness does).
_TOPK_CACHE_LIMIT = 256


@dataclass(frozen=True)
class TierSpec:
    """One disk-backed synthetic size tier (``tier-tiny`` …).

    Tiers exist to exercise the out-of-core data plane at controlled
    scales: each is generated **to disk** (gzip FIMI, atomic write) on
    first use by the vectorized sampler in
    :mod:`repro.datasets.chunked`, then always loaded back through the
    chunked reader — the load path is the same streaming code the
    benchmarks measure, not a shortcut.
    """

    name: str
    num_transactions: int
    num_items: int
    avg_items: float
    seed: int

    def chunks(self, chunk_size: Optional[int] = None):
        """The tier's deterministic synthetic chunk stream."""
        from repro.datasets.chunked import (
            DEFAULT_CHUNK_SIZE,
            synthesize_tier_chunks,
        )

        return synthesize_tier_chunks(
            self.num_transactions,
            self.num_items,
            self.avg_items,
            self.seed,
            chunk_size=chunk_size or DEFAULT_CHUNK_SIZE,
        )


#: The out-of-core benchmark tiers, smallest to largest.  ``large`` is
#: sized so its CSR representation (~40 MB of int64 payload) dwarfs
#: the default bench memory budget but generates in seconds.
TIERS: Dict[str, TierSpec] = {
    "tier-tiny": TierSpec("tier-tiny", 2_000, 200, 8.0, 11),
    "tier-small": TierSpec("tier-small", 60_000, 1_000, 10.0, 12),
    "tier-large": TierSpec("tier-large", 400_000, 4_000, 12.0, 13),
}


def dataset_names() -> List[str]:
    """The five paper dataset names, in Table 2(a) order."""
    return ["retail", "mushroom", "pumsb_star", "kosarak", "aol"]


def tier_names() -> List[str]:
    """The disk-backed size-tier names, smallest first."""
    return list(TIERS)


def registered_names() -> List[str]:
    """Every name :func:`load_dataset` resolves (datasets + tiers)."""
    return dataset_names() + tier_names()


def tier_data_dir() -> Path:
    """Where generated tier files live.

    ``REPRO_TIER_DIR`` overrides; the default is a stable path under
    the system temp dir so repeated runs (and cluster workers on one
    host) share one copy per tier.
    """
    override = os.environ.get("REPRO_TIER_DIR", "").strip()
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / "repro-tiers"


def ensure_tier_file(
    name: str, data_dir: Optional[Path] = None
) -> Path:
    """Generate tier ``name`` to disk if missing; return its path.

    Generation streams chunk-by-chunk through an atomic tmp+rename
    write, so a crash mid-generation cannot leave a truncated file
    that a later run would load.
    """
    key = name.strip().lower().replace("_", "-")
    if key not in TIERS:
        raise ValidationError(
            f"unknown tier {name!r}; available: {tier_names()}"
        )
    spec = TIERS[key]
    directory = Path(data_dir) if data_dir is not None else tier_data_dir()
    path = directory / f"{spec.name}-seed{spec.seed}.dat.gz"
    if not path.exists():
        from repro.datasets.chunked import write_tier_file

        write_tier_file(path, spec.chunks())
    return path


def dataset_chunks(
    name: str,
    chunk_size: Optional[int] = None,
    seed: int = 2012,
) -> Tuple[int, Iterator["object"]]:
    """``(num_items, chunk iterator)`` for any registered name.

    Tier names stream straight from their on-disk gzip-FIMI file
    (bounded memory); classic dataset names materialize through
    :func:`load_dataset` first and are then re-sliced — they predate
    the out-of-core plane and fit in RAM by construction.
    """
    from repro.datasets.chunked import (
        DEFAULT_CHUNK_SIZE,
        TransactionChunk,
        iter_transaction_chunks,
    )

    size = chunk_size or DEFAULT_CHUNK_SIZE
    key = name.strip().lower().replace("_", "-")
    if key in TIERS:
        spec = TIERS[key]
        path = ensure_tier_file(key)
        return spec.num_items, iter_transaction_chunks(
            path, chunk_size=size, num_items=spec.num_items
        )
    database = load_dataset(name, seed=seed)

    def _slices() -> Iterator[TransactionChunk]:
        for start in range(0, database.num_transactions, size):
            window = database.rows[start:start + size]
            max_item = max(
                (int(row[-1]) for row in window if row.size), default=-1
            )
            yield TransactionChunk(start, tuple(window), max_item)

    return database.num_items, _slices()


def full_scale_enabled() -> bool:
    """True when the ``REPRO_FULL_SCALE`` environment flag is set."""
    return os.environ.get("REPRO_FULL_SCALE", "").strip() in {
        "1",
        "true",
        "yes",
    }


def load_dataset(
    name: str,
    scale: Optional[float] = None,
    seed: int = 2012,
    full_scale: Optional[bool] = None,
) -> TransactionDatabase:
    """Build (or fetch from cache) a named dataset.

    Parameters
    ----------
    name:
        One of :func:`dataset_names`.
    scale:
        Explicit transaction-count multiplier; overrides the policy.
    seed:
        Generator seed (datasets are deterministic given it).
    full_scale:
        Force paper-exact sizes; defaults to the environment flag.
    """
    tier_key = name.strip().lower().replace("_", "-")
    if tier_key in TIERS:
        # Tiers ignore the scale policy: their whole point is a fixed,
        # named size.  The load still goes through the strict chunked
        # reader so the memory and mmap planes parse identical bytes.
        spec = TIERS[tier_key]
        cache_key = (tier_key, 1.0, spec.seed)
        cached = _DATABASE_CACHE.get(cache_key)
        if cached is None:
            from repro.datasets.chunked import load_chunked

            cached = load_chunked(
                ensure_tier_file(tier_key), num_items=spec.num_items
            )
            _DATABASE_CACHE[cache_key] = cached
        return cached
    key = name.strip().lower().replace("-", "_")
    if key not in _GENERATORS:
        raise ValidationError(
            f"unknown dataset {name!r}; available: {registered_names()}"
        )
    generator, quick_scale = _GENERATORS[key]
    if scale is None:
        use_full = (
            full_scale if full_scale is not None else full_scale_enabled()
        )
        scale = 1.0 if use_full else quick_scale
    cache_key = (key, float(scale), int(seed))
    cached = _DATABASE_CACHE.get(cache_key)
    if cached is None:
        cached = generator(scale=scale, rng=seed)
        _DATABASE_CACHE[cache_key] = cached
    return cached


def cached_top_k(
    database: TransactionDatabase,
    k: int,
    max_length: Optional[int] = None,
) -> TopKResult:
    """Exact top-k with memoization keyed on database identity.

    Ground truth is needed repeatedly (once per trial per metric).
    The cache keys on ``id(database)`` and each entry weakly
    references its database: a hit counts only if the entry's
    database is *the same object*, guarding against id reuse after
    garbage collection (transient databases would otherwise be served
    another dataset's itemsets).
    """
    key = (id(database), int(k), max_length)
    entry = _TOPK_CACHE.get(key)
    if entry is not None and entry[0]() is database:
        return entry[1]
    result = top_k_itemsets(database, k, max_length=max_length)
    if len(_TOPK_CACHE) >= _TOPK_CACHE_LIMIT:
        _TOPK_CACHE.clear()
    _TOPK_CACHE[key] = (weakref.ref(database), result)
    return result


def clear_caches() -> None:
    """Drop all cached databases and mining results (tests use this)."""
    _DATABASE_CACHE.clear()
    _TOPK_CACHE.clear()
