"""Named dataset registry with per-process caching.

Experiments refer to datasets by the paper's names (``mushroom``,
``retail``, …).  The registry maps those names to the matched
generators, applies the benchmark scale policy, and caches built
databases (and their exact top-k mining results) so repeated trials do
not regenerate them.

Scale policy: the two biggest datasets (``kosarak``, ``aol``) default
to a 1/4-scale quick build so the full experiment grid runs in minutes;
setting the environment variable ``REPRO_FULL_SCALE=1`` (or passing
``full_scale=True``) builds paper-exact sizes.  Frequencies — and hence
all mining structure — are unchanged by scale; only the ε·N noise level
moves, which EXPERIMENTS.md accounts for.
"""

from __future__ import annotations

import os
import weakref
from typing import Callable, Dict, List, Optional, Tuple

from repro.datasets.generators import (
    aol_like,
    kosarak_like,
    mushroom_like,
    pumsb_star_like,
    retail_like,
)
from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError
from repro.fim.topk import TopKResult, top_k_itemsets

#: name -> (generator, quick_scale)
_GENERATORS: Dict[str, Tuple[Callable[..., TransactionDatabase], float]] = {
    "mushroom": (mushroom_like, 1.0),
    "pumsb_star": (pumsb_star_like, 1.0),
    "retail": (retail_like, 1.0),
    "kosarak": (kosarak_like, 0.25),
    "aol": (aol_like, 0.25),
}

_DATABASE_CACHE: Dict[Tuple[str, float, int], TransactionDatabase] = {}
#: Top-k memo: key includes ``id(database)``, so each entry also holds
#: a weak reference to the database it was mined from — ids are reused
#: after garbage collection, and a stale hit would silently return
#: another database's itemsets.  The weakref validates the key without
#: pinning transient databases alive.
_TOPK_CACHE: Dict[
    Tuple[int, int, Optional[int]],
    Tuple["weakref.ref[TransactionDatabase]", TopKResult],
] = {}

#: Entry bound; beyond it the memo is dropped wholesale (real
#: workloads touch a handful of (database, k) combinations, so
#: eviction policy does not matter — boundedness does).
_TOPK_CACHE_LIMIT = 256


def dataset_names() -> List[str]:
    """The five paper dataset names, in Table 2(a) order."""
    return ["retail", "mushroom", "pumsb_star", "kosarak", "aol"]


def full_scale_enabled() -> bool:
    """True when the ``REPRO_FULL_SCALE`` environment flag is set."""
    return os.environ.get("REPRO_FULL_SCALE", "").strip() in {
        "1",
        "true",
        "yes",
    }


def load_dataset(
    name: str,
    scale: Optional[float] = None,
    seed: int = 2012,
    full_scale: Optional[bool] = None,
) -> TransactionDatabase:
    """Build (or fetch from cache) a named dataset.

    Parameters
    ----------
    name:
        One of :func:`dataset_names`.
    scale:
        Explicit transaction-count multiplier; overrides the policy.
    seed:
        Generator seed (datasets are deterministic given it).
    full_scale:
        Force paper-exact sizes; defaults to the environment flag.
    """
    key = name.strip().lower().replace("-", "_")
    if key not in _GENERATORS:
        raise ValidationError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        )
    generator, quick_scale = _GENERATORS[key]
    if scale is None:
        use_full = (
            full_scale if full_scale is not None else full_scale_enabled()
        )
        scale = 1.0 if use_full else quick_scale
    cache_key = (key, float(scale), int(seed))
    cached = _DATABASE_CACHE.get(cache_key)
    if cached is None:
        cached = generator(scale=scale, rng=seed)
        _DATABASE_CACHE[cache_key] = cached
    return cached


def cached_top_k(
    database: TransactionDatabase,
    k: int,
    max_length: Optional[int] = None,
) -> TopKResult:
    """Exact top-k with memoization keyed on database identity.

    Ground truth is needed repeatedly (once per trial per metric).
    The cache keys on ``id(database)`` and each entry weakly
    references its database: a hit counts only if the entry's
    database is *the same object*, guarding against id reuse after
    garbage collection (transient databases would otherwise be served
    another dataset's itemsets).
    """
    key = (id(database), int(k), max_length)
    entry = _TOPK_CACHE.get(key)
    if entry is not None and entry[0]() is database:
        return entry[1]
    result = top_k_itemsets(database, k, max_length=max_length)
    if len(_TOPK_CACHE) >= _TOPK_CACHE_LIMIT:
        _TOPK_CACHE.clear()
    _TOPK_CACHE[key] = (weakref.ref(database), result)
    return result


def clear_caches() -> None:
    """Drop all cached databases and mining results (tests use this)."""
    _DATABASE_CACHE.clear()
    _TOPK_CACHE.clear()
