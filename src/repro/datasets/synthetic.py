"""IBM Quest-style synthetic transaction generator.

The classical generator of Agrawal & Srikant (VLDB 1994, the paper's
reference [5]) used to produce the ``T..I..D..`` benchmark families:
a pool of *potential patterns* (correlated itemsets with exponential
weights) is sampled into transactions of Poisson-distributed length,
with per-pattern corruption.  It is the standard way to synthesize
market-basket data with planted frequent-itemset structure and is used
here both directly (tests, examples) and as the template for the
paper-matched generators in :mod:`repro.datasets.generators`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.dp.rng import RngLike, ensure_rng
from repro.errors import ValidationError


@dataclass(frozen=True)
class QuestConfig:
    """Parameters of the Quest generator (names follow the 1994 paper).

    Attributes
    ----------
    num_transactions:
        ``|D|`` — number of transactions to generate.
    num_items:
        ``N`` — size of the item vocabulary.
    avg_transaction_length:
        ``|T|`` — mean transaction size (Poisson).
    avg_pattern_length:
        ``|I|`` — mean size of potential patterns (Poisson, min 1).
    num_patterns:
        ``|L|`` — number of potential patterns in the pool.
    correlation:
        Fraction of each pattern's items drawn from its predecessor
        (0.5 in the original paper).
    corruption_mean:
        Mean of the per-pattern corruption level (items dropped when a
        pattern is placed into a transaction); 0.5 in the original.
    """

    num_transactions: int
    num_items: int
    avg_transaction_length: float = 10.0
    avg_pattern_length: float = 4.0
    num_patterns: int = 100
    correlation: float = 0.5
    corruption_mean: float = 0.5

    def validate(self) -> None:
        if self.num_transactions < 0:
            raise ValidationError("num_transactions must be >= 0")
        if self.num_items < 1:
            raise ValidationError("num_items must be >= 1")
        if self.avg_transaction_length <= 0:
            raise ValidationError("avg_transaction_length must be > 0")
        if self.avg_pattern_length <= 0:
            raise ValidationError("avg_pattern_length must be > 0")
        if self.num_patterns < 1:
            raise ValidationError("num_patterns must be >= 1")
        if not 0 <= self.correlation <= 1:
            raise ValidationError("correlation must be in [0, 1]")
        if not 0 <= self.corruption_mean < 1:
            raise ValidationError("corruption_mean must be in [0, 1)")


def generate_quest(
    config: QuestConfig, rng: RngLike = None
) -> TransactionDatabase:
    """Generate a :class:`TransactionDatabase` per ``config``."""
    config.validate()
    generator = ensure_rng(rng)

    patterns = _potential_patterns(config, generator)
    weights = generator.exponential(size=len(patterns))
    weights /= weights.sum()
    corruption = np.clip(
        generator.normal(config.corruption_mean, 0.1, size=len(patterns)),
        0.0,
        0.95,
    )

    transactions: List[List[int]] = []
    for _ in range(config.num_transactions):
        target_length = max(
            1, int(generator.poisson(config.avg_transaction_length))
        )
        transaction: set = set()
        # Guard against pathological configs where patterns cannot fill
        # the transaction (e.g. all-empty after corruption).
        attempts = 0
        while len(transaction) < target_length and attempts < 10 * (
            target_length + 1
        ):
            attempts += 1
            pattern_index = int(
                generator.choice(len(patterns), p=weights)
            )
            pattern = patterns[pattern_index]
            keep = generator.random(len(pattern)) >= corruption[
                pattern_index
            ]
            chosen = [
                item for item, kept in zip(pattern, keep) if kept
            ]
            if not chosen:
                continue
            overshoot = (
                len(transaction) + len(chosen) > 1.5 * target_length
            )
            if overshoot and generator.random() < 0.5:
                # The original generator keeps an overflowing pattern
                # in half the cases and otherwise defers it.
                continue
            transaction.update(chosen)
        if not transaction:
            transaction.add(int(generator.integers(config.num_items)))
        transactions.append(sorted(transaction))
    return TransactionDatabase(
        transactions, num_items=config.num_items
    )


#: The importable spec for :func:`quest_loader` — hand this to
#: :class:`~repro.service.cluster.ClusterConfig` as ``loader_spec``.
QUEST_LOADER_SPEC = "repro.datasets.synthetic:quest_loader"


def quest_loader(name: str):
    """A name-parameterized dataset loader for clusters and benchmarks.

    Accepts *any* dataset name (``"quest/0"``, ``"soak/17"``, …) and
    generates a small Quest database whose seed is derived from the
    name, so every process that loads the same name — e.g. the
    cluster's worker processes, or a worker restarted after a crash —
    builds a byte-identical database and therefore identical exact
    counting state.  Deliberately small (a few hundred transactions)
    so cold builds stay cheap under fault-injection churn.

    Module-level and addressed by :data:`QUEST_LOADER_SPEC` so
    ``spawn``-started workers can import it
    (:func:`repro.service.cluster.resolve_loader_spec`).
    """
    digest = hashlib.blake2b(
        str(name).encode("utf-8"), digest_size=8
    ).digest()
    seed = int.from_bytes(digest, "big")
    config = QuestConfig(
        num_transactions=240,
        num_items=48,
        avg_transaction_length=6.0,
        avg_pattern_length=3.0,
        num_patterns=24,
    )
    return generate_quest(config, rng=np.random.default_rng(seed))


def _potential_patterns(
    config: QuestConfig, generator: np.random.Generator
) -> List[List[int]]:
    """The pool of correlated potential patterns."""
    patterns: List[List[int]] = []
    previous: List[int] = []
    for _ in range(config.num_patterns):
        size = max(1, int(generator.poisson(config.avg_pattern_length)))
        size = min(size, config.num_items)
        reused: List[int] = []
        if previous:
            reuse_count = min(
                len(previous),
                int(round(config.correlation * size)),
            )
            if reuse_count:
                reused = list(
                    generator.choice(
                        previous, size=reuse_count, replace=False
                    )
                )
        fresh_needed = size - len(reused)
        fresh = generator.choice(
            config.num_items, size=fresh_needed, replace=False
        ) if fresh_needed else np.array([], dtype=int)
        pattern = sorted({*map(int, reused), *map(int, fresh)})
        patterns.append(pattern)
        previous = pattern
    return patterns
