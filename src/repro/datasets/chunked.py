"""Streaming chunked loaders: fixed-size transaction chunks from disk.

Everything else in :mod:`repro.datasets` materializes the whole
transaction log before handing it to an engine backend.  That is fine
for mushroom-sized data and fatal for kosarak/AOL-sized data, so this
module reads transaction files **chunk by chunk** — a bounded number
of rows in memory at any moment — in three formats:

``fimi``
    The FIMI ``.dat`` text format (one transaction per line, items as
    whitespace-separated integers), optionally gzip-compressed
    (``.dat.gz``).  Blank lines are skipped, matching
    :func:`repro.datasets.fimi.read_fimi`.
``csv``
    One transaction per line, items as comma-separated integers.
    Blank interior lines are format errors.
``ndjson``
    One JSON value per line: either an array of item ids or an object
    with an ``"items"`` array.

Chunked loaders feed the zero-copy
:meth:`~repro.datasets.transactions.TransactionDatabase
.from_sorted_rows` trusted path (and the mmap spill store behind it),
which performs **no full validation** — so this module is strict where
:func:`~repro.datasets.fimi.read_fimi` is forgiving.  Every row must
be strictly increasing (sorted, duplicate-free); duplicate items,
non-monotone ids, negative or non-integer tokens raise
:class:`~repro.errors.DatasetFormatError` with the source and line,
and a stream that ends mid-record (no final newline, or a gzip member
cut short) raises :class:`~repro.errors.DatasetTruncatedError` instead
of silently keeping the prefix that happened to parse.

The module also generates the synthetic benchmark **size tiers**
(`tiny`/`small`/`large`) to disk on demand — a vectorized sampler
writes gzip-FIMI files chunk-by-chunk, so even the large tier never
materializes in memory during generation.  The registry names them
``tier-tiny`` etc.; see :mod:`repro.datasets.registry`.
"""

from __future__ import annotations

import gzip
import io
import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
    Union,
)

import numpy as np

from repro.datasets.fimi import parse_item_token
from repro.datasets.transactions import TransactionDatabase
from repro.errors import (
    DatasetFormatError,
    DatasetTruncatedError,
    ValidationError,
)

PathLike = Union[str, Path]

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "TransactionChunk",
    "detect_format",
    "iter_transaction_chunks",
    "load_chunked",
    "synthesize_tier_chunks",
    "write_tier_file",
]

#: Rows per chunk when the caller does not choose.  Matches the
#: engine's default shard granularity so a chunked load spills one
#: segment per chunk without re-slicing.
DEFAULT_CHUNK_SIZE = 65_536

_FORMATS = ("fimi", "csv", "ndjson")

#: Suffix → format for :func:`detect_format` (``.gz`` is stripped
#: first).
_SUFFIX_FORMATS = {
    ".dat": "fimi",
    ".fimi": "fimi",
    ".txt": "fimi",
    ".csv": "csv",
    ".ndjson": "ndjson",
    ".jsonl": "ndjson",
}


@dataclass(frozen=True)
class TransactionChunk:
    """A fixed-size window of validated transactions.

    Attributes
    ----------
    start:
        Global row offset of the first transaction in this chunk.
    rows:
        Sorted, duplicate-free ``int64`` arrays — safe for
        :meth:`~repro.datasets.transactions.TransactionDatabase
        .from_sorted_rows` and the mmap spill store.
    max_item:
        Largest item id seen in this chunk (``-1`` if all rows are
        empty — which strict validation forbids anyway).
    """

    start: int
    rows: Tuple[np.ndarray, ...]
    max_item: int

    @property
    def num_rows(self) -> int:
        """Transactions in this chunk."""
        return len(self.rows)

    @property
    def total_size(self) -> int:
        """Sum of transaction lengths in this chunk."""
        return int(sum(row.size for row in self.rows))

    def database(self, num_items: int) -> TransactionDatabase:
        """This chunk as a standalone database over ``num_items``."""
        return TransactionDatabase.from_sorted_rows(
            self.rows, num_items=num_items
        )


def detect_format(path: PathLike) -> str:
    """Infer the loader format from a file name.

    ``.gz`` is transparent (the suffix underneath decides); unknown
    suffixes default to ``fimi``, the repository's native format.
    """
    name = Path(path).name.lower()
    if name.endswith(".gz"):
        name = name[: -len(".gz")]
    return _SUFFIX_FORMATS.get(Path(name).suffix, "fimi")


def iter_transaction_chunks(
    source: Union[PathLike, TextIO],
    *,
    format: Optional[str] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    num_items: Optional[int] = None,
) -> Iterator[TransactionChunk]:
    """Stream ``source`` as validated fixed-size transaction chunks.

    Parameters
    ----------
    source:
        Path to a data file (gzip detected by ``.gz`` suffix) or an
        open text stream.
    format:
        ``"fimi"`` | ``"csv"`` | ``"ndjson"``; inferred from the file
        name when omitted (streams default to ``fimi``).
    chunk_size:
        Rows per yielded chunk (the final chunk may be smaller).
    num_items:
        Optional vocabulary bound: any item id ``>= num_items`` is a
        :class:`~repro.errors.DatasetFormatError`.

    Raises
    ------
    DatasetFormatError
        Malformed tokens, duplicate items in a row, non-monotone item
        ids, blank csv/ndjson lines, out-of-range ids.
    DatasetTruncatedError
        The stream ends mid-record: missing final newline, or a gzip
        member cut short.
    """
    if chunk_size < 1:
        raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
    if format is None:
        format = (
            detect_format(source)
            if isinstance(source, (str, Path))
            else "fimi"
        )
    if format not in _FORMATS:
        raise ValidationError(
            f"unknown chunk format {format!r}; expected one of {_FORMATS}"
        )
    if isinstance(source, (str, Path)):
        label = str(source)
        path = Path(source)
        if not path.exists():
            raise DatasetFormatError(f"no such dataset file: {label}",
                                     source=label)
        if path.name.lower().endswith(".gz"):
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                yield from _chunk_stream(
                    handle, label, format, chunk_size, num_items,
                    gzipped=True,
                )
            return
        with open(path, "r", encoding="utf-8") as handle:
            yield from _chunk_stream(
                handle, label, format, chunk_size, num_items,
            )
        return
    label = getattr(source, "name", "<stream>")
    yield from _chunk_stream(source, str(label), format, chunk_size,
                             num_items)


def load_chunked(
    source: Union[PathLike, TextIO],
    *,
    format: Optional[str] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    num_items: Optional[int] = None,
) -> TransactionDatabase:
    """Materialize a chunk-validated file as one in-memory database.

    The convenience path for callers on the ``memory`` data plane who
    still want the strict chunked validation (and gzip/csv/ndjson
    support).  Memory use is the full dataset — use
    :func:`iter_transaction_chunks` plus the mmap spill store to stay
    out of core.
    """
    rows: List[np.ndarray] = []
    max_item = -1
    for chunk in iter_transaction_chunks(
        source, format=format, chunk_size=chunk_size, num_items=num_items
    ):
        rows.extend(chunk.rows)
        max_item = max(max_item, chunk.max_item)
    vocabulary = num_items if num_items is not None else max_item + 1
    return TransactionDatabase.from_sorted_rows(
        rows, num_items=max(vocabulary, 1)
    )


# ----------------------------------------------------------------------
# Line parsing (strict)
# ----------------------------------------------------------------------
def _validated_row(
    items: Sequence[int], line_number: int, source: str
) -> np.ndarray:
    row = np.asarray(items, dtype=np.int64)
    if row.size == 0:
        raise DatasetFormatError(
            f"line {line_number}: empty transaction",
            source=source, line=line_number,
        )
    if row.size > 1:
        steps = np.diff(row)
        if np.any(steps == 0):
            position = int(np.argmax(steps == 0))
            raise DatasetFormatError(
                f"line {line_number}: duplicate item "
                f"{int(row[position])} in transaction",
                source=source, line=line_number,
            )
        if np.any(steps < 0):
            position = int(np.argmax(steps < 0))
            raise DatasetFormatError(
                f"line {line_number}: non-monotone item ids "
                f"({int(row[position])} then {int(row[position + 1])}); "
                f"chunked loaders require sorted transactions",
                source=source, line=line_number,
            )
    return row


def _parse_fimi_line(line: str, line_number: int,
                     source: str) -> Optional[np.ndarray]:
    stripped = line.strip()
    if not stripped:
        return None  # blank-line skip, matching read_fimi
    items = [
        parse_item_token(token, line_number, source=source)
        for token in stripped.split()
    ]
    return _validated_row(items, line_number, source)


def _parse_csv_line(line: str, line_number: int,
                    source: str) -> Optional[np.ndarray]:
    stripped = line.strip()
    if not stripped:
        raise DatasetFormatError(
            f"line {line_number}: blank line in csv transaction file",
            source=source, line=line_number,
        )
    items = [
        parse_item_token(token.strip(), line_number, source=source)
        for token in stripped.split(",")
    ]
    return _validated_row(items, line_number, source)


def _parse_ndjson_line(line: str, line_number: int,
                       source: str) -> Optional[np.ndarray]:
    stripped = line.strip()
    if not stripped:
        raise DatasetFormatError(
            f"line {line_number}: blank line in ndjson transaction file",
            source=source, line=line_number,
        )
    try:
        value = json.loads(stripped)
    except json.JSONDecodeError as exc:
        raise DatasetFormatError(
            f"line {line_number}: invalid JSON record: {exc.msg}",
            source=source, line=line_number,
        ) from exc
    if isinstance(value, dict):
        value = value.get("items")
    if not isinstance(value, list):
        raise DatasetFormatError(
            f"line {line_number}: ndjson record must be an array of "
            f"item ids or an object with an 'items' array",
            source=source, line=line_number,
        )
    items: List[int] = []
    for entry in value:
        # bool is an int subclass; JSON true/false are not item ids.
        if not isinstance(entry, int) or isinstance(entry, bool):
            raise DatasetFormatError(
                f"line {line_number}: non-integer item {entry!r}",
                source=source, line=line_number,
            )
        if entry < 0:
            raise DatasetFormatError(
                f"line {line_number}: negative item id {entry}",
                source=source, line=line_number,
            )
        items.append(entry)
    return _validated_row(items, line_number, source)


_PARSERS = {
    "fimi": _parse_fimi_line,
    "csv": _parse_csv_line,
    "ndjson": _parse_ndjson_line,
}


def _chunk_stream(
    handle: TextIO,
    source: str,
    format: str,
    chunk_size: int,
    num_items: Optional[int],
    gzipped: bool = False,
) -> Iterator[TransactionChunk]:
    parse = _PARSERS[format]
    pending: List[np.ndarray] = []
    start = 0
    max_item = -1
    line_number = 0
    line = ""
    lines = iter(handle)
    while True:
        try:
            line = next(lines)
        except StopIteration:
            break
        except EOFError as exc:
            # gzip's "compressed file ended before the end-of-stream
            # marker" — the member was cut mid-stream.
            raise DatasetTruncatedError(
                f"gzip stream ended mid-member after line {line_number}",
                source=source, line=line_number or None,
            ) from exc
        except (gzip.BadGzipFile, OSError) as exc:
            if gzipped:
                raise DatasetFormatError(
                    f"corrupt gzip stream: {exc}", source=source,
                ) from exc
            raise
        line_number += 1
        if not line.endswith("\n"):
            # A data line without its newline is the signature of a
            # cut transfer: "5 1" may be the prefix of "5 12".
            # Refuse the ambiguity rather than mis-count.
            raise DatasetTruncatedError(
                f"line {line_number}: stream ends mid-record (no "
                f"final newline) — refusing a possibly truncated "
                f"transaction",
                source=source, line=line_number,
            )
        row = parse(line, line_number, source)
        if row is None:
            continue
        if num_items is not None and int(row[-1]) >= num_items:
            raise DatasetFormatError(
                f"line {line_number}: item id {int(row[-1])} out of "
                f"range for num_items={num_items}",
                source=source, line=line_number,
            )
        max_item = max(max_item, int(row[-1]))
        pending.append(row)
        if len(pending) >= chunk_size:
            yield TransactionChunk(start, tuple(pending), max_item)
            start += len(pending)
            pending = []
            max_item = -1
    if pending:
        yield TransactionChunk(start, tuple(pending), max_item)


# ----------------------------------------------------------------------
# Synthetic size tiers
# ----------------------------------------------------------------------
def synthesize_tier_chunks(
    num_transactions: int,
    num_items: int,
    avg_items: float,
    seed: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[TransactionChunk]:
    """Vectorized synthetic transaction stream for the size tiers.

    Row lengths are Poisson around ``avg_items`` (at least 1, at most
    ``num_items``); item draws follow a power-law so low ids are
    frequent — the skew PrivBasis needs for interesting top-k
    structure.  Deterministic in ``seed``; memory is bounded by one
    chunk.  (The Quest generator in :mod:`repro.datasets.synthetic`
    is pattern-faithful but Python-loop slow — at large-tier scale it
    would dominate the benchmark it feeds.)
    """
    if num_transactions < 1:
        raise ValidationError(
            f"num_transactions must be >= 1, got {num_transactions}"
        )
    if num_items < 2:
        raise ValidationError(f"num_items must be >= 2, got {num_items}")
    rng = np.random.default_rng(seed)
    start = 0
    while start < num_transactions:
        count = min(chunk_size, num_transactions - start)
        lengths = rng.poisson(max(avg_items - 1.0, 0.0), count) + 1
        lengths = np.minimum(lengths, num_items)
        draws = (num_items * rng.random(int(lengths.sum())) ** 2.5)
        draws = draws.astype(np.int64)
        boundaries = np.cumsum(lengths)[:-1]
        rows = tuple(
            np.unique(part) for part in np.split(draws, boundaries)
        )
        max_item = int(max(int(row[-1]) for row in rows))
        yield TransactionChunk(start, rows, max_item)
        start += count


def write_tier_file(
    path: PathLike,
    chunks: Iterable[TransactionChunk],
) -> int:
    """Write ``chunks`` as a gzip-FIMI file, atomically; returns rows.

    The file appears under ``path`` only once fully written (tmp +
    rename), so a crash mid-generation never leaves a truncated tier
    for the next run to trip over.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temp_path = path.with_name(path.name + ".tmp")
    rows_written = 0
    try:
        with gzip.open(temp_path, "wt", encoding="utf-8") as handle:
            for chunk in chunks:
                buffer = io.StringIO()
                for row in chunk.rows:
                    buffer.write(" ".join(str(int(i)) for i in row))
                    buffer.write("\n")
                handle.write(buffer.getvalue())
                rows_written += chunk.num_rows
        temp_path.replace(path)
    finally:
        temp_path.unlink(missing_ok=True)
    return rows_written
