"""Append-only transaction log with versioned copy-on-write snapshots.

PrivBasis (the paper) assumes a static database, but a production feed
appends transactions continuously — clickstreams, baskets, search
logs.  :class:`TransactionLog` is the dataset-layer answer: an
append-only log of transactions over a *fixed, public* item vocabulary
(the paper's AOL setting, where ``I`` is known up front) that exposes
the data as a sequence of immutable, versioned **snapshots**.

Versioning model
----------------
* Version ``0`` is the log's initial contents (possibly empty); every
  :meth:`TransactionLog.append` produces a new version.  Versions are
  strictly nested prefixes: the transactions of version ``v`` are the
  first ``N_v`` transactions of every later version.
* :meth:`TransactionLog.snapshot` materializes any version as an
  ordinary immutable
  :class:`~repro.datasets.transactions.TransactionDatabase` —
  downstream code (backends, sessions, miners) never learns it came
  from a stream.
* Snapshots are **copy-on-write**: row arrays are shared with the log,
  and the latest snapshot is advanced incrementally via
  :meth:`TransactionDatabase.extended`, so its warm derived state
  (item-support cache, CSR inverted index) carries over across
  appends instead of being rebuilt.

Nothing in this module touches privacy: a snapshot is exact data, and
all DP accounting happens downstream when mechanisms release
statistics computed over one pinned snapshot (see
``docs/streaming.md`` for why releases over a growing log still
compose under the per-tenant ε ledger).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError

__all__ = ["LogSnapshot", "TransactionLog"]

#: Historical snapshot databases kept alive per log (FIFO beyond
#: this).  The latest version lives outside this cache — it is the
#: incrementally maintained head and is always warm.  Snapshots share
#: row arrays, but a queried snapshot lazily builds an O(|D|)
#: inverted index, so unbounded retention would leak memory in a
#: long-lived service.
SNAPSHOT_CACHE_LIMIT = 8


@dataclass(frozen=True)
class LogSnapshot:
    """One immutable, versioned view of a :class:`TransactionLog`.

    ``database`` is a plain
    :class:`~repro.datasets.transactions.TransactionDatabase` holding
    exactly the transactions the log had at ``version``; it stays
    valid (and bit-identical) forever, regardless of later appends.
    """

    version: int
    database: TransactionDatabase

    @property
    def num_transactions(self) -> int:
        """``N`` at this version."""
        return self.database.num_transactions

    def __repr__(self) -> str:
        return (
            f"LogSnapshot(version={self.version}, "
            f"N={self.num_transactions})"
        )


class TransactionLog:
    """Append-only transactions over a fixed vocabulary, with versions.

    Parameters
    ----------
    num_items:
        The (public) item vocabulary size ``|I|``.  Fixed for the
        log's lifetime: an appended transaction naming an item outside
        ``[0, num_items)`` is rejected, because growing the vocabulary
        would silently change the shape of every item-support vector
        downstream.
    transactions:
        Optional initial contents (becomes version ``0``).
    item_labels:
        Optional external item names, ``len == num_items``.
    """

    def __init__(
        self,
        num_items: int,
        transactions: Iterable[Iterable[int]] = (),
        item_labels: Optional[Sequence[str]] = None,
    ) -> None:
        if int(num_items) < 0:
            raise ValidationError(
                f"num_items must be non-negative, got {num_items}"
            )
        initial = TransactionDatabase(
            transactions, num_items=int(num_items), item_labels=item_labels
        )
        self._num_items = initial.num_items
        self._item_labels = initial.item_labels
        self._rows: List[np.ndarray] = [
            initial.transaction_array(index) for index in range(len(initial))
        ]
        #: ``_boundaries[v]`` is the transaction count at version ``v``.
        self._boundaries: List[int] = [len(self._rows)]
        self._latest: TransactionDatabase = initial
        self._snapshot_cache: Dict[int, TransactionDatabase] = {}

    @classmethod
    def from_database(
        cls, database: TransactionDatabase
    ) -> "TransactionLog":
        """A log whose version ``0`` *is* ``database`` (rows shared)."""
        log = cls.__new__(cls)
        log._num_items = database.num_items
        log._item_labels = database.item_labels
        log._rows = [
            database.transaction_array(index)
            for index in range(len(database))
        ]
        log._boundaries = [len(log._rows)]
        log._latest = database
        log._snapshot_cache = {}
        return log

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The current (latest) version number; starts at ``0``."""
        return len(self._boundaries) - 1

    @property
    def num_items(self) -> int:
        """``|I|``, fixed at construction."""
        return self._num_items

    @property
    def num_transactions(self) -> int:
        """Total transactions at the latest version."""
        return len(self._rows)

    @property
    def item_labels(self) -> Optional[Sequence[str]]:
        """External item names, if any were supplied."""
        return self._item_labels

    def num_transactions_at(self, version: int) -> int:
        """Transaction count at ``version``."""
        return self._boundaries[self._check_version(version)]

    def __len__(self) -> int:
        return self.num_transactions

    def __repr__(self) -> str:
        return (
            f"TransactionLog(version={self.version}, "
            f"N={self.num_transactions}, |I|={self._num_items})"
        )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def append(self, transactions) -> int:
        """Append a non-empty batch; returns the new version number.

        ``transactions`` is an iterable of transactions (each an
        iterable of item ids in ``[0, num_items)``) or a ready
        :class:`TransactionDatabase` over the same vocabulary.  The
        batch is validated before anything is committed, so a bad
        transaction never leaves the log half-appended.  Empty batches
        are rejected: every version must differ from its predecessor,
        or version numbers stop identifying data states.
        """
        delta = self._as_delta(transactions)
        if delta.num_transactions == 0:
            raise ValidationError(
                "cannot append an empty batch (versions must advance "
                "the data); skip the call instead"
            )
        # The outgoing head becomes a historical snapshot; keeping it
        # cached means recent versions stay warm for audits.
        self._cache_snapshot(self.version, self._latest)
        self._rows.extend(
            delta.transaction_array(index) for index in range(len(delta))
        )
        self._latest = self._latest.extended(delta)
        self._boundaries.append(len(self._rows))
        return self.version

    def _as_delta(self, transactions) -> TransactionDatabase:
        """Coerce an append batch into a validated delta database."""
        if isinstance(transactions, TransactionDatabase):
            if transactions.num_items != self._num_items:
                raise ValidationError(
                    f"appended database has num_items="
                    f"{transactions.num_items}, log has {self._num_items}"
                )
            return transactions
        return TransactionDatabase(
            transactions, num_items=self._num_items
        )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def _check_version(self, version: int) -> int:
        version = int(version)
        if not 0 <= version <= self.version:
            raise ValidationError(
                f"version {version} outside [0, {self.version}]"
            )
        return version

    def _cache_snapshot(
        self, version: int, database: TransactionDatabase
    ) -> None:
        """FIFO-bounded cache of *historical* snapshot databases."""
        while len(self._snapshot_cache) >= max(SNAPSHOT_CACHE_LIMIT, 1):
            oldest = next(iter(self._snapshot_cache))
            del self._snapshot_cache[oldest]
        self._snapshot_cache[version] = database

    def snapshot(self, version: Optional[int] = None) -> LogSnapshot:
        """An immutable snapshot of ``version`` (default: latest).

        The latest snapshot is maintained incrementally across appends
        (warm caches carried over) and is always served from that warm
        head; a historical version evicted from the bounded cache is
        rebuilt from the shared rows on demand.
        """
        version = (
            self.version if version is None else self._check_version(version)
        )
        if version == self.version:
            return LogSnapshot(version=version, database=self._latest)
        database = self._snapshot_cache.get(version)
        if database is None:
            database = TransactionDatabase.from_sorted_rows(
                self._rows[: self._boundaries[version]],
                self._num_items,
                self._item_labels,
            )
            self._cache_snapshot(version, database)
        return LogSnapshot(version=version, database=database)

    def delta(
        self, since: int, until: Optional[int] = None
    ) -> TransactionDatabase:
        """The transactions appended in versions ``(since, until]``.

        This is what an incremental consumer feeds to
        ``CountingBackend.extend`` to advance from the snapshot at
        ``since`` to the one at ``until`` (default: latest) without a
        cold rebuild.
        """
        since = self._check_version(since)
        until = (
            self.version if until is None else self._check_version(until)
        )
        if until < since:
            raise ValidationError(
                f"delta until={until} precedes since={since}"
            )
        return TransactionDatabase.from_sorted_rows(
            self._rows[self._boundaries[since]: self._boundaries[until]],
            self._num_items,
            self._item_labels,
        )
