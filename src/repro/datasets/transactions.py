"""Immutable transaction database with fast counting kernels.

A :class:`TransactionDatabase` holds ``N`` transactions over an item
vocabulary ``I = {0, …, num_items − 1}`` (paper Section 2.2).  Items are
small integers internally; an optional ``item_labels`` sequence maps
them back to external names (e.g. FIMI item ids or AOL keywords).

Two complementary representations are kept:

* **horizontal** — each transaction as a sorted ``numpy`` int array,
  used for streaming scans (BasisFreq bin counting);
* **vertical** — a CSR-style inverted index mapping each item to its
  *tid-list* (sorted array of transaction indices), built lazily in one
  vectorized pass and used for support counting via intersection and
  for the scatter-add bin kernel.

The class is deliberately immutable: every mining and privacy component
treats the database as a read-only value, which makes the DP accounting
auditable (the only data accesses are through these query methods).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError

Itemset = Tuple[int, ...]


def canonical_itemset(items: Iterable[int]) -> Itemset:
    """Return ``items`` as a sorted, duplicate-free tuple of ints."""
    return tuple(sorted({int(item) for item in items}))


def _merge_csr(
    tids_a: np.ndarray,
    offsets_a: np.ndarray,
    tids_b: np.ndarray,
    offsets_b: np.ndarray,
    tid_offset_b: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge two CSR inverted indexes over the same item vocabulary.

    ``b``'s tids are shifted by ``tid_offset_b`` (the number of
    transactions in ``a``), so per-item concatenation ``a ⧺ b`` stays
    sorted without any comparison work.  Both inputs are scattered into
    one flat array in O(total) with no Python-level per-item loop.
    """
    counts_a = np.diff(offsets_a)
    counts_b = np.diff(offsets_b)
    offsets = np.zeros_like(offsets_a)
    np.cumsum(counts_a + counts_b, out=offsets[1:])
    merged = np.empty(tids_a.size + tids_b.size, dtype=np.int64)
    within_a = np.arange(tids_a.size, dtype=np.int64) - np.repeat(
        offsets_a[:-1], counts_a
    )
    merged[np.repeat(offsets[:-1], counts_a) + within_a] = tids_a
    within_b = np.arange(tids_b.size, dtype=np.int64) - np.repeat(
        offsets_b[:-1], counts_b
    )
    merged[np.repeat(offsets[:-1] + counts_a, counts_b) + within_b] = (
        tids_b + tid_offset_b
    )
    return merged, offsets


class TransactionDatabase:
    """An immutable set-valued dataset ``D = [t_1, …, t_N]``, ``t_i ⊆ I``.

    Parameters
    ----------
    transactions:
        Iterable of transactions; each transaction is an iterable of
        non-negative integer item ids.  Duplicates within a transaction
        are collapsed (transactions are sets).
    num_items:
        Size of the item vocabulary ``|I|``.  Defaults to
        ``max(item) + 1`` over all transactions; pass it explicitly when
        the vocabulary is larger than what is observed (the paper's
        AOL setting, where ``I`` is public knowledge).
    item_labels:
        Optional external names, ``len(item_labels) == num_items``.
    """

    def __init__(
        self,
        transactions: Iterable[Iterable[int]],
        num_items: Optional[int] = None,
        item_labels: Optional[Sequence[str]] = None,
    ) -> None:
        rows: List[np.ndarray] = []
        max_item = -1
        for transaction in transactions:
            row = np.array(sorted({int(item) for item in transaction}),
                           dtype=np.int64)
            if row.size and row[0] < 0:
                raise ValidationError(
                    f"item ids must be non-negative, got {row[0]}"
                )
            if row.size:
                max_item = max(max_item, int(row[-1]))
            rows.append(row)
        self._init_from_rows(rows, max_item, num_items, item_labels)

    def _init_from_rows(
        self,
        rows: List[np.ndarray],
        max_item: int,
        num_items: Optional[int],
        item_labels: Optional[Sequence[str]],
    ) -> None:
        if num_items is None:
            num_items = max_item + 1
        elif num_items <= max_item:
            raise ValidationError(
                f"num_items={num_items} is smaller than the largest "
                f"observed item id {max_item}"
            )
        if item_labels is not None and len(item_labels) != num_items:
            raise ValidationError(
                f"item_labels has {len(item_labels)} entries but "
                f"num_items={num_items}"
            )
        self._rows: Tuple[np.ndarray, ...] = tuple(rows)
        self._num_items = int(num_items)
        self._item_labels = tuple(item_labels) if item_labels else None
        # Lazy vertical index (CSR layout over items).
        self._index_tids: Optional[np.ndarray] = None
        self._index_offsets: Optional[np.ndarray] = None
        self._item_support_cache: Optional[np.ndarray] = None

    @classmethod
    def from_sorted_rows(
        cls,
        rows: Sequence[np.ndarray],
        num_items: int,
        item_labels: Optional[Sequence[str]] = None,
    ) -> "TransactionDatabase":
        """Fast construction path for trusted callers (generators).

        ``rows`` must already be sorted, duplicate-free int64 arrays
        with items in ``[0, num_items)``.  Only cheap spot checks are
        performed; use the regular constructor for untrusted data.
        """
        rows = [np.asarray(row, dtype=np.int64) for row in rows]
        for row in rows[: min(len(rows), 8)]:
            if row.size and (
                row[0] < 0
                or row[-1] >= num_items
                or np.any(np.diff(row) <= 0)
            ):
                raise ValidationError(
                    "from_sorted_rows requires sorted unique in-range rows"
                )
        database = cls.__new__(cls)
        database._init_from_rows(list(rows), num_items - 1, num_items,
                                 item_labels)
        return database

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------
    @property
    def num_transactions(self) -> int:
        """``N``, the number of transactions."""
        return len(self._rows)

    @property
    def num_items(self) -> int:
        """``|I|``, the vocabulary size."""
        return self._num_items

    @property
    def item_labels(self) -> Optional[Tuple[str, ...]]:
        """External item names, if any were supplied."""
        return self._item_labels

    @property
    def total_size(self) -> int:
        """Sum of transaction lengths (the paper's ``|D|``)."""
        return int(sum(row.size for row in self._rows))

    @property
    def avg_transaction_length(self) -> float:
        """Average ``|t|`` (Table 2(a)'s ``avg |t|`` column)."""
        if not self._rows:
            return 0.0
        return self.total_size / self.num_transactions

    def __len__(self) -> int:
        return self.num_transactions

    def __iter__(self) -> Iterator[Itemset]:
        for row in self._rows:
            yield tuple(int(item) for item in row)

    def transaction(self, index: int) -> Itemset:
        """The ``index``-th transaction as a sorted tuple of items."""
        return tuple(int(item) for item in self._rows[index])

    def transaction_array(self, index: int) -> np.ndarray:
        """The ``index``-th transaction as a read-only sorted array."""
        return self._rows[index]

    @property
    def rows(self) -> Tuple[np.ndarray, ...]:
        """All transactions as a tuple of sorted row arrays.

        This is the horizontal CSR-of-rows representation itself —
        shared, never copied — so bulk consumers (shard construction,
        shared-memory packing) can slice it directly instead of
        looping :meth:`transaction_array` per transaction.  Treat the
        arrays as read-only; mutating them breaks immutability.
        """
        return self._rows

    def slice(self, start: int, stop: int) -> "TransactionDatabase":
        """A database over transactions ``[start, stop)``, rows shared.

        The shard-construction fast path: one tuple slice of the
        horizontal representation, no per-transaction Python loop and
        no row copies or revalidation (the rows are already canonical).
        Vocabulary and labels carry over unchanged.
        """
        sliced = TransactionDatabase.__new__(TransactionDatabase)
        sliced._init_from_rows(
            list(self._rows[start:stop]),
            self._num_items - 1,
            self._num_items,
            self._item_labels,
        )
        return sliced

    def __repr__(self) -> str:
        return (
            f"TransactionDatabase(N={self.num_transactions}, "
            f"|I|={self.num_items}, "
            f"avg|t|={self.avg_transaction_length:.2f})"
        )

    # ------------------------------------------------------------------
    # Vertical representation
    # ------------------------------------------------------------------
    def _ensure_inverted_index(self) -> None:
        """Build the CSR inverted index in one vectorized pass."""
        if self._index_offsets is not None:
            return
        lengths = np.array([row.size for row in self._rows], dtype=np.int64)
        if lengths.sum() == 0:
            self._index_tids = np.empty(0, dtype=np.int64)
            self._index_offsets = np.zeros(
                self._num_items + 1, dtype=np.int64
            )
            return
        flat_items = (
            np.concatenate([row for row in self._rows if row.size])
            if len(self._rows)
            else np.empty(0, dtype=np.int64)
        )
        flat_tids = np.repeat(
            np.arange(len(self._rows), dtype=np.int64), lengths
        )
        order = np.argsort(flat_items, kind="stable")
        sorted_items = flat_items[order]
        self._index_tids = flat_tids[order]
        self._index_offsets = np.searchsorted(
            sorted_items, np.arange(self._num_items + 1, dtype=np.int64)
        )

    def tidlist(self, item: int) -> np.ndarray:
        """Sorted array of transaction indices containing ``item``."""
        item = int(item)
        if not 0 <= item < self._num_items:
            raise ValidationError(
                f"item {item} outside vocabulary [0, {self._num_items})"
            )
        self._ensure_inverted_index()
        start = self._index_offsets[item]
        stop = self._index_offsets[item + 1]
        return self._index_tids[start:stop]

    def item_supports(self) -> np.ndarray:
        """Support count of every single item, shape ``(num_items,)``."""
        if self._item_support_cache is None:
            if self._rows:
                flat = [row for row in self._rows if row.size]
                if flat:
                    counts = np.bincount(
                        np.concatenate(flat), minlength=self._num_items
                    ).astype(np.int64)
                else:
                    counts = np.zeros(self._num_items, dtype=np.int64)
            else:
                counts = np.zeros(self._num_items, dtype=np.int64)
            self._item_support_cache = counts
        return self._item_support_cache.copy()

    def item_frequencies(self) -> np.ndarray:
        """Frequency (support / N) of every single item."""
        if self.num_transactions == 0:
            return np.zeros(self._num_items, dtype=float)
        return self.item_supports() / float(self.num_transactions)

    # ------------------------------------------------------------------
    # Itemset queries
    # ------------------------------------------------------------------
    def support(self, itemset: Iterable[int]) -> int:
        """Support count of ``itemset`` (number of supersets in D)."""
        items = canonical_itemset(itemset)
        if not items:
            return self.num_transactions
        return int(self.covering_tids(items).size)

    def frequency(self, itemset: Iterable[int]) -> float:
        """Frequency ``f(X) = support(X) / N`` (paper Section 2.2)."""
        if self.num_transactions == 0:
            return 0.0
        return self.support(itemset) / float(self.num_transactions)

    def supports(self, itemsets: Sequence[Iterable[int]]) -> List[int]:
        """Support counts for many itemsets (convenience wrapper)."""
        return [self.support(itemset) for itemset in itemsets]

    def covering_tids(self, itemset: Iterable[int]) -> np.ndarray:
        """Sorted tids of transactions containing ``itemset``."""
        items = canonical_itemset(itemset)
        if not items:
            return np.arange(self.num_transactions, dtype=np.int64)
        lists = sorted(
            (self.tidlist(item) for item in items), key=lambda a: a.size
        )
        current = lists[0]
        for other in lists[1:]:
            if current.size == 0:
                break
            current = np.intersect1d(current, other, assume_unique=True)
        return current

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def extended(self, delta: "TransactionDatabase") -> "TransactionDatabase":
        """Copy-on-write concatenation ``self ⧺ delta``.

        Returns a *new* database whose transactions are this database's
        followed by ``delta``'s; both inputs are left untouched (the
        immutability contract holds — streaming callers advance by
        replacing their reference).  Row arrays are shared, never
        copied, and warm derived state carries over instead of being
        rebuilt from scratch:

        * the item-support cache, when built, is extended by adding
          ``delta``'s supports;
        * the CSR inverted index, when built, is merged with
          ``delta``'s in one vectorized scatter pass — per-item
          tid-lists stay sorted because every appended tid exceeds
          every existing tid.

        This is the substrate beneath
        :class:`repro.datasets.stream.TransactionLog` snapshots and
        the incremental ``extend`` path of the counting backends.
        """
        if delta.num_items != self._num_items:
            raise ValidationError(
                f"cannot extend a database over {self._num_items} items "
                f"with a delta over {delta.num_items} items"
            )
        combined = TransactionDatabase.__new__(TransactionDatabase)
        combined._init_from_rows(
            list(self._rows) + list(delta._rows),
            self._num_items - 1,
            self._num_items,
            self._item_labels,
        )
        if self._item_support_cache is not None:
            combined._item_support_cache = (
                self._item_support_cache + delta.item_supports()
            )
        if self._index_offsets is not None:
            delta._ensure_inverted_index()
            combined._index_tids, combined._index_offsets = _merge_csr(
                self._index_tids,
                self._index_offsets,
                delta._index_tids,
                delta._index_offsets,
                self.num_transactions,
            )
        return combined

    def project(self, items: Iterable[int]) -> "TransactionDatabase":
        """Project every transaction onto ``items`` (paper Section 4.1).

        Keeps all ``N`` transactions (some possibly empty) and the full
        vocabulary, so frequencies remain comparable.
        """
        keep = np.zeros(self._num_items, dtype=bool)
        for item in canonical_itemset(items):
            if not 0 <= item < self._num_items:
                raise ValidationError(
                    f"item {item} outside vocabulary [0, {self._num_items})"
                )
            keep[item] = True
        projected = [row[keep[row]] for row in self._rows]
        return TransactionDatabase.from_sorted_rows(
            projected, self._num_items, self._item_labels
        )

    def relabel(self, item_labels: Sequence[str]) -> "TransactionDatabase":
        """Return a copy with new external item labels."""
        return TransactionDatabase.from_sorted_rows(
            list(self._rows), self._num_items, item_labels
        )

    @classmethod
    def from_labeled_transactions(
        cls, transactions: Iterable[Iterable[str]]
    ) -> "TransactionDatabase":
        """Build a database from transactions of arbitrary string labels.

        Labels are interned to dense int ids in first-seen order and
        preserved in :attr:`item_labels`.
        """
        label_to_id: dict = {}
        rows: List[List[int]] = []
        for transaction in transactions:
            row = []
            for label in transaction:
                identifier = label_to_id.setdefault(
                    str(label), len(label_to_id)
                )
                row.append(identifier)
            rows.append(row)
        labels = [""] * len(label_to_id)
        for label, identifier in label_to_id.items():
            labels[identifier] = label
        return cls(
            rows,
            num_items=len(labels) or None,
            item_labels=labels or None,
        )
