"""Dataset statistics, including the paper's Table 2(a) columns.

``λ`` is the number of distinct items in the exact top-k itemsets, and
``λ₂``/``λ₃`` count the pairs / size-3 itemsets among them — the
quantities PrivBasis estimates privately and Table 2(a) reports
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.datasets.transactions import TransactionDatabase
from repro.fim.topk import (
    pairs_in_topk,
    size_n_in_topk,
    top_k_itemsets,
    unique_items_in_topk,
)


@dataclass(frozen=True)
class DatasetStats:
    """One row of Table 2(a)."""

    name: str
    num_transactions: int
    num_items: int
    avg_transaction_length: float
    k: int
    lam: int          # λ  — distinct items in the top-k itemsets
    lam2: int         # λ₂ — pairs in the top-k itemsets
    lam3: int         # λ₃ — size-3 itemsets in the top-k itemsets
    fk: float         # frequency of the k-th itemset
    fk_count: int     # f_k · N (the paper reports this product)

    def as_row(self) -> Tuple:
        return (
            self.name,
            self.num_transactions,
            self.num_items,
            round(self.avg_transaction_length, 1),
            self.k,
            self.lam,
            self.lam2,
            self.lam3,
            self.fk_count,
        )


def dataset_stats(
    database: TransactionDatabase, k: int, name: str = ""
) -> DatasetStats:
    """Compute the Table 2(a) row for ``database`` at top-``k``."""
    top = top_k_itemsets(database, k)
    lam = len(unique_items_in_topk(top))
    lam2 = len(pairs_in_topk(top))
    lam3 = len(size_n_in_topk(top, 3))
    if len(top) >= k:
        fk_count = top[k - 1][1]
    elif top:
        fk_count = top[-1][1]
    else:
        fk_count = 0
    n = database.num_transactions
    return DatasetStats(
        name=name,
        num_transactions=n,
        num_items=database.num_items,
        avg_transaction_length=database.avg_transaction_length,
        k=k,
        lam=lam,
        lam2=lam2,
        lam3=lam3,
        fk=fk_count / n if n else 0.0,
        fk_count=fk_count,
    )


def topk_size_profile(
    database: TransactionDatabase, k: int, max_size: int = 6
) -> List[int]:
    """Histogram of itemset sizes among the exact top-k.

    ``profile[s-1]`` = number of size-``s`` itemsets in the top-k, for
    s = 1 … ``max_size``.  Used to verify generated datasets land in
    the paper's regimes (e.g. AOL-like must have profile ≈ [171, 29,
    0, …]).
    """
    top = top_k_itemsets(database, k)
    profile = [0] * max_size
    for itemset, _ in top:
        size = len(itemset)
        if 1 <= size <= max_size:
            profile[size - 1] += 1
    return profile
