"""Export experiment results to CSV / JSON for external tooling.

The figure harness renders text tables and ASCII charts; downstream
users who want real plots (matplotlib, gnuplot, a spreadsheet) need
the raw series.  This module serializes

* :class:`~repro.experiments.runner.SeriesResult` lists (figures) to
  long-format CSV — one row per (series, ε) — or nested JSON;
* releases (:class:`~repro.core.result.PrivateFIMResult`) to CSV with
  one row per published itemset.

Only the standard library is used (``csv``, ``json``); items are
rendered as space-separated ids inside one field, matching the FIMI
convention.
"""

from __future__ import annotations

import csv
import io
import json
from typing import List, Sequence

from repro.experiments.runner import SeriesResult

#: Columns of the long-format figure CSV.
FIGURE_FIELDS = (
    "label",
    "k",
    "epsilon",
    "fnr_mean",
    "fnr_stderr",
    "re_mean",
    "re_stderr",
)

#: Columns of the release CSV.
RELEASE_FIELDS = (
    "rank",
    "itemset",
    "size",
    "noisy_count",
    "noisy_frequency",
    "count_variance",
)


def series_to_csv(series: Sequence[SeriesResult]) -> str:
    """Long-format CSV of figure series (one row per series × ε)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(FIGURE_FIELDS)
    for result in series:
        for index, epsilon in enumerate(result.epsilons):
            writer.writerow(
                [
                    result.label,
                    result.k,
                    epsilon,
                    _round(result.fnr_mean[index]),
                    _round(result.fnr_stderr[index]),
                    _round(result.re_mean[index]),
                    _round(result.re_stderr[index]),
                ]
            )
    return buffer.getvalue()


def series_to_json(series: Sequence[SeriesResult], indent: int = 2) -> str:
    """Nested JSON of figure series (one object per series)."""
    payload: List[dict] = []
    for result in series:
        payload.append(
            {
                "label": result.label,
                "k": result.k,
                "epsilons": list(result.epsilons),
                "fnr_mean": [_round(v) for v in result.fnr_mean],
                "fnr_stderr": [_round(v) for v in result.fnr_stderr],
                "re_mean": [_round(v) for v in result.re_mean],
                "re_stderr": [_round(v) for v in result.re_stderr],
            }
        )
    return json.dumps(payload, indent=indent)


def figure_to_csv(figure_result) -> str:
    """CSV of a :class:`~repro.experiments.figures.FigureResult`."""
    return series_to_csv(figure_result.series)


def figure_to_json(figure_result, indent: int = 2) -> str:
    """JSON of a FigureResult with its metadata attached."""
    body = json.loads(series_to_json(figure_result.series))
    return json.dumps(
        {
            "figure_id": figure_result.figure_id,
            "dataset": figure_result.dataset,
            "description": figure_result.description,
            "series": body,
        },
        indent=indent,
    )


def release_to_csv(release) -> str:
    """CSV of a release: one row per published itemset, rank order."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(RELEASE_FIELDS)
    for rank, entry in enumerate(release.itemsets, start=1):
        writer.writerow(
            [
                rank,
                " ".join(str(item) for item in entry.itemset),
                len(entry.itemset),
                _round(entry.noisy_count),
                _round(entry.noisy_frequency, digits=8),
                _round(entry.count_variance),
            ]
        )
    return buffer.getvalue()


def write_text(path, content: str) -> None:
    """Write ``content`` to ``path`` (tiny convenience wrapper)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)


def _round(value: float, digits: int = 6) -> float:
    """Round for stable, diff-friendly files (NaN survives as nan)."""
    try:
        return round(float(value), digits)
    except (TypeError, ValueError):
        return value
