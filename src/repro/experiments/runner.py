"""Trial runner: ε-sweeps of PB vs TF with repeated trials.

The paper repeats every experiment 3 times and reports mean ± standard
error; :func:`sweep` reproduces that protocol.  Randomness is derived
from a single root seed via generator spawning, so a whole figure is
reproducible from one integer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.privbasis import privbasis
from repro.baselines.tf import tf_method
from repro.datasets.registry import cached_top_k
from repro.datasets.transactions import TransactionDatabase
from repro.dp.rng import spawn_rngs
from repro.errors import ValidationError
from repro.metrics.utility import evaluate_release


@dataclass(frozen=True)
class MethodSpec:
    """A private mining method to evaluate.

    ``kind`` is ``"pb"`` (PrivBasis) or ``"tf"`` (the baseline);
    ``params`` are forwarded to the implementation (e.g. ``{"m": 2}``
    for TF).  ``label`` is the series name in reports.
    """

    kind: str
    label: str
    params: Dict = field(default_factory=dict)

    def run(
        self,
        database: TransactionDatabase,
        k: int,
        epsilon: float,
        rng,
    ):
        if self.kind == "pb":
            return privbasis(database, k=k, epsilon=epsilon, rng=rng,
                             **self.params)
        if self.kind == "tf":
            return tf_method(database, k=k, epsilon=epsilon, rng=rng,
                             **self.params)
        raise ValidationError(f"unknown method kind {self.kind!r}")


def pb_spec(k: int, **params) -> MethodSpec:
    """Standard PrivBasis series label, e.g. ``PB, k = 100``."""
    return MethodSpec(kind="pb", label=f"PB, k = {k}", params=params)


def tf_spec(k: int, m: int, **params) -> MethodSpec:
    """Standard TF series label, e.g. ``TF, k = 100, m = 2``."""
    return MethodSpec(
        kind="tf", label=f"TF, k = {k}, m = {m}",
        params={"m": m, **params},
    )


@dataclass
class SeriesResult:
    """One curve of a figure: a method evaluated across the ε grid."""

    label: str
    k: int
    epsilons: List[float]
    fnr_mean: List[float]
    fnr_stderr: List[float]
    re_mean: List[float]
    re_stderr: List[float]

    def as_rows(self) -> List[Tuple]:
        return [
            (
                self.label,
                eps,
                self.fnr_mean[i],
                self.fnr_stderr[i],
                self.re_mean[i],
                self.re_stderr[i],
            )
            for i, eps in enumerate(self.epsilons)
        ]


def run_trials(
    database: TransactionDatabase,
    spec: MethodSpec,
    k: int,
    epsilon: float,
    trials: int,
    seed: int,
) -> Tuple[List[float], List[float]]:
    """Run ``trials`` independent releases; return (FNRs, REs)."""
    if trials < 1:
        raise ValidationError(f"trials must be >= 1, got {trials}")
    truth = cached_top_k(database, k)
    rngs = spawn_rngs(seed, trials)
    fnrs: List[float] = []
    res: List[float] = []
    for generator in rngs:
        release = spec.run(database, k, epsilon, generator)
        metrics = evaluate_release(release, database, truth)
        fnrs.append(metrics["fnr"])
        res.append(metrics["relative_error"])
    return fnrs, res


def sweep(
    database: TransactionDatabase,
    spec: MethodSpec,
    k: int,
    epsilons: Sequence[float],
    trials: int = 3,
    seed: int = 20120827,
) -> SeriesResult:
    """Evaluate one method across an ε grid (mean ± stderr per point)."""
    result = SeriesResult(
        label=spec.label, k=k, epsilons=[], fnr_mean=[], fnr_stderr=[],
        re_mean=[], re_stderr=[],
    )
    for index, epsilon in enumerate(epsilons):
        fnrs, res = run_trials(
            database, spec, k, epsilon, trials, seed + 1000 * index
        )
        result.epsilons.append(float(epsilon))
        result.fnr_mean.append(_mean(fnrs))
        result.fnr_stderr.append(_stderr(fnrs))
        result.re_mean.append(_mean(res))
        result.re_stderr.append(_stderr(res))
    return result


def _mean(values: Sequence[float]) -> float:
    clean = [value for value in values if not math.isnan(value)]
    if not clean:
        return float("nan")
    return float(np.mean(clean))


def _stderr(values: Sequence[float]) -> float:
    clean = [value for value in values if not math.isnan(value)]
    if len(clean) <= 1:
        return 0.0
    return float(np.std(clean, ddof=1) / math.sqrt(len(clean)))
